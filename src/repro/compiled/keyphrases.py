"""Compiled per-entity keyphrase models as flat arrays.

:class:`CompiledKeyphrases` turns the dict-of-strings models of
:class:`~repro.kb.keyphrases.KeyphraseStore` and
:class:`~repro.weights.model.WeightModel` into flat, cache-friendly,
pickle-cheap arrays, compiled lazily per entity and cached:

* the **sim model** (Eq. 3.4/3.6) keeps, per entity, the concatenated
  distinct token ids of its (optionally capped) keyphrases with prefix
  offsets, parallel NPMI/IDF weights, precomputed per-phrase total
  weights, and a word→phrase inverted index so scoring only touches
  phrases that share a word with the context;
* the **KORE model** (Eq. 4.3/4.4) keeps per-phrase *sorted* distinct
  word ids with aligned γ (IDF) weights, the φ (µ) phrase-weight array
  with its precomputed sum, and the word→phrase inverted index as id
  arrays.

All models share one :class:`~repro.compiled.vocabulary.Vocabulary`.
Arrays are :mod:`array` module arrays (``int32`` ids / ``float64``
weights): compact, picklable, and fast to iterate from pure Python —
build the object (or call :meth:`precompile`) before forking process
workers and every worker shares it read-only.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Optional

from repro.compiled.context import IndexedContext
from repro.compiled.scoring import HAVE_NUMPY
from repro.compiled.vocabulary import Vocabulary
from repro.kb.keyphrases import KeyphraseStore
from repro.similarity.context import DocumentContext
from repro.types import EntityId
from repro.weights.model import WeightModel

_BACKENDS = ("auto", "numpy", "python")


class SimEntityModel:
    """Flat-array similarity model of one entity (Eq. 3.4/3.6)."""

    __slots__ = (
        "phrase_offsets",
        "phrase_token_ids",
        "phrase_token_weights",
        "phrase_totals",
        "phrase_count",
        "word_ids",
        "word_weights",
        "word_phrase_offsets",
        "word_phrase_ids",
    )

    def __init__(
        self,
        phrase_offsets,
        phrase_token_ids,
        phrase_token_weights,
        phrase_totals,
        word_ids,
        word_weights,
        word_phrase_offsets,
        word_phrase_ids,
    ):
        #: Prefix offsets into the concatenated token arrays; phrase ``p``
        #: owns ``[phrase_offsets[p], phrase_offsets[p + 1])``.
        self.phrase_offsets = phrase_offsets
        #: Distinct token ids per phrase (first-occurrence order).
        self.phrase_token_ids = phrase_token_ids
        #: Scheme weights aligned with :attr:`phrase_token_ids`.
        self.phrase_token_weights = phrase_token_weights
        #: Precomputed Eq. 3.4 denominators (sum of distinct-word weights).
        self.phrase_totals = phrase_totals
        self.phrase_count = len(phrase_totals)
        #: Sorted distinct word ids across all phrases, with weights.
        self.word_ids = word_ids
        self.word_weights = word_weights
        #: Inverted index: word ``word_ids[j]`` occurs in phrases
        #: ``word_phrase_ids[word_phrase_offsets[j]:word_phrase_offsets[j+1]]``.
        self.word_phrase_offsets = word_phrase_offsets
        self.word_phrase_ids = word_phrase_ids


class KoreEntityModel:
    """Flat-array KORE model of one entity (Eq. 4.3/4.4)."""

    __slots__ = (
        "phrase_word_offsets",
        "phrase_word_ids",
        "phrase_word_gammas",
        "phi",
        "phi_sum",
        "phrase_count",
        "word_to_phrases",
        "word_gammas",
    )

    def __init__(
        self,
        phrase_word_offsets,
        phrase_word_ids,
        phrase_word_gammas,
        phi,
        word_to_phrases,
        word_gammas,
    ):
        #: Prefix offsets; phrase ``p`` owns the *sorted* id range
        #: ``phrase_word_ids[phrase_word_offsets[p]:phrase_word_offsets[p+1]]``.
        self.phrase_word_offsets = phrase_word_offsets
        self.phrase_word_ids = phrase_word_ids
        #: γ (IDF) weights aligned with :attr:`phrase_word_ids`.
        self.phrase_word_gammas = phrase_word_gammas
        #: φ (µ) weight per phrase, 0.0 where the weight model dropped it.
        self.phi = phi
        #: Precomputed Eq. 4.4 denominator half (``sum(phi)``).
        self.phi_sum = sum(phi)
        self.phrase_count = len(phi)
        #: Inverted index: word id → array of phrase indices containing it.
        self.word_to_phrases = word_to_phrases
        #: Entity-level γ map (word id → weight): Eq. 4.3's union ``max``
        #: reads the *other entity's* weight even for words absent from
        #: the partner phrase, so per-phrase arrays alone don't suffice.
        self.word_gammas = word_gammas


class CompiledKeyphrases:
    """Lazily compiled, shared-vocabulary entity models.

    Parameters mirror :class:`~repro.similarity.keyphrase_match.\
KeyphraseSimilarity`: ``scheme`` and ``max_keyphrases`` shape the sim
    models (KORE models always use the full phrase list with µ/IDF
    weights, as Eq. 4.4 prescribes).  ``backend`` selects the cover
    implementation: ``"auto"`` uses numpy when importable, ``"python"``
    forces the pure-Python sweep, ``"numpy"`` requires numpy.
    """

    def __init__(
        self,
        store: KeyphraseStore,
        weights: WeightModel,
        scheme: str = "npmi",
        max_keyphrases: Optional[int] = None,
        backend: str = "auto",
    ):
        if scheme not in ("npmi", "idf"):
            raise ValueError(f"unknown weight scheme: {scheme!r}")
        if backend not in _BACKENDS:
            raise ValueError(
                f"backend must be one of {_BACKENDS}, got {backend!r}"
            )
        if backend == "numpy" and not HAVE_NUMPY:
            raise ValueError("backend 'numpy' requested but numpy is absent")
        self._store = store
        self._weights = weights
        self.scheme = scheme
        self.max_keyphrases = max_keyphrases
        self.backend = backend
        #: Whether cover matching takes the numpy fast path.
        self.use_numpy = HAVE_NUMPY if backend == "auto" else backend == "numpy"
        #: The full store vocabulary is interned eagerly so that contexts
        #: indexed *before* an entity's lazy compilation still carry the
        #: postings of that entity's words (interning later would assign
        #: ids absent from already-built indexes).
        self.vocabulary = Vocabulary.from_store(store)
        self._sim_models: Dict[EntityId, SimEntityModel] = {}
        self._kore_models: Dict[EntityId, KoreEntityModel] = {}

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def sim_model(self, entity_id: EntityId) -> SimEntityModel:
        """The entity's similarity model, compiling it on first use."""
        model = self._sim_models.get(entity_id)
        if model is None:
            model = self._compile_sim(entity_id)
            # setdefault keeps the first fully-built model under
            # concurrent compilation; duplicates are equivalent.
            model = self._sim_models.setdefault(entity_id, model)
        return model

    def kore_model(self, entity_id: EntityId) -> KoreEntityModel:
        """The entity's KORE model, compiling it on first use."""
        model = self._kore_models.get(entity_id)
        if model is None:
            model = self._compile_kore(entity_id)
            model = self._kore_models.setdefault(entity_id, model)
        return model

    def precompile(
        self,
        entity_ids: Optional[Iterable[EntityId]] = None,
        kore: bool = False,
    ) -> int:
        """Compile models eagerly (pre-fork); returns the entity count."""
        ids = (
            list(entity_ids)
            if entity_ids is not None
            else self._store.entity_ids()
        )
        for entity_id in ids:
            self.sim_model(entity_id)
            if kore:
                self.kore_model(entity_id)
        return len(ids)

    def index_context(self, context: DocumentContext) -> IndexedContext:
        """Posting-index a document context against this vocabulary."""
        return IndexedContext(context, self.vocabulary)

    def _compile_sim(self, entity_id: EntityId) -> SimEntityModel:
        phrases = self._store.top_keyphrases(
            entity_id, limit=self.max_keyphrases
        )
        weight_map = self._weights.keyword_weights(
            entity_id, scheme=self.scheme
        )
        intern = self.vocabulary.intern
        phrase_offsets = array("q", [0])
        token_ids = array("i")
        token_weights = array("d")
        totals = array("d")
        inverted: Dict[int, array] = {}
        weight_of: Dict[int, float] = {}
        for index, phrase in enumerate(phrases):
            total = 0.0
            for word in dict.fromkeys(phrase):  # stable dedup
                wid = intern(word)
                weight = weight_map.get(word, 0.0)
                token_ids.append(wid)
                token_weights.append(weight)
                total += weight
                postings = inverted.get(wid)
                if postings is None:
                    inverted[wid] = array("i", (index,))
                    weight_of[wid] = weight
                else:
                    postings.append(index)
            phrase_offsets.append(len(token_ids))
            totals.append(total)
        word_ids = array("i", sorted(inverted))
        word_weights = array("d", (weight_of[wid] for wid in word_ids))
        word_phrase_offsets = array("q", [0])
        word_phrase_ids = array("i")
        for wid in word_ids:
            word_phrase_ids.extend(inverted[wid])
            word_phrase_offsets.append(len(word_phrase_ids))
        return SimEntityModel(
            phrase_offsets,
            token_ids,
            token_weights,
            totals,
            word_ids,
            word_weights,
            word_phrase_offsets,
            word_phrase_ids,
        )

    def _compile_kore(self, entity_id: EntityId) -> KoreEntityModel:
        phrases = self._store.keyphrases(entity_id)
        phi_map = self._weights.keyphrase_weights(entity_id)
        gamma_map = self._weights.keyword_weights(entity_id, scheme="idf")
        intern = self.vocabulary.intern
        offsets = array("q", [0])
        word_ids = array("i")
        gammas = array("d")
        phi = array("d")
        inverted: Dict[int, array] = {}
        for index, phrase in enumerate(phrases):
            pairs = sorted(
                (intern(word), gamma_map.get(word, 0.0))
                for word in set(phrase)
            )
            for wid, gamma in pairs:
                word_ids.append(wid)
                gammas.append(gamma)
                postings = inverted.get(wid)
                if postings is None:
                    inverted[wid] = array("i", (index,))
                else:
                    postings.append(index)
            offsets.append(len(word_ids))
            phi.append(phi_map.get(phrase, 0.0))
        word_gammas = {
            self.vocabulary.intern(word): gamma
            for word, gamma in gamma_map.items()
        }
        return KoreEntityModel(
            offsets, word_ids, gammas, phi, inverted, word_gammas
        )
