"""Array-based rewrites of the keyphrase scorers.

Two hot loops are rewritten over integer arrays:

* **Cover matching** (Eq. 3.4): the shortest-window sweep runs over
  merged posting lists with id comparisons.  The pure-Python sweep is a
  faithful transcription of the reference algorithm in
  :func:`repro.similarity.keyphrase_match.phrase_cover`, including its
  first-minimal-window tie-break (which matters when the distance
  discount reads the cover's center).  The numpy path computes, for
  every hit position, the tightest window ending there via
  ``searchsorted`` and takes the first minimum — provably the same
  window.
* **KORE phrase overlap** (Eq. 4.3/4.4): PO is a single merge of two
  sorted id arrays with aligned γ weights (min over the intersection,
  max over the union), and candidate phrase pairs come from a word→
  phrase inverted index of id arrays instead of a set of tuple pairs.

Both backends return scores equal to the reference implementations
within 1e-9 (the residue is float summation order, not algorithm).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

#: Whether the optional numpy fast path is available at all.
HAVE_NUMPY = _np is not None

#: Below this many total hits the plain sweep beats numpy's call
#: overhead; both paths return the identical window, so the threshold
#: is a pure performance knob.
NUMPY_MIN_HITS = 32


# ----------------------------------------------------------------------
# Cover matching (Eq. 3.4) over posting lists
# ----------------------------------------------------------------------
def cover_sweep(lists: Sequence[Sequence[int]]) -> Tuple[int, int, int]:
    """Shortest window covering one position from every list.

    Returns ``(length, start, end)`` in token offsets (inclusive).  The
    reference tie-break is preserved: among minimal windows the one whose
    end position comes first wins (strict-improvement update over hits
    sorted by position).
    """
    if len(lists) == 1:
        pos = lists[0][0]
        return 1, pos, pos
    hits: List[Tuple[int, int]] = []
    for label, positions in enumerate(lists):
        for pos in positions:
            hits.append((pos, label))
    hits.sort()
    needed = len(lists)
    counts = [0] * needed
    covered = 0
    left = 0
    best_span = -1
    best_start = best_end = -1
    for pos_r, label_r in hits:
        counts[label_r] += 1
        if counts[label_r] == 1:
            covered += 1
        while covered == needed:
            pos_l, label_l = hits[left]
            span = pos_r - pos_l
            if best_span < 0 or span < best_span:
                best_span = span
                best_start = pos_l
                best_end = pos_r
            counts[label_l] -= 1
            if counts[label_l] == 0:
                covered -= 1
            left += 1
    return best_span + 1, best_start, best_end


def cover_numpy(arrays: Sequence) -> Tuple[int, int, int]:
    """The numpy fast path of :func:`cover_sweep` (identical window).

    For every hit position ``p`` (all lists merged, ascending) the
    tightest covering window ending at ``p`` starts at the minimum over
    lists of the latest occurrence ≤ ``p``; the answer is the first
    minimal window in end-position order, matching the sweep's
    strict-improvement tie-break.
    """
    if len(arrays) == 1:
        pos = int(arrays[0][0])
        return 1, pos, pos
    merged = _np.sort(_np.concatenate(arrays))
    starts = None
    valid = None
    for positions in arrays:
        count_le = _np.searchsorted(positions, merged, side="right")
        has = count_le > 0
        latest = positions[_np.maximum(count_le - 1, 0)]
        valid = has if valid is None else (valid & has)
        starts = latest if starts is None else _np.minimum(starts, latest)
    lengths = _np.where(valid, merged - starts + 1, _np.iinfo(merged.dtype).max)
    best = int(_np.argmin(lengths))  # first minimum == reference tie-break
    return int(lengths[best]), int(starts[best]), int(merged[best])


def _best_cover(indexed, word_ids, lists, use_numpy):
    """Dispatch the cover computation to the right backend."""
    if (
        use_numpy
        and len(lists) > 1
        and sum(len(positions) for positions in lists) >= NUMPY_MIN_HITS
    ):
        return cover_numpy(
            [indexed.positions_array(wid) for wid in word_ids]
        )
    return cover_sweep(lists)


# ----------------------------------------------------------------------
# Mention-entity similarity (Eq. 3.6) over a compiled entity model
# ----------------------------------------------------------------------
def simscore_arrays(
    indexed,
    model,
    distance_discount: float = 0.0,
    use_numpy: bool = False,
) -> Tuple[float, int, int]:
    """Aggregate keyphrase score of one entity against an indexed context.

    Returns ``(score, phrases_scored, phrases_skipped)``.  The matching
    phrases are discovered through the entity's word→phrase inverted
    index: one pass over the entity's distinct words touches only the
    (word, phrase) incidences that actually occur in the context, so a
    candidate sharing nothing with the document costs one posting probe
    per distinct word and no per-phrase work at all.
    """
    postings = indexed.postings
    word_ids = model.word_ids
    word_weights = model.word_weights
    inverted_offsets = model.word_phrase_offsets
    inverted_ids = model.word_phrase_ids
    #: phrase index -> ids of its words present in the context, and the
    #: accumulated matched weight (Eq. 3.4 numerator).
    matched_words: Dict[int, List[int]] = {}
    matched_weight: Dict[int, float] = {}
    for j in range(len(word_ids)):
        wid = word_ids[j]
        if wid not in postings:
            continue
        weight = word_weights[j]
        for t in range(inverted_offsets[j], inverted_offsets[j + 1]):
            phrase = inverted_ids[t]
            present = matched_words.get(phrase)
            if present is None:
                matched_words[phrase] = [wid]
                matched_weight[phrase] = weight
            else:
                present.append(wid)
                matched_weight[phrase] += weight
    scored = len(matched_words)
    skipped = model.phrase_count - scored
    if not scored:
        return 0.0, 0, skipped
    discounting = distance_discount > 0.0
    center = indexed.mention_center if discounting else None
    doc_length = indexed.document_length if discounting else 1
    totals = model.phrase_totals
    total = 0.0
    # Ascending phrase order keeps the float accumulation order of the
    # reference loop over ``entity_phrases``.
    for phrase in sorted(matched_words):
        total_weight = totals[phrase]
        if total_weight <= 0.0:
            continue
        word_subset = matched_words[phrase]
        lists = [postings[wid] for wid in word_subset]
        length, start, end = _best_cover(
            indexed, word_subset, lists, use_numpy
        )
        ratio = matched_weight[phrase] / total_weight
        score = (len(word_subset) / length) * ratio * ratio
        if score > 0.0 and center is not None:
            cover_center = (start + end) / 2.0
            score *= 1.0 / (
                1.0
                + distance_discount
                * abs(cover_center - center)
                / doc_length
            )
        total += score
    return total, scored, skipped


# ----------------------------------------------------------------------
# KORE (Eq. 4.3/4.4) over compiled entity models
# ----------------------------------------------------------------------
def _po_merge(
    a_ids,
    a_gammas,
    a_lo,
    a_hi,
    b_ids,
    b_gammas,
    b_lo,
    b_hi,
    a_word_gammas,
    b_word_gammas,
) -> float:
    """Eq. 4.3 as one merge of two sorted id ranges with aligned γ.

    Intersection words contribute ``min`` to the numerator and ``max``
    to the denominator.  A word on one side of the *phrase* pair still
    looks up the other **entity's** γ map (the reference scores against
    per-entity weight dicts, so a word absent from phrase ``q`` but
    present elsewhere in entity ``f`` keeps f's weight in the ``max``);
    only words unknown to the other entity fall back to 0.0.
    """
    numerator = 0.0
    denominator = 0.0
    i, j = a_lo, b_lo
    while i < a_hi and j < b_hi:
        a_id = a_ids[i]
        b_id = b_ids[j]
        if a_id == b_id:
            a_w = a_gammas[i]
            b_w = b_gammas[j]
            if a_w <= b_w:
                numerator += a_w
                denominator += b_w
            else:
                numerator += b_w
                denominator += a_w
            i += 1
            j += 1
        elif a_id < b_id:
            a_w = a_gammas[i]
            other = b_word_gammas.get(a_id, 0.0)
            denominator += a_w if a_w >= other else other
            i += 1
        else:
            b_w = b_gammas[j]
            other = a_word_gammas.get(b_id, 0.0)
            denominator += b_w if b_w >= other else other
            j += 1
    while i < a_hi:
        a_w = a_gammas[i]
        other = b_word_gammas.get(a_ids[i], 0.0)
        denominator += a_w if a_w >= other else other
        i += 1
    while j < b_hi:
        b_w = b_gammas[j]
        other = a_word_gammas.get(b_ids[j], 0.0)
        denominator += b_w if b_w >= other else other
        j += 1
    if numerator == 0.0 or denominator <= 0.0:
        return 0.0
    return numerator / denominator


def kore_score(model_a, model_b, squared: bool = True) -> float:
    """Eq. 4.4 over two compiled KORE entity models.

    Candidate phrase pairs are discovered through the second entity's
    word→phrase inverted index; a per-phrase seen-set of integer phrase
    indices replaces the reference's materialized set of tuple pairs.
    """
    denominator = model_a.phi_sum + model_b.phi_sum
    if denominator <= 0.0:
        return 0.0
    a_offsets = model_a.phrase_word_offsets
    a_ids = model_a.phrase_word_ids
    a_gammas = model_a.phrase_word_gammas
    b_offsets = model_b.phrase_word_offsets
    b_ids = model_b.phrase_word_ids
    b_gammas = model_b.phrase_word_gammas
    b_index = model_b.word_to_phrases
    a_word_gammas = model_a.word_gammas
    b_word_gammas = model_b.word_gammas
    phi_a = model_a.phi
    phi_b = model_b.phi
    numerator = 0.0
    for p in range(model_a.phrase_count):
        lo = a_offsets[p]
        hi = a_offsets[p + 1]
        phi_p = phi_a[p]
        seen = set()
        for t in range(lo, hi):
            partners = b_index.get(a_ids[t])
            if partners is None:
                continue
            for q in partners:
                if q in seen:
                    continue
                seen.add(q)
                po = _po_merge(
                    a_ids,
                    a_gammas,
                    lo,
                    hi,
                    b_ids,
                    b_gammas,
                    b_offsets[q],
                    b_offsets[q + 1],
                    a_word_gammas,
                    b_word_gammas,
                )
                if po == 0.0:
                    continue
                if squared:
                    po *= po
                phi_q = phi_b[q]
                numerator += po * (phi_p if phi_p <= phi_q else phi_q)
    return numerator / denominator
