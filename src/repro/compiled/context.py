"""Token-id posting index over a document context.

A :class:`~repro.similarity.context.DocumentContext` already indexes a
document by normalized token string.  :class:`IndexedContext` translates
that index once into vocabulary ids, so the cover sweep and the phrase
match tests run on integer posting lists.  It is built **once per
mention context** and reused for every candidate entity scored against
it — the reference path re-hashes every phrase word per candidate.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.compiled.vocabulary import Vocabulary
from repro.similarity.context import DocumentContext

try:  # pragma: no cover - exercised via the backend-forcing tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


class IndexedContext:
    """Posting lists of a document context, keyed by vocabulary id.

    Words outside the vocabulary can never match a compiled keyphrase
    model sharing that vocabulary, so they are dropped at build time.
    The posting lists are the context's own position lists (sorted,
    ascending) and must be treated as read-only.
    """

    __slots__ = ("context", "vocabulary", "postings", "_arrays")

    def __init__(self, context: DocumentContext, vocabulary: Vocabulary):
        self.context = context
        self.vocabulary = vocabulary
        id_of = vocabulary.id_of
        postings: Dict[int, List[int]] = {}
        for word, positions in context.index_items():
            wid = id_of(word)
            if wid >= 0:
                postings[wid] = positions
        self.postings = postings
        self._arrays: Dict[int, object] = {}

    def __contains__(self, wid: int) -> bool:
        return wid in self.postings

    def positions(self, wid: int) -> Optional[List[int]]:
        """Sorted token offsets of the word id, or None when absent."""
        return self.postings.get(wid)

    def positions_array(self, wid: int):
        """The postings of ``wid`` as a cached numpy array (numpy path)."""
        cached = self._arrays.get(wid)
        if cached is None:
            cached = _np.asarray(self.postings[wid], dtype=_np.int64)
            self._arrays[wid] = cached
        return cached

    @property
    def mention_center(self) -> Optional[float]:
        """Midpoint of the excluded mention (distance-discount path)."""
        return self.context.mention_center

    @property
    def document_length(self) -> int:
        """Token count of the underlying document, floored at 1."""
        return max(len(self.context.document.tokens), 1)
