"""Compiled keyphrase scoring layer.

The reference implementations of keyphrase cover matching (Eq. 3.4/3.6)
and KORE (Eq. 4.3/4.4) work over strings and dicts: every (mention,
candidate) pair re-hashes phrase words, rebuilds weight sets, and sorts
tuples.  This package compiles the per-entity keyphrase models **once**
into flat integer/float arrays and scores over those:

* :class:`~repro.compiled.vocabulary.Vocabulary` — a KB-wide interner
  mapping normalized words to dense ``int32`` ids;
* :class:`~repro.compiled.keyphrases.CompiledKeyphrases` — per-entity
  flat arrays (concatenated phrase token ids + prefix offsets, parallel
  weight arrays, precomputed per-phrase totals and φ sums) built lazily
  from a :class:`~repro.kb.keyphrases.KeyphraseStore` and a
  :class:`~repro.weights.model.WeightModel`, pickle-cheap and shared
  read-only across batch workers;
* :class:`~repro.compiled.context.IndexedContext` — a token-id posting
  index over a document context, built once per mention instead of once
  per (mention, candidate);
* :mod:`~repro.compiled.scoring` — array rewrites of the cover sweep and
  of KORE phrase overlap (sorted-id merges), with an optional numpy fast
  path and a pure-Python fallback that produce identical covers.

Both backends are score-equivalent to the reference implementations
within 1e-9 (see ``tests/test_differential_compiled.py``).
"""

from repro.compiled.context import IndexedContext
from repro.compiled.keyphrases import (
    CompiledKeyphrases,
    KoreEntityModel,
    SimEntityModel,
)
from repro.compiled.scoring import HAVE_NUMPY, kore_score, simscore_arrays
from repro.compiled.vocabulary import Vocabulary

__all__ = [
    "CompiledKeyphrases",
    "HAVE_NUMPY",
    "IndexedContext",
    "KoreEntityModel",
    "SimEntityModel",
    "Vocabulary",
    "kore_score",
    "simscore_arrays",
]
