"""Exception hierarchy and error taxonomy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class. Specific subclasses signal which subsystem failed.

On top of the subsystem hierarchy sits a *robustness taxonomy* used by the
fault-tolerance layer (:mod:`repro.faults`):

* **transient** errors (the :class:`Retryable` mixin, plus the standard
  library's timeout/connection families) are worth retrying — the same
  call may succeed a moment later;
* **permanent** errors will fail identically on every retry; the only
  useful reaction is degrading to a cheaper pipeline configuration;
* **deadline** errors (:class:`DeadlineExceeded`) mean the per-document
  budget ran out — retrying the same configuration would run out again,
  so they also trigger degradation, never a retry.

``KeyboardInterrupt``/``SystemExit`` derive from ``BaseException`` and are
deliberately outside the taxonomy: every catch site in the batch and
robustness layers catches ``Exception``, so they always propagate.
"""

from __future__ import annotations

from typing import Union


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class KnowledgeBaseError(ReproError):
    """A knowledge-base operation failed (unknown entity, bad triple, ...)."""


class UnknownEntityError(KnowledgeBaseError):
    """An entity id was looked up that is not registered in the KB."""

    def __init__(self, entity_id: str):
        super().__init__(f"unknown entity: {entity_id!r}")
        self.entity_id = entity_id


class DictionaryError(KnowledgeBaseError):
    """A name-dictionary operation failed."""


class DisambiguationError(ReproError):
    """The disambiguation pipeline could not produce a result."""


class GraphError(DisambiguationError):
    """The mention-entity graph is malformed or the algorithm hit an
    unsatisfiable constraint (e.g. a mention with no candidate left)."""


class ConfigurationError(ReproError):
    """A configuration value is out of its valid range."""


class DatasetError(ReproError):
    """A corpus/dataset generator received inconsistent parameters."""


# ----------------------------------------------------------------------
# Robustness taxonomy (see module docstring)
# ----------------------------------------------------------------------
class Retryable:
    """Mixin marking an exception as transient: a retry may succeed.

    Mix into any exception class (library or injected) whose failure mode
    is expected to be momentary — lock contention, a flaky backend, an
    injected chaos fault configured as transient.
    """


class TransientError(ReproError, Retryable):
    """A momentary failure; the same call is expected to succeed soon."""


class PermanentError(ReproError):
    """A deterministic failure; retrying the same call cannot succeed."""


class DeadlineExceeded(ReproError):
    """A per-document soft deadline ran out.

    Raised cooperatively by :class:`repro.faults.deadline.Budget` checks at
    pipeline stage boundaries and solver iterations.  Not retryable: the
    same configuration would exhaust the budget again — degrade instead.
    """

    def __init__(self, where: str, elapsed_ms: float, budget_ms: float):
        super().__init__(
            f"deadline exceeded at {where}: "
            f"{elapsed_ms:.1f}ms elapsed of {budget_ms:.1f}ms budget"
        )
        self.where = where
        self.elapsed_ms = elapsed_ms
        self.budget_ms = budget_ms


#: Standard-library exception families treated as transient alongside the
#: :class:`Retryable` mixin.  ``TimeoutError`` covers ``socket.timeout``
#: (an alias since 3.10) and ``ConnectionError`` its four subclasses.
_TRANSIENT_BUILTINS = (TimeoutError, ConnectionError, InterruptedError)


def is_transient(error: BaseException) -> bool:
    """Whether *error* is worth retrying under the taxonomy."""
    if isinstance(error, DeadlineExceeded):
        return False
    return isinstance(error, (Retryable,) + _TRANSIENT_BUILTINS)


def classify_error(error: BaseException) -> str:
    """Taxonomy bucket of an exception: ``transient`` / ``permanent`` /
    ``deadline`` — the ``kind`` recorded on batch document failures."""
    if isinstance(error, DeadlineExceeded):
        return "deadline"
    if is_transient(error):
        return "transient"
    return "permanent"


def describe_error(error: Union[BaseException, str]) -> str:
    """One-line ``TypeName: message`` rendering used in failure records."""
    if isinstance(error, str):
        return error
    return f"{type(error).__name__}: {error}"
