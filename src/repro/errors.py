"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class. Specific subclasses signal which subsystem failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class KnowledgeBaseError(ReproError):
    """A knowledge-base operation failed (unknown entity, bad triple, ...)."""


class UnknownEntityError(KnowledgeBaseError):
    """An entity id was looked up that is not registered in the KB."""

    def __init__(self, entity_id: str):
        super().__init__(f"unknown entity: {entity_id!r}")
        self.entity_id = entity_id


class DictionaryError(KnowledgeBaseError):
    """A name-dictionary operation failed."""


class DisambiguationError(ReproError):
    """The disambiguation pipeline could not produce a result."""


class GraphError(DisambiguationError):
    """The mention-entity graph is malformed or the algorithm hit an
    unsatisfiable constraint (e.g. a mention with no candidate left)."""


class ConfigurationError(ReproError):
    """A configuration value is out of its valid range."""


class DatasetError(ReproError):
    """A corpus/dataset generator received inconsistent parameters."""
