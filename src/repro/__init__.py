"""repro — reproduction of "Discovering and Disambiguating Named Entities
in Text" (Hoffart): the AIDA joint disambiguator, the KORE relatedness
measure with two-stage LSH acceleration, and NED-EE emerging-entity
discovery, together with the knowledge-base substrate and synthetic
corpora they are evaluated on.

Quickstart::

    from repro import (
        World, WorldConfig, build_world_kb,
        AidaDisambiguator, AidaConfig,
    )

    world = World.generate(WorldConfig(seed=7))
    kb, _wiki = build_world_kb(world)
    aida = AidaDisambiguator(kb, config=AidaConfig.full())
    result = aida.disambiguate(document)
"""

from repro.types import (
    AnnotatedDocument,
    Annotation,
    DisambiguationResult,
    Document,
    EntityId,
    Mention,
    MentionAssignment,
    OUT_OF_KB,
    is_out_of_kb,
)
from repro.errors import (
    ConfigurationError,
    DatasetError,
    DictionaryError,
    DisambiguationError,
    GraphError,
    KnowledgeBaseError,
    ReproError,
    UnknownEntityError,
)
from repro.kb import Entity, KnowledgeBase, Taxonomy
from repro.core import AidaConfig, AidaDisambiguator, PriorMode
from repro.relatedness import (
    InlinkJaccardRelatedness,
    KeyphraseCosineRelatedness,
    KeywordCosineRelatedness,
    KoreLshRelatedness,
    KoreRelatedness,
    LshSettings,
    MilneWittenRelatedness,
)
from repro.confidence import ConfAssessor
from repro.emerging import EeConfig, EmergingEntityPipeline
from repro.datagen import (
    DocumentGenerator,
    DocumentSpec,
    SyntheticWikipedia,
    World,
    WorldConfig,
    build_world_kb,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # types
    "AnnotatedDocument",
    "Annotation",
    "DisambiguationResult",
    "Document",
    "EntityId",
    "Mention",
    "MentionAssignment",
    "OUT_OF_KB",
    "is_out_of_kb",
    # errors
    "ReproError",
    "KnowledgeBaseError",
    "UnknownEntityError",
    "DictionaryError",
    "DisambiguationError",
    "GraphError",
    "ConfigurationError",
    "DatasetError",
    # knowledge base
    "Entity",
    "KnowledgeBase",
    "Taxonomy",
    # AIDA
    "AidaConfig",
    "AidaDisambiguator",
    "PriorMode",
    # relatedness
    "MilneWittenRelatedness",
    "InlinkJaccardRelatedness",
    "KeywordCosineRelatedness",
    "KeyphraseCosineRelatedness",
    "KoreRelatedness",
    "KoreLshRelatedness",
    "LshSettings",
    # confidence / emerging
    "ConfAssessor",
    "EeConfig",
    "EmergingEntityPipeline",
    # data generation
    "World",
    "WorldConfig",
    "SyntheticWikipedia",
    "build_world_kb",
    "DocumentGenerator",
    "DocumentSpec",
]
