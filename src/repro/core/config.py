"""AIDA configuration.

Defaults are the hyper-parameters of Section 3.6.1, tuned by line search on
withheld development documents: prior-test threshold ρ = 0.9, coherence-test
threshold λ = 0.9, feature weights α = 0.34 (popularity), β = 0.26
(similarity), γ = 0.40 (coherence).  For the graph representation these
translate into multiplying entity-entity weights by γ = 0.40 and
mention-entity weights by 0.60, where the mention-entity weight is either
``0.566·prior + 0.434·sim`` (prior test passed) or ``sim`` alone.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.graph.dense_subgraph import DenseSubgraphConfig


class PriorMode(enum.Enum):
    """How the popularity prior enters the mention-entity edge weight."""

    #: Never use the prior (pure similarity).
    NEVER = "never"
    #: Always combine prior and similarity linearly.
    ALWAYS = "always"
    #: Combine only when the best candidate's prior exceeds ρ (the paper's
    #: prior robustness test, Section 3.5.1).
    TEST = "test"
    #: Use the prior alone (the popularity baseline).
    ONLY = "only"


#: Selectable entity-entity coherence backends: Milne–Witten inlink
#: overlap (the Chapter 3 default), exact KORE, KORE behind two-stage
#: min-hash/LSH pre-clustering in the recall-geared (G) and speed-geared
#: (F) parameterizations of Section 4.4.2, and cosine in the joint
#: word/entity embedding space (:mod:`repro.embeddings`).
RELATEDNESS_BACKENDS = ("mw", "kore", "kore_lsh_g", "kore_lsh_f", "embedding")

#: Selectable mention-entity similarity backends: keyphrase cover
#: matching (Eq. 3.4/3.6, optionally compiled) or context/entity cosine
#: in the embedding space — the sparse-keyphrase fallback regime.
SIMILARITY_BACKENDS = ("keyphrase", "embedding")


@dataclass
class AidaConfig:
    """All knobs of the AIDA pipeline."""

    #: Prior robustness threshold ρ.
    prior_threshold: float = 0.9
    #: Coherence robustness threshold λ on the L1 prior/sim distance.
    coherence_threshold: float = 0.9
    #: Coherence balance γ: entity-entity edge weights are multiplied by
    #: this, mention-entity weights by (1 - γ).
    gamma: float = 0.40
    #: Linear combination of prior and similarity inside the mention-entity
    #: edge weight when the prior is used: w = prior_mix·prior +
    #: (1 - prior_mix)·sim.  0.566 realizes α/(α+β) of the objective.
    prior_mix: float = 0.566
    prior_mode: PriorMode = PriorMode.TEST
    #: Whether entity coherence (the graph algorithm) is used at all.
    use_coherence: bool = True
    #: Whether the coherence robustness test (Section 3.5.2) pre-fixes
    #: mentions on which prior and similarity agree.
    use_coherence_test: bool = True
    #: Keyword weighting inside the cover-matching similarity.
    keyword_weight_scheme: str = "npmi"
    #: Normalize similarity scores per mention by their maximum before
    #: combining with the prior.  Chapter 5's NED-EE second stage keeps
    #: raw scores so the news-derived magnitude of the EE placeholder
    #: survives the γ balance.
    normalize_similarity: bool = True
    #: Optional cap on keyphrases per entity (Chapter 5 uses 3000).
    max_keyphrases: int = 0  # 0 = unlimited
    #: Chain short-form mentions ("Page") to longer same-name mentions of
    #: the document ("Jimmy Page") and restrict their candidate space to
    #: the chain's (Section 2.4.3's coreference view, applied to NED).
    use_name_coreference: bool = False
    #: Use the compiled keyphrase scoring layer (:mod:`repro.compiled`):
    #: interned-id entity models and posting-indexed contexts, score-
    #: equivalent to the reference scorers within 1e-9.  On construction
    #: failure the pipeline logs a warning and falls back to the
    #: reference path, so this flag is safe to leave on.
    use_compiled: bool = True
    #: Entity-entity relatedness backend for the coherence stage (one of
    #: :data:`RELATEDNESS_BACKENDS`).  ``kore_lsh_g``/``kore_lsh_f``
    #: precompute KB-wide entity sketches at pipeline construction and
    #: compute exact (compiled) KORE only on pairs surviving LSH banding.
    relatedness_backend: str = "mw"
    #: Mention-entity similarity backend (one of
    #: :data:`SIMILARITY_BACKENDS`).  ``embedding`` scores candidates by
    #: context/entity cosine in the joint embedding space instead of
    #: keyphrase cover matching.
    similarity_backend: str = "keyphrase"
    #: Dense pre-ranker truncation K: after candidate retrieval, each
    #: mention's pool is cut to its top-K candidates by embedding cosine
    #: (prior-top and pinned/extra candidates always survive) before the
    #: similarity and coherence stages.  ``None`` disables the stage
    #: entirely — the pipeline is then bit-identical to the unpruned
    #: path, as it is for any K at or above the largest pool.
    prerank_topk: Optional[int] = None
    graph: DenseSubgraphConfig = field(default_factory=DenseSubgraphConfig)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check every knob; raised-from here by ``__post_init__`` and by
        the CLI after post-construction mutation of parsed flags."""
        if not 0.0 <= self.prior_threshold <= 1.0:
            raise ConfigurationError("prior_threshold must be in [0, 1]")
        if not 0.0 <= self.coherence_threshold <= 2.0:
            raise ConfigurationError(
                "coherence_threshold must be in [0, 2] (an L1 distance of "
                "probability vectors)"
            )
        if not 0.0 <= self.gamma <= 1.0:
            raise ConfigurationError("gamma must be in [0, 1]")
        if not 0.0 <= self.prior_mix <= 1.0:
            raise ConfigurationError("prior_mix must be in [0, 1]")
        if self.max_keyphrases < 0:
            raise ConfigurationError("max_keyphrases must be >= 0")
        if self.relatedness_backend not in RELATEDNESS_BACKENDS:
            raise ConfigurationError(
                f"relatedness_backend must be one of "
                f"{', '.join(RELATEDNESS_BACKENDS)} "
                f"(got {self.relatedness_backend!r})"
            )
        if self.similarity_backend not in SIMILARITY_BACKENDS:
            raise ConfigurationError(
                f"similarity_backend must be one of "
                f"{', '.join(SIMILARITY_BACKENDS)} "
                f"(got {self.similarity_backend!r})"
            )
        if self.prerank_topk is not None and self.prerank_topk < 1:
            raise ConfigurationError(
                "prerank_topk must be >= 1 (or None to disable)"
            )

    @property
    def needs_embeddings(self) -> bool:
        """Whether any configured component requires a trained model."""
        return (
            self.prerank_topk is not None
            or self.similarity_backend == "embedding"
            or self.relatedness_backend == "embedding"
        )

    # ------------------------------------------------------------------
    # Named configurations of Table 3.2
    # ------------------------------------------------------------------
    @staticmethod
    def prior_only() -> "AidaConfig":
        """``prior`` — popularity prior alone."""
        return AidaConfig(prior_mode=PriorMode.ONLY, use_coherence=False)

    @staticmethod
    def sim_only() -> "AidaConfig":
        """``sim-k`` — keyphrase similarity alone."""
        return AidaConfig(prior_mode=PriorMode.NEVER, use_coherence=False)

    @staticmethod
    def prior_sim() -> "AidaConfig":
        """``prior sim-k`` — unconditional prior + similarity."""
        return AidaConfig(prior_mode=PriorMode.ALWAYS, use_coherence=False)

    @staticmethod
    def robust_prior_sim() -> "AidaConfig":
        """``r-prior sim-k`` — prior-tested prior + similarity."""
        return AidaConfig(prior_mode=PriorMode.TEST, use_coherence=False)

    @staticmethod
    def robust_prior_sim_coherence() -> "AidaConfig":
        """``r-prior sim-k coh`` — plus graph coherence, no coherence test."""
        return AidaConfig(
            prior_mode=PriorMode.TEST,
            use_coherence=True,
            use_coherence_test=False,
        )

    @staticmethod
    def full() -> "AidaConfig":
        """``r-prior sim-k r-coh`` — the complete AIDA configuration."""
        return AidaConfig(
            prior_mode=PriorMode.TEST,
            use_coherence=True,
            use_coherence_test=True,
        )
