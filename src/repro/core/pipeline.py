"""The AIDA disambiguation pipeline (Chapter 3).

Stages, per document:

1. candidate retrieval for every mention via the KB dictionary;
1b. (optional) dense pre-ranking: each mention's pool is truncated to its
   top-K candidates by embedding cosine before any scoring runs
   (:mod:`repro.embeddings.prerank`);
2. keyphrase cover-matching similarity and popularity prior per candidate;
3. the prior robustness test decides per mention whether the prior enters
   the mention-entity edge weight;
4. the coherence robustness test pre-fixes mentions on which prior and
   similarity agree, keeping only the winning candidate;
5. the mention-entity graph is built (coherence edges only between entities
   that are candidates of different mentions), rescaled and γ-balanced;
6. the greedy dense-subgraph algorithm selects one entity per mention.

The pipeline also exposes the hooks Chapter 5 needs: restricting to a
mention subset, force-mapping mentions to chosen entities (both used by the
perturbation confidence assessors), injecting extra candidates (the
emerging-entity placeholders) and damping edge weights of selected entities
(the EE balance factor).
"""

from __future__ import annotations

import logging
import time
from contextlib import contextmanager
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.config import AidaConfig, PriorMode
from repro.core.robustness import passes_prior_test, should_fix_mention
from repro.faults.deadline import check_budget
from repro.faults.injector import get_injector
from repro.graph.dense_subgraph import GreedyDenseSubgraph
from repro.graph.mention_entity_graph import MentionEntityGraph
from repro.kb.keyphrases import KeyphraseStore
from repro.kb.knowledge_base import KnowledgeBase
from repro.obs import get_metrics, get_tracer, log_event
from repro.relatedness.base import EntityRelatedness
from repro.relatedness.milne_witten import MilneWittenRelatedness
from repro.similarity.context import DocumentContext
from repro.similarity.keyphrase_match import KeyphraseSimilarity
from repro.types import (
    Document,
    DisambiguationResult,
    EntityId,
    Mention,
    MentionAssignment,
    OUT_OF_KB,
)
from repro.utils.timing import PipelineStats, Stopwatch
from repro.weights.model import WeightModel

_LOG = logging.getLogger("repro.pipeline")


class AidaDisambiguator:
    """Joint named-entity disambiguation with robustness tests."""

    def __init__(
        self,
        kb: KnowledgeBase,
        relatedness: Optional[EntityRelatedness] = None,
        config: Optional[AidaConfig] = None,
        keyphrase_store: Optional[KeyphraseStore] = None,
        weight_model: Optional[WeightModel] = None,
        compiled_keyphrases=None,
        embedding_model=None,
    ):
        self.kb = kb
        self.config = config if config is not None else AidaConfig.full()
        self.store = (
            keyphrase_store if keyphrase_store is not None else kb.keyphrases
        )
        self.weights = (
            weight_model
            if weight_model is not None
            else WeightModel(self.store, kb.links)
        )
        #: The joint word/entity embedding model, or None when no
        #: configured component needs one.  An explicitly passed model
        #: (snapshot sections, CLI artifacts) wins; otherwise one is
        #: trained deterministically from the KB and shared across
        #: pipelines over the same KB object.
        self.embeddings = embedding_model
        if self.embeddings is None and self.config.needs_embeddings:
            from repro.embeddings import shared_model

            self.embeddings = shared_model(kb)
        self.relatedness = (
            relatedness
            if relatedness is not None
            else self.build_relatedness(
                kb,
                self.config,
                store=self.store,
                weights=self.weights,
                embeddings=self.embeddings,
            )
        )
        max_kp = self.config.max_keyphrases or None
        #: The shared compiled keyphrase model, or None on the reference
        #: path.  An explicitly passed model wins over ``use_compiled``;
        #: otherwise one is built here (and on failure the pipeline logs
        #: a warning and degrades to the reference scorers) — unless no
        #: configured component consumes keyphrase scoring at all.
        self.compiled = compiled_keyphrases
        needs_compiled = (
            self.config.similarity_backend == "keyphrase"
            or self.config.relatedness_backend
            in ("kore", "kore_lsh_g", "kore_lsh_f")
        )
        if (
            self.compiled is None
            and self.config.use_compiled
            and needs_compiled
        ):
            self.compiled = self._build_compiled(max_kp)
        if self.config.similarity_backend == "embedding":
            from repro.embeddings import EmbeddingSimilarity

            self.similarity = EmbeddingSimilarity(self.embeddings)
        else:
            self.similarity = KeyphraseSimilarity(
                self.store,
                self.weights,
                weight_scheme=self.config.keyword_weight_scheme,
                max_keyphrases=max_kp,
                compiled=self.compiled,
            )
        if self.compiled is not None:
            self._attach_compiled_relatedness(self.compiled)
        #: Dense candidate pre-ranker, or None when ``prerank_topk`` is
        #: unset (the stage is then skipped entirely — not entered with
        #: a no-op — so the unpruned pipeline's stage list and stats are
        #: byte-for-byte unchanged).
        self.preranker = None
        if self.config.prerank_topk is not None:
            from repro.embeddings import DensePreRanker

            self.preranker = DensePreRanker(
                self.embeddings, self.config.prerank_topk
            )
        # Stage one of the LSH scheme runs offline over the whole KB (the
        # paper's precomputation); eager here so worker threads/processes
        # share the finished read-only sketch table.
        self._precompute_lsh_sketches()
        self._solver = GreedyDenseSubgraph(self.config.graph)
        #: Per-stage timing and counters of the most recent
        #: :meth:`disambiguate` call.
        self.last_stats: Optional[PipelineStats] = None

    def _build_compiled(self, max_keyphrases: Optional[int]):
        """Build the compiled keyphrase layer, or None on any failure."""
        try:
            from repro.compiled import CompiledKeyphrases

            return CompiledKeyphrases(
                self.store,
                self.weights,
                scheme=self.config.keyword_weight_scheme,
                max_keyphrases=max_keyphrases,
            )
        except Exception as exc:  # degrade, never fail construction
            _LOG.warning(
                "compiled keyphrase layer unavailable, falling back to "
                "reference scoring: %s",
                exc,
            )
            return None

    @staticmethod
    def build_relatedness(
        kb: KnowledgeBase,
        config: AidaConfig,
        store: Optional[KeyphraseStore] = None,
        weights: Optional[WeightModel] = None,
        sketches=None,
        embeddings=None,
    ) -> EntityRelatedness:
        """The coherence measure ``config.relatedness_backend`` names.

        Shared by the pipeline constructor and the CLI (including the
        picklable process-pool factory, which passes the parent's
        precomputed *sketches* so workers skip the KB-wide stage-one
        pass).  For the ``embedding`` backend a passed *embeddings*
        model wins; otherwise one is trained from the KB.
        """
        backend = config.relatedness_backend
        if backend == "mw":
            return MilneWittenRelatedness(
                kb.links, max(kb.entity_count, 2)
            )
        if backend == "embedding":
            from repro.embeddings import EmbeddingRelatedness, shared_model

            model = (
                embeddings if embeddings is not None else shared_model(kb)
            )
            return EmbeddingRelatedness(model)
        from repro.relatedness.kore import KoreRelatedness
        from repro.relatedness.lsh import KoreLshRelatedness, LshSettings

        store = store if store is not None else kb.keyphrases
        weights = (
            weights if weights is not None else WeightModel(store, kb.links)
        )
        kore = KoreRelatedness(store, weights)
        if backend == "kore":
            return kore
        if backend == "kore_lsh_g":
            settings, name = LshSettings.recall_geared(), "KORE_LSH-G"
        else:
            settings, name = LshSettings.fast(), "KORE_LSH-F"
        return KoreLshRelatedness(
            store, kore, settings, name=name, sketches=sketches
        )

    def _relatedness_chain(self) -> List[EntityRelatedness]:
        """The measure plus every ``inner`` it wraps, outermost first."""
        chain: List[EntityRelatedness] = []
        measure = self.relatedness
        while measure is not None and measure not in chain:
            chain.append(measure)
            measure = getattr(measure, "inner", None)
        return chain

    def _attach_compiled_relatedness(self, compiled) -> None:
        """Point compilable measures (KORE and the LSH wrapper, possibly
        cache-wrapped) at the compiled models; others are untouched."""
        for measure in self._relatedness_chain():
            if (
                hasattr(measure, "attach_compiled")
                and getattr(measure, "compiled", None) is None
            ):
                measure.attach_compiled(compiled)

    def _precompute_lsh_sketches(self) -> None:
        """Run LSH stage one KB-wide for any LSH measure in the chain."""
        for measure in self._relatedness_chain():
            precompute = getattr(measure, "precompute", None)
            if callable(precompute):
                precompute()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def disambiguate(
        self,
        document: Document,
        restrict_to: Optional[Sequence[int]] = None,
        fixed: Optional[Mapping[int, EntityId]] = None,
        extra_candidates: Optional[Mapping[int, Sequence[EntityId]]] = None,
        entity_edge_factor: Optional[Mapping[EntityId, float]] = None,
    ) -> DisambiguationResult:
        """Disambiguate all (or a subset of) the document's mentions.

        Parameters
        ----------
        restrict_to:
            Mention indices to disambiguate; others are dropped from the
            problem (mention perturbation, Section 5.4.2).
        fixed:
            Mention index → entity to pin: the mention's candidate set
            becomes that single entity (entity perturbation, Section 5.4.3).
        extra_candidates:
            Mention index → additional candidate entities (the emerging-
            entity placeholders of Section 5.5.2).  They must have
            keyphrases in this pipeline's store to score.
        entity_edge_factor:
            Entity → multiplier applied to every graph edge incident to
            that entity after rescaling (the EE balance γ of Section 5.6).
        """
        mentions = list(document.mentions)
        active = self._active_indices(mentions, restrict_to)
        fixed = dict(fixed) if fixed else {}
        extra_candidates = dict(extra_candidates) if extra_candidates else {}
        watch = Stopwatch()
        tracer = get_tracer()
        debug = _LOG.isEnabledFor(logging.DEBUG)

        def stage(name: str):
            return self._stage(
                watch, tracer, name, debug, document.doc_id
            )

        with tracer.span(
            "document",
            category="pipeline",
            doc_id=document.doc_id,
            mentions=len(active),
        ):
            with stage("candidate_retrieval"):
                candidates = self._collect_candidates(
                    document, mentions, active, fixed, extra_candidates
                )
            prerank_pruned: Optional[int] = None
            prerank_survived = 0
            if self.preranker is not None:
                with stage("prerank"):
                    protected = self.preranker.protected_sets(
                        self.kb, mentions, candidates, extra_candidates
                    )
                    candidates, prerank_pruned, prerank_survived = (
                        self.preranker.prune(
                            document, candidates, protected
                        )
                    )
            with stage("feature_computation"):
                features = self._compute_features(
                    document, mentions, active, candidates
                )
                edge_weights = self._edge_weights(features)
                if entity_edge_factor:
                    self._apply_entity_factors(
                        edge_weights, entity_edge_factor
                    )
            with stage("coherence_test"):
                pool = self._apply_coherence_test(
                    features, edge_weights, candidates
                )

            counters: Dict[str, object] = {
                "mentions": len(active),
                "candidates": sum(len(pool[index]) for index in active),
            }
            if prerank_pruned is not None:
                counters["prerank_pruned"] = prerank_pruned
                counters["prerank_survived"] = prerank_survived
            if self.config.use_coherence:
                with stage("graph_build"):
                    graph = self._build_graph(
                        mentions,
                        active,
                        pool,
                        edge_weights,
                        entity_edge_factor,
                    )
                counters["graph_entities"] = graph.entity_count()
                with stage("solve"):
                    local_assignment = self._solver.solve(graph)
                assignment = {
                    active[local]: entity_id
                    for local, entity_id in local_assignment.items()
                }
                for key, value in self._solver.last_stats.as_dict().items():
                    counters[f"solver_{key}"] = value
            else:
                with stage("solve"):
                    assignment = self._solve_local(
                        active, pool, edge_weights
                    )

            with stage("post_process"):
                result = self._build_result(
                    document,
                    mentions,
                    active,
                    candidates,
                    edge_weights,
                    assignment,
                )
        self._record_cache_counters(counters)
        stats = PipelineStats.from_stopwatch(watch, counters)
        self.last_stats = stats
        result.stats = stats
        self._publish_observations(stats, document.doc_id, debug)
        return result

    @staticmethod
    @contextmanager
    def _stage(
        watch: Stopwatch,
        tracer,
        name: str,
        debug: bool,
        doc_id: str,
    ):
        """One pipeline stage: a single clock read feeds the Stopwatch
        (``PipelineStats.phase_seconds``), the tracer span, and the
        per-stage debug event.  Stage entry is a cooperative deadline
        checkpoint (see :mod:`repro.faults.deadline`)."""
        check_budget(f"stage:{name}")
        start = time.perf_counter()
        with tracer.span(name, category="stage"):
            yield
        elapsed = time.perf_counter() - start
        watch.record(name, elapsed)
        if debug:
            log_event(
                _LOG,
                "pipeline.stage",
                stage=name,
                doc_id=doc_id,
                seconds=elapsed,
            )

    def _publish_observations(
        self, stats: PipelineStats, doc_id: str, debug: bool
    ) -> None:
        """Fold this document's stats into the global metrics registry."""
        metrics = get_metrics()
        if metrics.enabled:
            metrics.counter("pipeline.documents").inc()
            metrics.counter("pipeline.mentions").inc(
                int(stats.counters.get("mentions", 0))
            )
            metrics.counter("pipeline.candidates").inc(
                int(stats.counters.get("candidates", 0))
            )
            if "prerank_pruned" in stats.counters:
                metrics.counter("pipeline.prerank.pruned").inc(
                    int(stats.counters["prerank_pruned"])
                )
                metrics.counter("pipeline.prerank.survived").inc(
                    int(stats.counters["prerank_survived"])
                )
            metrics.histogram("pipeline.document.seconds").observe(
                stats.total_seconds
            )
            for phase, seconds in stats.phase_seconds.items():
                metrics.histogram(
                    f"pipeline.stage.{phase}.seconds"
                ).observe(seconds)
        if debug:
            log_event(
                _LOG,
                "pipeline.document",
                doc_id=doc_id,
                mentions=stats.counters.get("mentions", 0),
                candidates=stats.counters.get("candidates", 0),
                seconds=stats.total_seconds,
            )

    def _record_cache_counters(self, counters: Dict[str, object]) -> None:
        """Surface shared relatedness-cache counters (cumulative across
        documents when the measure is a ``CachingRelatedness``)."""
        stats = getattr(self.relatedness, "cache_stats", None)
        if not callable(stats):
            return
        for key, value in stats().as_dict().items():
            counters[f"relatedness_cache_{key}"] = value

    # ------------------------------------------------------------------
    # Candidate retrieval
    # ------------------------------------------------------------------
    @staticmethod
    def _active_indices(
        mentions: Sequence[Mention], restrict_to: Optional[Sequence[int]]
    ) -> List[int]:
        if restrict_to is None:
            return list(range(len(mentions)))
        return sorted(set(restrict_to))

    def _collect_candidates(
        self,
        document: Document,
        mentions: Sequence[Mention],
        active: Sequence[int],
        fixed: Mapping[int, EntityId],
        extra: Mapping[int, Sequence[EntityId]],
    ) -> Dict[int, List[EntityId]]:
        restrictions: Mapping[int, List[EntityId]] = {}
        if self.config.use_name_coreference:
            from repro.ner.coref import coreference_candidate_restriction

            restrictions = coreference_candidate_restriction(
                document, self.kb.candidates
            )
        injector = get_injector()
        candidates: Dict[int, List[EntityId]] = {}
        for index in active:
            if index in fixed:
                candidates[index] = [fixed[index]]
                continue
            if injector.enabled:
                injector.fire("kb.lookup")
            surface = mentions[index].surface
            if index in restrictions:
                found = list(restrictions[index])
            else:
                found = list(self.kb.candidates(surface))
            for entity_id in extra.get(index, ()):
                if entity_id not in found:
                    found.append(entity_id)
            candidates[index] = sorted(found)
        return candidates

    # ------------------------------------------------------------------
    # Feature computation
    # ------------------------------------------------------------------
    def _compute_features(
        self,
        document: Document,
        mentions: Sequence[Mention],
        active: Sequence[int],
        candidates: Mapping[int, List[EntityId]],
    ) -> Dict[int, Tuple[Dict[EntityId, float], Dict[EntityId, float]]]:
        """Per mention: (prior distribution, normalized similarity scores).

        Similarity is normalized per mention by its maximum so it becomes
        commensurable with the prior probability inside the linear edge
        combination; the graph rescales both families again afterwards.

        Under the pure prior baseline (``PriorMode.ONLY`` without
        coherence) similarity scores are never consumed — neither by the
        edge weights nor by the coherence test — so their computation is
        skipped entirely.  That makes the ``prior_only`` degradation rung
        genuinely cheaper and independent of the similarity subsystem.
        """
        injector = get_injector()
        needs_similarity = (
            self.config.prior_mode is not PriorMode.ONLY
            or self.config.use_coherence
        )
        features: Dict[
            int, Tuple[Dict[EntityId, float], Dict[EntityId, float]]
        ] = {}
        for index in active:
            pool = candidates[index]
            if not pool:
                features[index] = ({}, {})
                continue
            sims: Dict[EntityId, float] = {}
            if needs_similarity:
                if injector.enabled:
                    injector.fire("similarity")
                context = DocumentContext(
                    document, exclude_mention=mentions[index]
                )
                sims = self.similarity.simscores(context, pool)
                if self.config.normalize_similarity:
                    max_sim = max(sims.values()) if sims else 0.0
                    if max_sim > 0.0:
                        sims = {
                            eid: s / max_sim for eid, s in sims.items()
                        }
            priors = {
                eid: self.kb.prior(mentions[index].surface, eid)
                for eid in pool
            }
            features[index] = (priors, sims)
        return features

    def _edge_weights(
        self,
        features: Mapping[
            int, Tuple[Dict[EntityId, float], Dict[EntityId, float]]
        ],
    ) -> Dict[int, Dict[EntityId, float]]:
        """Mention-entity edge weights under the configured prior mode."""
        mode = self.config.prior_mode
        mix = self.config.prior_mix
        weights: Dict[int, Dict[EntityId, float]] = {}
        for index, (priors, sims) in features.items():
            pool = set(priors) | set(sims)
            if mode is PriorMode.ONLY:
                weights[index] = {
                    eid: priors.get(eid, 0.0) for eid in pool
                }
                continue
            use_prior = mode is PriorMode.ALWAYS or (
                mode is PriorMode.TEST
                and passes_prior_test(priors, self.config.prior_threshold)
            )
            if use_prior:
                weights[index] = {
                    eid: mix * priors.get(eid, 0.0)
                    + (1.0 - mix) * sims.get(eid, 0.0)
                    for eid in pool
                }
            else:
                weights[index] = {eid: sims.get(eid, 0.0) for eid in pool}
        return weights

    @staticmethod
    def _apply_entity_factors(
        edge_weights: Dict[int, Dict[EntityId, float]],
        factors: Mapping[EntityId, float],
    ) -> None:
        """Multiply mention-entity weights of selected entities (the EE
        balance γ of Section 5.6) — applied in both inference modes."""
        for weights in edge_weights.values():
            for entity_id, factor in factors.items():
                if entity_id in weights:
                    weights[entity_id] *= factor

    def _apply_coherence_test(
        self,
        features: Mapping[
            int, Tuple[Dict[EntityId, float], Dict[EntityId, float]]
        ],
        edge_weights: Mapping[int, Dict[EntityId, float]],
        candidates: Mapping[int, List[EntityId]],
    ) -> Dict[int, List[EntityId]]:
        """Fix agreeing mentions to their local winner (Section 3.5.2)."""
        pool: Dict[int, List[EntityId]] = {
            index: list(cands) for index, cands in candidates.items()
        }
        if not (self.config.use_coherence and self.config.use_coherence_test):
            return pool
        for index, cands in pool.items():
            if len(cands) <= 1:
                continue
            priors, sims = features[index]
            if should_fix_mention(
                priors, sims, self.config.coherence_threshold
            ):
                winner = max(
                    cands,
                    key=lambda eid: (edge_weights[index].get(eid, 0.0), eid),
                )
                pool[index] = [winner]
        return pool

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def _solve_local(
        self,
        active: Sequence[int],
        pool: Mapping[int, List[EntityId]],
        edge_weights: Mapping[int, Dict[EntityId, float]],
    ) -> Dict[int, EntityId]:
        """Mention-by-mention argmax (no coherence)."""
        assignment: Dict[int, EntityId] = {}
        for index in active:
            cands = pool[index]
            if not cands:
                continue
            assignment[index] = max(
                cands,
                key=lambda eid: (edge_weights[index].get(eid, 0.0), eid),
            )
        return assignment

    def _build_graph(
        self,
        mentions: Sequence[Mention],
        active: Sequence[int],
        pool: Mapping[int, List[EntityId]],
        edge_weights: Mapping[int, Dict[EntityId, float]],
        entity_edge_factor: Optional[Mapping[EntityId, float]],
    ) -> MentionEntityGraph:
        graph = MentionEntityGraph([mentions[i] for i in active])
        index_of = {original: local for local, original in enumerate(active)}
        entity_mentions: Dict[EntityId, Set[int]] = {}
        for original in active:
            local = index_of[original]
            for entity_id in pool[original]:
                graph.add_mention_entity_edge(
                    local,
                    entity_id,
                    edge_weights[original].get(entity_id, 0.0),
                )
                entity_mentions.setdefault(entity_id, set()).add(local)
        entities = sorted(entity_mentions)
        self.relatedness.prepare(entities)
        for i, a in enumerate(entities):
            for b in entities[i + 1 :]:
                if entity_mentions[a] == entity_mentions[b] and len(
                    entity_mentions[a]
                ) == 1:
                    # Mutually exclusive candidates of one mention: no
                    # coherence edge (Section 4.6.4).
                    continue
                weight = self.relatedness.relatedness(a, b)
                if weight > 0.0:
                    graph.add_entity_entity_edge(a, b, weight)
        graph.rescale_and_balance(self.config.gamma)
        if entity_edge_factor:
            self._dampen_entities(graph, entity_edge_factor)
        return graph

    @staticmethod
    def _dampen_entities(
        graph: MentionEntityGraph, factors: Mapping[EntityId, float]
    ) -> None:
        """Dampen coherence edges of selected entities.  Mention-entity
        weights were already dampened before graph construction, so only
        the entity-entity family is touched here."""
        active = set(graph.active_entities())
        for entity_id, factor in sorted(factors.items()):
            if entity_id not in active:
                continue
            for other in graph.ee_neighbors(entity_id):
                graph.add_entity_entity_edge(
                    entity_id,
                    other,
                    graph.ee_weight(entity_id, other) * factor,
                )

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------
    def _build_result(
        self,
        document: Document,
        mentions: Sequence[Mention],
        active: Sequence[int],
        candidates: Mapping[int, List[EntityId]],
        edge_weights: Mapping[int, Dict[EntityId, float]],
        assignment: Mapping[int, EntityId],
    ) -> DisambiguationResult:
        chosen_by_index = dict(assignment)
        assignments: List[MentionAssignment] = []
        for index in active:
            mention = mentions[index]
            pool = candidates[index]
            if not pool:
                assignments.append(
                    MentionAssignment(
                        mention=mention, entity=OUT_OF_KB, score=0.0
                    )
                )
                continue
            chosen = chosen_by_index.get(index)
            if chosen is None:
                chosen = max(
                    pool,
                    key=lambda eid: (edge_weights[index].get(eid, 0.0), eid),
                )
            scores = self._candidate_scores(
                index, pool, edge_weights, chosen_by_index
            )
            assignments.append(
                MentionAssignment(
                    mention=mention,
                    entity=chosen,
                    score=scores.get(chosen, 0.0),
                    candidate_scores=scores,
                )
            )
        return DisambiguationResult(
            doc_id=document.doc_id, assignments=assignments
        )

    def _candidate_scores(
        self,
        index: int,
        pool: Sequence[EntityId],
        edge_weights: Mapping[int, Dict[EntityId, float]],
        assignment: Mapping[int, EntityId],
    ) -> Dict[EntityId, float]:
        """Weighted-degree scores for every candidate of a mention.

        The score combines the mention-entity edge weight with the
        candidate's coherence to the entities *chosen* for the other
        mentions — the "weighted-degree" score that the confidence
        assessors of Section 5.4 normalize.
        """
        others = sorted(
            {
                entity_id
                for other_index, entity_id in assignment.items()
                if other_index != index
            }
        )
        scores: Dict[EntityId, float] = {}
        for entity_id in pool:
            score = edge_weights[index].get(entity_id, 0.0)
            if self.config.use_coherence:
                coherence = sum(
                    self.relatedness.relatedness(entity_id, other)
                    for other in others
                    if other != entity_id
                )
                score += self.config.gamma * coherence
            scores[entity_id] = score
        return scores
