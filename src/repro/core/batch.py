"""Batch execution of a disambiguation pipeline over a document corpus.

The per-document solver is fast (PR 1); at corpus scale the hot path is
fanning documents out and not recomputing shared work.  This module
provides the batch layer:

* :class:`BatchRunner` runs any pipeline (an object with
  ``disambiguate(document) -> DisambiguationResult``) over a sequence of
  documents on a ``concurrent.futures`` pool — threads, processes, or a
  plain serial loop — with **deterministic result ordering** (results come
  back in input order regardless of completion order) and **per-document
  error isolation** (a failing document yields a recorded
  :class:`DocumentFailure`, never a crashed run).
* Worker pipelines share pairwise relatedness work through a
  :class:`~repro.relatedness.caching.CachingRelatedness` passed to the
  ``pipeline_factory`` closure (thread mode) — see
  :func:`repro.eval.runner.run_disambiguator` and
  ``benchmarks/bench_batch.py`` for the canonical wiring.

Pipeline sharing rules:

* ``executor="serial"`` and ``executor="thread"`` can reuse one
  ``pipeline`` instance.  A shared pipeline is safe for *results* under
  threads only if its relatedness measure is thread-safe — wrap it in
  :class:`CachingRelatedness`.  The LSH measures keep their per-task
  ``prepare`` state (allowed pairs, pair cache) in thread-local storage
  over a read-only KB-wide sketch table, so one instance serves
  concurrent documents; only their pruned zeros are excluded from shared
  memoization (see ``cacheable_pair``).  Prefer ``pipeline_factory``:
  each worker thread lazily builds its own pipeline, and the factory
  closes over whatever should be shared (the KB, a caching relatedness
  wrapper, a precomputed sketch table).
* ``executor="process"`` requires a *picklable* ``pipeline_factory``
  (a module-level callable); each worker process builds its pipeline
  once in the pool initializer.  Processes cannot share a relatedness
  cache.
"""

from __future__ import annotations

import logging
import threading
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.errors import ReproError, classify_error, describe_error
from repro.faults.injector import get_injector
from repro.obs import (
    MetricsRegistry,
    TraceContext,
    Tracer,
    get_metrics,
    get_tracer,
    log_event,
    set_metrics,
    set_tracer,
    use_context,
)
from repro.types import DisambiguationResult, Document
from repro.utils.timing import PipelineStats

_LOG = logging.getLogger("repro.batch")

#: Builds a fresh pipeline; must be picklable for ``executor="process"``.
PipelineFactory = Callable[[], object]

_EXECUTORS = ("serial", "thread", "process")


class BatchError(ReproError):
    """Misconfiguration of the batch layer (not a document failure)."""


@dataclass(frozen=True)
class BatchConfig:
    """How to fan a corpus out over workers.

    ``workers <= 1`` always degrades to the serial loop, whatever the
    ``executor`` says, so callers can scale a single knob.
    ``max_pending`` bounds the number of in-flight documents (back-
    pressure for very large corpora); ``None`` submits everything at
    once.
    """

    workers: int = 1
    executor: str = "thread"
    max_pending: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise BatchError("workers must be >= 1")
        if self.executor not in _EXECUTORS:
            raise BatchError(
                f"executor must be one of {_EXECUTORS}, "
                f"got {self.executor!r}"
            )
        if self.max_pending is not None and self.max_pending < 1:
            raise BatchError("max_pending must be None or >= 1")

    @property
    def effective_workers(self) -> int:
        """Worker count after the serial degradation rule."""
        return self.workers if self.executor != "serial" else 1


@dataclass(frozen=True)
class DocumentFailure:
    """One document that raised instead of disambiguating.

    ``kind`` buckets the error under the robustness taxonomy of
    :mod:`repro.errors` (``transient`` / ``permanent`` / ``deadline``);
    ``attempts`` counts pipeline attempts the document consumed before
    failing (> 1 when a robustness layer retried or degraded).
    ``request_id`` joins the failure to the originating serving request's
    trace (empty outside the serving path).
    """

    index: int
    doc_id: str
    error: str
    traceback: str = ""
    kind: str = "permanent"
    attempts: int = 1
    request_id: str = ""

    @classmethod
    def from_exception(
        cls,
        index: int,
        doc_id: str,
        exc: Exception,
        request_id: str = "",
    ) -> "DocumentFailure":
        """Build a failure record routed through the error taxonomy.

        Only ``Exception`` is accepted: control-flow exceptions
        (``KeyboardInterrupt``, ``SystemExit``) must propagate and never
        become document failures.
        """
        return cls(
            index=index,
            doc_id=doc_id,
            error=describe_error(exc),
            traceback=traceback.format_exc(),
            kind=classify_error(exc),
            attempts=int(getattr(exc, "robust_attempts", 1)),
            request_id=request_id,
        )


@dataclass
class BatchOutcome:
    """Everything one batch pass produces.

    ``results[i]`` corresponds to ``documents[i]`` — ``None`` exactly when
    ``documents[i]`` appears in ``failures``.
    """

    results: List[Optional[DisambiguationResult]] = field(
        default_factory=list
    )
    failures: List[DocumentFailure] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: Snapshot of the shared relatedness cache, when one was observable.
    cache_stats: Optional[Dict[str, object]] = None
    #: Merged per-document :class:`~repro.utils.timing.PipelineStats`
    #: totals across every worker — thread *and* process executors (the
    #: per-worker counters ride back on each pickled result).
    stats: Optional[PipelineStats] = None

    @property
    def ok(self) -> bool:
        """True when every document disambiguated."""
        return not self.failures

    @property
    def rung_counts(self) -> Dict[str, int]:
        """Documents per degradation rung (``{"full": n, ...}``) —
        which configuration of the graceful-degradation ladder produced
        each successful result."""
        counts: Dict[str, int] = {}
        for result in self.results:
            if result is not None:
                rung = getattr(result, "degradation_rung", "full")
                counts[rung] = counts.get(rung, 0) + 1
        return counts

    @property
    def failure_kinds(self) -> Dict[str, int]:
        """Failures per taxonomy bucket (transient/permanent/deadline)."""
        counts: Dict[str, int] = {}
        for failure in self.failures:
            counts[failure.kind] = counts.get(failure.kind, 0) + 1
        return counts

    @property
    def successes(self) -> List[DisambiguationResult]:
        """The non-failed results, still in input order."""
        return [result for result in self.results if result is not None]

    def raise_on_failure(self) -> None:
        """Raise a :class:`BatchError` summarizing any failures."""
        if self.failures:
            summary = "; ".join(
                f"{failure.doc_id}: {failure.error}"
                for failure in self.failures[:5]
            )
            raise BatchError(
                f"{len(self.failures)} document(s) failed: {summary}"
            )


# ----------------------------------------------------------------------
# Process-pool plumbing: a per-process pipeline built by the initializer.
# ----------------------------------------------------------------------
_process_pipeline: Optional[object] = None


def _process_init(
    factory: PipelineFactory,
    metrics_enabled: bool,
    tracing_enabled: bool = False,
) -> None:
    global _process_pipeline
    if metrics_enabled:
        # Give the child its own registry (robust under both fork and
        # spawn); each task drains it and ships the delta back for the
        # parent to merge.
        set_metrics(MetricsRegistry())
    if tracing_enabled:
        # Child-side spans mint ids in a pid-offset range so absorbed
        # records never collide with parent-side span ids.
        import os

        set_tracer(Tracer(span_id_base=(os.getpid() & 0xFFFF) << 32))
    start = time.perf_counter()
    _process_pipeline = factory()
    metrics = get_metrics()
    if metrics.enabled:
        # How long this worker took to stand up its pipeline — the
        # fork/pickle-vs-snapshot attach cost.  Shipped to the parent
        # with the first task's metrics delta.
        metrics.histogram("batch.worker.attach_ms").observe(
            (time.perf_counter() - start) * 1000.0
        )


def _process_task(
    index: int,
    document: Document,
    context: Optional[TraceContext] = None,
):
    """Runs in the worker process; never raises across the pickle wall.

    Returns ``(index, result, failure, obs_delta)`` — the fourth element
    bundles this task's drained metrics snapshot and exported span dicts
    (``None`` while both are disabled); the parent merges the metrics and
    absorbs the spans on arrival.

    *context* (when given) is activated for the duration of the task, so
    worker-side spans carry the originating request's trace/request ids
    and the worker's top-level span re-parents onto the request span.

    Isolation catches ``Exception`` only and routes it through the error
    taxonomy (:func:`repro.errors.classify_error`); ``KeyboardInterrupt``
    and ``SystemExit`` propagate and tear the task down.
    """
    try:
        with use_context(context):
            injector = get_injector()
            if injector.enabled:
                injector.fire("worker")
            result = _process_pipeline.disambiguate(document)
            failure = None
    except Exception as exc:
        result = None
        failure = DocumentFailure.from_exception(
            index,
            document.doc_id,
            exc,
            request_id=context.request_id if context else "",
        )
    metrics = get_metrics()
    tracer = get_tracer()
    obs_delta = None
    if metrics.enabled or tracer.enabled:
        spans = []
        if tracer.enabled:
            spans = [record.as_dict() for record in tracer.records()]
            tracer.clear()
        obs_delta = {
            "metrics": metrics.drain() if metrics.enabled else None,
            "spans": spans,
        }
    return index, result, failure, obs_delta


class BatchRunner:
    """Fan a pipeline over documents with ordered, isolated results.

    Exactly one of ``pipeline`` / ``pipeline_factory`` drives each worker:
    a factory wins when both are given (the explicit pipeline then only
    serves introspection).  See the module docstring for the sharing
    rules per executor kind.
    """

    def __init__(
        self,
        pipeline: Optional[object] = None,
        pipeline_factory: Optional[PipelineFactory] = None,
        config: Optional[BatchConfig] = None,
    ):
        if pipeline is None and pipeline_factory is None:
            raise BatchError(
                "BatchRunner needs a pipeline or a pipeline_factory"
            )
        self.config = config if config is not None else BatchConfig()
        if self.config.executor == "process" and pipeline_factory is None:
            raise BatchError(
                "process executor requires a picklable pipeline_factory"
            )
        self._pipeline = pipeline
        self._factory = pipeline_factory
        self._thread_local = threading.local()

    # ------------------------------------------------------------------
    # Worker-side pipeline resolution
    # ------------------------------------------------------------------
    def _worker_pipeline(self) -> object:
        """The pipeline this worker thread should use.

        With a factory, each thread builds (and keeps) its own pipeline;
        otherwise the single shared instance is returned.
        """
        if self._factory is None:
            return self._pipeline
        pipeline = getattr(self._thread_local, "pipeline", None)
        if pipeline is None:
            pipeline = self._factory()
            self._thread_local.pipeline = pipeline
        return pipeline

    def _run_one(
        self,
        index: int,
        document: Document,
        context: Optional[TraceContext] = None,
    ):
        # Thread workers share the process-wide metrics registry and
        # tracer, so the fourth (obs delta) slot is always None here.
        # Isolation catches ``Exception`` only, routed through the error
        # taxonomy — ``KeyboardInterrupt``/``SystemExit`` propagate out
        # of the run.
        try:
            with use_context(context):
                injector = get_injector()
                if injector.enabled:
                    injector.fire("worker")
                result = self._worker_pipeline().disambiguate(document)
            return index, result, None, None
        except Exception as exc:
            failure = DocumentFailure.from_exception(
                index,
                document.doc_id,
                exc,
                request_id=context.request_id if context else "",
            )
            return index, None, failure, None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self,
        documents: Sequence[Document],
        contexts: Optional[Sequence[Optional[TraceContext]]] = None,
    ) -> BatchOutcome:
        """Disambiguate every document; results in input order.

        *contexts*, when given, aligns with *documents*: each document
        runs under its own request :class:`TraceContext` (the serving
        path's per-request trace ids crossing the executor boundary).
        """
        if contexts is not None and len(contexts) != len(documents):
            raise BatchError("contexts must align with documents")
        start = time.perf_counter()
        outcome = BatchOutcome(results=[None] * len(documents))

        def context_for(index: int) -> Optional[TraceContext]:
            return contexts[index] if contexts is not None else None

        with get_tracer().span(
            "batch.run",
            category="batch",
            documents=len(documents),
            executor=self.config.executor,
            workers=self.config.effective_workers,
        ):
            if documents:
                if self.config.effective_workers <= 1:
                    self._run_serial(documents, outcome, context_for)
                elif self.config.executor == "process":
                    self._run_pool(
                        documents,
                        outcome,
                        ProcessPoolExecutor(
                            max_workers=self.config.workers,
                            initializer=_process_init,
                            initargs=(
                                self._factory,
                                get_metrics().enabled,
                                get_tracer().enabled,
                            ),
                        ),
                        submit=lambda pool, index, doc: pool.submit(
                            _process_task, index, doc, context_for(index)
                        ),
                    )
                else:
                    self._run_pool(
                        documents,
                        outcome,
                        ThreadPoolExecutor(
                            max_workers=self.config.workers
                        ),
                        submit=lambda pool, index, doc: pool.submit(
                            self._run_one, index, doc, context_for(index)
                        ),
                    )
        outcome.failures.sort(key=lambda failure: failure.index)
        outcome.wall_seconds = time.perf_counter() - start
        outcome.cache_stats = self._observe_cache()
        outcome.stats = PipelineStats.merge(
            result.stats
            for result in outcome.results
            if result is not None and result.stats is not None
        )
        self._publish_observations(outcome, len(documents))
        return outcome

    def _publish_observations(
        self, outcome: BatchOutcome, document_count: int
    ) -> None:
        metrics = get_metrics()
        rungs = outcome.rung_counts
        degraded = sum(
            count for rung, count in rungs.items() if rung != "full"
        )
        if metrics.enabled:
            metrics.counter("batch.runs").inc()
            metrics.counter("batch.documents").inc(document_count)
            metrics.counter("batch.failures").inc(len(outcome.failures))
            for kind, count in outcome.failure_kinds.items():
                metrics.counter(f"batch.failures.{kind}").inc(count)
            if degraded:
                metrics.counter("batch.degraded_documents").inc(degraded)
            metrics.histogram("batch.run.seconds").observe(
                outcome.wall_seconds
            )
        if _LOG.isEnabledFor(logging.INFO):
            log_event(
                _LOG,
                "batch.run",
                _level=logging.INFO,
                documents=document_count,
                failures=len(outcome.failures),
                degraded=degraded,
                executor=self.config.executor,
                workers=self.config.effective_workers,
                seconds=outcome.wall_seconds,
            )

    # ------------------------------------------------------------------
    # Execution strategies
    # ------------------------------------------------------------------
    def _run_serial(
        self,
        documents: Sequence[Document],
        outcome: BatchOutcome,
        context_for,
    ) -> None:
        for index, document in enumerate(documents):
            _, result, failure, _obs = self._run_one(
                index, document, context_for(index)
            )
            if failure is not None:
                outcome.failures.append(failure)
            else:
                outcome.results[index] = result

    def _run_pool(
        self,
        documents: Sequence[Document],
        outcome: BatchOutcome,
        pool,
        submit,
    ) -> None:
        window = self.config.max_pending or len(documents)
        metrics = get_metrics()
        queue_depth = metrics.gauge("batch.queue_depth")
        with pool:
            pending: Set[Future] = set()
            queue = iter(enumerate(documents))
            exhausted = False
            while pending or not exhausted:
                while not exhausted and len(pending) < window:
                    try:
                        index, document = next(queue)
                    except StopIteration:
                        exhausted = True
                        break
                    pending.add(submit(pool, index, document))
                queue_depth.set(len(pending))
                if not pending:
                    continue
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                queue_depth.set(len(pending))
                for future in done:
                    index, result, failure, obs_delta = future.result()
                    if obs_delta:
                        # A process worker's drained registry snapshot
                        # plus its exported span dicts.
                        if obs_delta.get("metrics"):
                            metrics.merge(obs_delta["metrics"])
                        if obs_delta.get("spans"):
                            get_tracer().absorb(obs_delta["spans"])
                    if failure is not None:
                        outcome.failures.append(failure)
                    else:
                        outcome.results[index] = result
        queue_depth.set(0)

    def _observe_cache(self) -> Optional[Dict[str, object]]:
        """Cache counters of the explicit pipeline's measure, if caching."""
        relatedness = getattr(self._pipeline, "relatedness", None)
        stats = getattr(relatedness, "cache_stats", None)
        if callable(stats):
            return stats().as_dict()
        return None
