"""Domain-adaptive disambiguation (the outlook of Section 7.2.3).

The dissertation's future-work chapter proposes adapting the
disambiguation to the input's domain: "running NED on a corpus of
domain-specific documents should take the domain into account".  This
extension implements the idea on top of the existing pipeline:

1. a *domain profile* is precomputed per domain — the IDF-weighted keyword
   distribution of all entities in that domain;
2. for each input document, a domain posterior is estimated from the
   overlap of the document's context words with the profiles;
3. candidates whose domain matches the inferred one get their graph edges
   boosted (through the pipeline's ``entity_edge_factor`` hook), which
   nudges joint inference toward domain-consistent interpretations.

The boost is deliberately mild — a prior over interpretations, not a hard
filter — so out-of-domain documents degrade gracefully to plain AIDA.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.kb.knowledge_base import KnowledgeBase
from repro.similarity.context import DocumentContext
from repro.types import DisambiguationResult, Document, EntityId


class DomainAdaptiveDisambiguator:
    """AIDA with a document-level domain prior."""

    def __init__(
        self,
        kb: KnowledgeBase,
        config: Optional[AidaConfig] = None,
        boost: float = 0.25,
        pipeline: Optional[AidaDisambiguator] = None,
    ):
        if boost < 0.0:
            raise ValueError("boost must be non-negative")
        self.kb = kb
        self.boost = boost
        self._pipeline = (
            pipeline
            if pipeline is not None
            else AidaDisambiguator(kb, config=config)
        )
        self._weights = self._pipeline.weights
        self._profiles: Optional[Dict[str, Dict[str, float]]] = None
        self._entity_domains: Dict[EntityId, str] = {}

    # ------------------------------------------------------------------
    # Domain profiles
    # ------------------------------------------------------------------
    def _domain_of(self, entity_id: EntityId) -> str:
        cached = self._entity_domains.get(entity_id)
        if cached is None:
            entity = self.kb.maybe_entity(entity_id)
            cached = entity.domain if entity is not None else ""
            self._entity_domains[entity_id] = cached
        return cached

    def domain_profiles(self) -> Dict[str, Dict[str, float]]:
        """Per-domain L1-normalized IDF-weighted keyword profiles."""
        if self._profiles is not None:
            return self._profiles
        profiles: Dict[str, Dict[str, float]] = {}
        for entity_id in self.kb.entity_ids():
            domain = self._domain_of(entity_id)
            if not domain:
                continue
            profile = profiles.setdefault(domain, {})
            for word, count in self.kb.keyphrases.keyword_counts(
                entity_id
            ).items():
                idf = self._weights.idf_word(word)
                if idf > 0.0:
                    profile[word] = profile.get(word, 0.0) + count * idf
        for profile in profiles.values():
            total = sum(profile.values())
            if total > 0.0:
                for word in profile:
                    profile[word] /= total
        self._profiles = profiles
        return profiles

    def domain_posterior(self, document: Document) -> Dict[str, float]:
        """P(domain | document) from context-word/profile overlap."""
        counts = DocumentContext(document).term_counts()
        scores: Dict[str, float] = {}
        for domain, profile in self.domain_profiles().items():
            scores[domain] = sum(
                weight * counts.get(word, 0)
                for word, weight in profile.items()
            )
        total = sum(scores.values())
        if total <= 0.0:
            return {domain: 0.0 for domain in scores}
        return {domain: score / total for domain, score in scores.items()}

    # ------------------------------------------------------------------
    # Disambiguation
    # ------------------------------------------------------------------
    def _edge_factors(
        self, document: Document, candidates: Sequence[EntityId]
    ) -> Dict[EntityId, float]:
        posterior = self.domain_posterior(document)
        factors: Dict[EntityId, float] = {}
        for entity_id in candidates:
            domain = self._domain_of(entity_id)
            weight = posterior.get(domain, 0.0)
            factors[entity_id] = 1.0 + self.boost * weight
        return factors

    def disambiguate(
        self, document: Document, **kwargs
    ) -> DisambiguationResult:
        """Disambiguate with the domain prior applied as edge factors."""
        candidates: List[EntityId] = []
        for mention in document.mentions:
            candidates.extend(self.kb.candidates(mention.surface))
        factors = self._edge_factors(document, sorted(set(candidates)))
        return self._pipeline.disambiguate(
            document, entity_edge_factor=factors, **kwargs
        )
