"""AIDA — accurate online disambiguation of named entities (Chapter 3)."""

from repro.core.config import AidaConfig, PriorMode
from repro.core.robustness import (
    coherence_robustness_distance,
    passes_prior_test,
)
from repro.core.pipeline import AidaDisambiguator
from repro.core.adaptation import DomainAdaptiveDisambiguator
from repro.core.batch import (
    BatchConfig,
    BatchOutcome,
    BatchRunner,
    DocumentFailure,
)

__all__ = [
    "AidaConfig",
    "PriorMode",
    "AidaDisambiguator",
    "DomainAdaptiveDisambiguator",
    "BatchConfig",
    "BatchOutcome",
    "BatchRunner",
    "DocumentFailure",
    "passes_prior_test",
    "coherence_robustness_distance",
]
