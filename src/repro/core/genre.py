"""Genre-adaptive disambiguation (the outlook of Section 7.2.2).

Different text genres call for different feature mixes: the paper notes
that TagMe's prior+relatedness profile wins on "short texts with a high
density of mentions" where there is too little prose for context
similarity, while AIDA's full feature set wins on regular articles.  The
future-work chapter proposes adapting to the genre automatically.

:class:`GenreAdaptiveDisambiguator` implements that proposal with a
transparent rule: documents are profiled by length and mention density,
and routed to a genre-appropriate configuration —

* **short / mention-dense** (tweet- or KORE50-like): similarity stays on
  (every word counts) but the prior test threshold drops and coherence is
  always trusted (no coherence test — with three mentions in fourteen
  words, coherence is the only joint signal);
* **regular prose**: the paper's full AIDA configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.kb.knowledge_base import KnowledgeBase
from repro.types import DisambiguationResult, Document

#: Genre labels.
GENRE_SHORT = "short"
GENRE_REGULAR = "regular"


@dataclass(frozen=True)
class GenreThresholds:
    """Routing rule: a document is *short* when it has at most
    ``max_tokens`` tokens or a mention density of at least
    ``min_density`` mentions per token."""

    max_tokens: int = 40
    min_density: float = 0.12


def classify_genre(
    document: Document, thresholds: Optional[GenreThresholds] = None
) -> str:
    """Label a document short or regular by length/density."""
    thresholds = thresholds if thresholds is not None else GenreThresholds()
    token_count = max(len(document.tokens), 1)
    density = len(document.mentions) / token_count
    if (
        token_count <= thresholds.max_tokens
        or density >= thresholds.min_density
    ):
        return GENRE_SHORT
    return GENRE_REGULAR


def short_text_config() -> AidaConfig:
    """The mention-dense profile: trust coherence unconditionally."""
    return AidaConfig(
        use_coherence=True,
        use_coherence_test=False,
        prior_threshold=0.95,
    )


class GenreAdaptiveDisambiguator:
    """Routes documents to a genre-appropriate AIDA configuration."""

    def __init__(
        self,
        kb: KnowledgeBase,
        thresholds: Optional[GenreThresholds] = None,
        regular_config: Optional[AidaConfig] = None,
        short_config: Optional[AidaConfig] = None,
        relatedness=None,
    ):
        self.thresholds = (
            thresholds if thresholds is not None else GenreThresholds()
        )
        self._regular = AidaDisambiguator(
            kb,
            relatedness=relatedness,
            config=(
                regular_config
                if regular_config is not None
                else AidaConfig.full()
            ),
        )
        self._short = AidaDisambiguator(
            kb,
            relatedness=relatedness,
            config=(
                short_config
                if short_config is not None
                else short_text_config()
            ),
        )

    def genre_of(self, document: Document) -> str:
        """The genre label this router assigns to the document."""
        return classify_genre(document, self.thresholds)

    def disambiguate(
        self, document: Document, **kwargs
    ) -> DisambiguationResult:
        """Disambiguate with the genre-appropriate configuration."""
        if self.genre_of(document) == GENRE_SHORT:
            return self._short.disambiguate(document, **kwargs)
        return self._regular.disambiguate(document, **kwargs)
