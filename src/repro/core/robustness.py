"""AIDA's robustness tests (Section 3.5).

*Prior robustness test*: use the popularity prior only when the best
candidate's prior exceeds ρ; otherwise the prior is disregarded entirely for
this mention — it is never relied upon alone.

*Coherence robustness test*: per mention, compare the popularity-based
probability vector over candidates with the similarity-only probability
vector by L1 distance (a value in [0, 2]).  When the distance stays below λ,
prior and similarity agree; coherence would only add risk, so the mention is
fixed to the locally best candidate before the graph algorithm runs.  When
the distance exceeds λ, the disagreement indicates a situation coherence may
be able to fix, and all candidates stay in the graph.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.types import EntityId


def passes_prior_test(
    prior_distribution: Mapping[EntityId, float], threshold: float
) -> bool:
    """True if the most likely candidate's prior reaches *threshold*."""
    if not prior_distribution:
        return False
    return max(prior_distribution.values()) >= threshold


def _normalize(scores: Mapping[EntityId, float]) -> Dict[EntityId, float]:
    total = sum(scores.values())
    if total <= 0.0:
        size = len(scores)
        return {eid: 1.0 / size for eid in scores} if size else {}
    return {eid: value / total for eid, value in scores.items()}


def coherence_robustness_distance(
    prior_distribution: Mapping[EntityId, float],
    sim_scores: Mapping[EntityId, float],
) -> float:
    """L1 distance between the prior and similarity candidate vectors.

    Both inputs are defined over the same candidate set; the similarity
    scores are normalized to a probability vector first (the prior already
    is one, but is re-normalized defensively for mentions whose candidates
    carry no anchor mass).
    """
    candidates = set(prior_distribution) | set(sim_scores)
    prior = _normalize(
        {eid: prior_distribution.get(eid, 0.0) for eid in candidates}
    )
    sim = _normalize({eid: sim_scores.get(eid, 0.0) for eid in candidates})
    return sum(abs(prior[eid] - sim[eid]) for eid in candidates)


def should_fix_mention(
    prior_distribution: Mapping[EntityId, float],
    sim_scores: Mapping[EntityId, float],
    threshold: float,
) -> bool:
    """Coherence robustness test: fix the mention when prior and similarity
    agree (distance below λ)."""
    if len(set(prior_distribution) | set(sim_scores)) <= 1:
        return True  # a single candidate needs no coherence
    distance = coherence_robustness_distance(prior_distribution, sim_scores)
    return distance < threshold
