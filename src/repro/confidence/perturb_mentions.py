"""Mention-perturbation confidence (Section 5.4.2).

Confidence in mapping mention *m* to entity *e* is high when the choice is
invariant under variations of the input.  This assessor repeatedly drops a
random subset of the document's mentions, re-runs the NED method (treated
as a black box) on the remaining ones, and measures, per mention, how often
the original entity survives::

    conf_perturb(m_i) = c_i / k_i

where ``k_i`` counts the rounds in which m_i was present and ``c_i`` the
rounds in which its entity matched the unperturbed result.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.types import DisambiguationResult, Document, Mention
from repro.utils.rng import SeededRng


class MentionPerturbationConfidence:
    """Drop-mention stability assessor over any NED pipeline."""

    def __init__(
        self,
        pipeline,
        rounds: int = 20,
        keep_probability: float = 0.7,
        seed: int = 71,
    ):
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        if not 0.0 < keep_probability <= 1.0:
            raise ValueError("keep_probability must be in (0, 1]")
        self._pipeline = pipeline
        self.rounds = rounds
        self.keep_probability = keep_probability
        self.seed = seed

    def assess(
        self,
        document: Document,
        baseline: Optional[DisambiguationResult] = None,
    ) -> Dict[Mention, float]:
        """Per-mention drop-stability confidences for the document."""
        if baseline is None:
            baseline = self._pipeline.disambiguate(document)
        initial = baseline.as_map()
        mentions = list(document.mentions)
        if not mentions:
            return {}
        present_counts = [0] * len(mentions)
        stable_counts = [0] * len(mentions)
        rng = SeededRng(self.seed).fork(f"perturb-m:{document.doc_id}")
        for round_index in range(self.rounds):
            subset = [
                index
                for index in range(len(mentions))
                if rng.maybe(self.keep_probability)
            ]
            if not subset:
                continue
            result = self._pipeline.disambiguate(
                document, restrict_to=subset
            )
            perturbed = result.as_map()
            for index in subset:
                mention = mentions[index]
                present_counts[index] += 1
                if perturbed.get(mention) == initial.get(mention):
                    stable_counts[index] += 1
        confidences: Dict[Mention, float] = {}
        for index, mention in enumerate(mentions):
            if present_counts[index] == 0:
                confidences[mention] = 0.0
            else:
                confidences[mention] = (
                    stable_counts[index] / present_counts[index]
                )
        return confidences
