"""Disambiguation confidence assessment (Section 5.4)."""

from repro.confidence.normalization import (
    normalization_confidence,
    normalized_scores,
)
from repro.confidence.perturb_mentions import MentionPerturbationConfidence
from repro.confidence.perturb_entities import EntityPerturbationConfidence
from repro.confidence.combined import ConfAssessor

__all__ = [
    "normalized_scores",
    "normalization_confidence",
    "MentionPerturbationConfidence",
    "EntityPerturbationConfidence",
    "ConfAssessor",
]
