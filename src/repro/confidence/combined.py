"""The CONF assessor (Section 5.7.1).

Of the three confidence techniques, the paper found a linear combination of
two — the normalized *weighted-degree* score and entity perturbation, with
coefficients 0.5 each — to work best.  ``ConfAssessor`` wraps a pipeline,
runs the baseline disambiguation, and fills each assignment's
``confidence`` with the combined value.
"""

from __future__ import annotations

from typing import Dict

from repro.confidence.normalization import normalization_confidence
from repro.confidence.perturb_entities import EntityPerturbationConfidence
from repro.types import DisambiguationResult, Document, Mention


class ConfAssessor:
    """CONF = 0.5 · conf_norm + 0.5 · conf_entity-perturbation."""

    def __init__(
        self,
        pipeline,
        rounds: int = 12,
        flip_probability: float = 0.25,
        norm_weight: float = 0.5,
        seed: int = 73,
    ):
        if not 0.0 <= norm_weight <= 1.0:
            raise ValueError("norm_weight must be in [0, 1]")
        self._pipeline = pipeline
        self.norm_weight = norm_weight
        self._perturber = EntityPerturbationConfidence(
            pipeline,
            rounds=rounds,
            flip_probability=flip_probability,
            seed=seed,
        )

    def disambiguate_with_confidence(
        self, document: Document
    ) -> DisambiguationResult:
        """Run the pipeline, then attach CONF confidences in place."""
        baseline = self._pipeline.disambiguate(document)
        perturbed = self._perturber.assess(document, baseline)
        for assignment in baseline.assignments:
            norm = normalization_confidence(assignment)
            stability = perturbed.get(assignment.mention, 0.0)
            assignment.confidence = (
                self.norm_weight * norm
                + (1.0 - self.norm_weight) * stability
            )
        return baseline

    def assess(self, document: Document) -> Dict[Mention, float]:
        """Mention → CONF confidence (convenience view)."""
        result = self.disambiguate_with_confidence(document)
        return {
            a.mention: (a.confidence if a.confidence is not None else 0.0)
            for a in result.assignments
        }
