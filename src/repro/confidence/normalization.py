"""Score-normalization confidence (Section 5.4.1).

Most good NED methods emit unbounded scores.  Normalizing a mention's
candidate scores to sum to one turns the chosen candidate's share of the
total score mass into a confidence::

    normscore(m, e) = score(m, e) / sum_i score(m, e_i)
    conf_norm(m)    = normscore(m, argmax_e score(m, e))

The scores normalized here are the pipeline's *weighted-degree* candidate
scores (mention-entity weight plus coherence to the other mentions' chosen
entities), which Section 5.7.1 found to work best.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.types import EntityId, MentionAssignment


def normalized_scores(
    candidate_scores: Mapping[EntityId, float]
) -> Dict[EntityId, float]:
    """Per-mention normalization of candidate scores to a distribution."""
    if not candidate_scores:
        return {}
    # Shift negative scores to zero so the normalization stays a
    # probability vector even for measures that can go negative.
    low = min(candidate_scores.values())
    shifted = {
        eid: score - low if low < 0.0 else score
        for eid, score in candidate_scores.items()
    }
    total = sum(shifted.values())
    if total <= 0.0:
        uniform = 1.0 / len(shifted)
        return {eid: uniform for eid in shifted}
    return {eid: value / total for eid, value in shifted.items()}


def normalization_confidence(assignment: MentionAssignment) -> float:
    """conf_norm of one mention's assignment (1.0 for a lone candidate)."""
    scores = normalized_scores(assignment.candidate_scores)
    if not scores:
        return 0.0
    return scores.get(assignment.entity, 0.0)
