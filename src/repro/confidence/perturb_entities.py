"""Entity-perturbation confidence (Section 5.4.3).

Instead of removing mentions, this assessor force-maps a small random
subset of mentions to *alternate* (deliberately wrong) entities — chosen
proportionally to the candidates' scores — and re-runs NED on the rest with
the forced entities kept in the coherence model.  A mention whose entity
survives many such perturbations is confidently disambiguated::

    conf(m_i) = c_i / k_i

over rounds in which m_i was free (not force-mapped).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.types import (
    DisambiguationResult,
    Document,
    EntityId,
    Mention,
)
from repro.utils.rng import SeededRng


class EntityPerturbationConfidence:
    """Force-flip stability assessor over a pipeline supporting ``fixed``."""

    def __init__(
        self,
        pipeline,
        rounds: int = 20,
        flip_probability: float = 0.25,
        seed: int = 72,
    ):
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        if not 0.0 < flip_probability < 1.0:
            raise ValueError("flip_probability must be in (0, 1)")
        self._pipeline = pipeline
        self.rounds = rounds
        self.flip_probability = flip_probability
        self.seed = seed

    def assess(
        self,
        document: Document,
        baseline: Optional[DisambiguationResult] = None,
    ) -> Dict[Mention, float]:
        """Per-mention flip-stability confidences for the document."""
        if baseline is None:
            baseline = self._pipeline.disambiguate(document)
        mentions = list(document.mentions)
        if not mentions:
            return {}
        initial = baseline.as_map()
        alternates = self._alternate_pools(baseline)
        present_counts = [0] * len(mentions)
        stable_counts = [0] * len(mentions)
        rng = SeededRng(self.seed).fork(f"perturb-e:{document.doc_id}")
        for round_index in range(self.rounds):
            forced: Dict[int, EntityId] = {}
            for index in range(len(mentions)):
                pool = alternates.get(index)
                if pool and rng.maybe(self.flip_probability):
                    entities, weights = pool
                    forced[index] = rng.weighted_choice(entities, weights)
            if len(forced) == len(mentions):
                continue  # nothing left free to assess
            result = self._pipeline.disambiguate(document, fixed=forced)
            perturbed = result.as_map()
            for index, mention in enumerate(mentions):
                if index in forced:
                    continue
                present_counts[index] += 1
                if perturbed.get(mention) == initial.get(mention):
                    stable_counts[index] += 1
        confidences: Dict[Mention, float] = {}
        for index, mention in enumerate(mentions):
            if present_counts[index] == 0:
                confidences[mention] = 0.0
            else:
                confidences[mention] = (
                    stable_counts[index] / present_counts[index]
                )
        return confidences

    def _alternate_pools(self, baseline: DisambiguationResult):
        """Per mention index: (alternate entities, sampling weights).

        Alternates are all candidates except the initially chosen one,
        weighted by their scores (floored at a small epsilon so zero-score
        candidates remain reachable).
        """
        pools: Dict[int, Optional[tuple]] = {}
        for index, assignment in enumerate(baseline.assignments):
            entities: List[EntityId] = [
                eid
                for eid in sorted(assignment.candidate_scores)
                if eid != assignment.entity
            ]
            if not entities:
                pools[index] = None
                continue
            weights = [
                max(assignment.candidate_scores[eid], 1e-6)
                for eid in entities
            ]
            pools[index] = (entities, weights)
        return pools
