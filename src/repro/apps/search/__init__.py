"""Searching for strings, things, and cats (Section 6.1)."""

from repro.apps.search.index import EntitySearchIndex
from repro.apps.search.query import Query, SearchResult

__all__ = ["EntitySearchIndex", "Query", "SearchResult"]
