"""Query evaluation over the strings/things/cats index.

A query is a conjunction of words, entities, and categories; scoring is
term-frequency based with a per-dimension weight.  The use cases of
Section 6.1 — "songs performed by Dylan", "politicians visiting <city>" —
translate into one category term plus one entity term.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.apps.search.index import EntitySearchIndex
from repro.types import EntityId


@dataclass(frozen=True)
class Query:
    """A conjunctive query over the three dimensions."""

    words: Tuple[str, ...] = ()
    entities: Tuple[EntityId, ...] = ()
    categories: Tuple[str, ...] = ()

    @staticmethod
    def of(
        words: Sequence[str] = (),
        entities: Sequence[EntityId] = (),
        categories: Sequence[str] = (),
    ) -> "Query":
        """Build a Query from plain sequences."""
        return Query(
            words=tuple(words),
            entities=tuple(entities),
            categories=tuple(categories),
        )

    @property
    def is_empty(self) -> bool:
        """True when no term is present in any dimension."""
        return not (self.words or self.entities or self.categories)


@dataclass(frozen=True)
class SearchResult:
    """One ranked hit: document id and score."""
    doc_id: str
    score: float


def execute(
    index: EntitySearchIndex,
    query: Query,
    limit: int = 10,
    word_weight: float = 1.0,
    entity_weight: float = 2.0,
    category_weight: float = 1.5,
) -> List[SearchResult]:
    """AND-semantics retrieval with weighted tf scoring."""
    if query.is_empty:
        return []
    posting_sets: List[Dict[str, int]] = []
    scores: Dict[str, float] = {}

    def collect(postings: Dict[str, int], weight: float) -> None:
        posting_sets.append(postings)
        for doc_id, count in postings.items():
            scores[doc_id] = scores.get(doc_id, 0.0) + weight * count

    for word in query.words:
        collect(index.documents_with_word(word), word_weight)
    for entity_id in query.entities:
        collect(index.documents_with_entity(entity_id), entity_weight)
    for category in query.categories:
        collect(index.documents_with_category(category), category_weight)
    if not posting_sets:
        return []
    matching = set(posting_sets[0])
    for postings in posting_sets[1:]:
        matching &= set(postings)
    ranked = sorted(
        (SearchResult(doc_id=doc_id, score=scores[doc_id]) for doc_id in matching),
        key=lambda r: (-r.score, r.doc_id),
    )
    return ranked[:limit]
