"""Query-language parser for the strings/things/cats search.

The STICS-style interface (Section 6.1) lets users mix the three
dimensions in one query.  The grammar here is a flat conjunction of terms:

* ``word`` or ``word:guitar`` — a string term;
* ``thing:Bob_Dylan`` — a canonical entity term (entity id);
* ``thing:"Bob Dylan"`` — an entity by name, resolved through the
  dictionary (ambiguous names resolve to the most popular candidate);
* ``cat:musician`` — a taxonomy category term.

Quoted values may contain spaces.  Unknown prefixes raise
:class:`QueryParseError`.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.apps.search.query import Query
from repro.errors import ReproError
from repro.kb.knowledge_base import KnowledgeBase


class QueryParseError(ReproError):
    """The query string is malformed or references something unknown."""


_TERM_RE = re.compile(
    r"""
    (?:(?P<prefix>word|thing|cat):)?     # optional dimension prefix
    (?:"(?P<quoted>[^"]*)"|(?P<bare>\S+))
    """,
    re.VERBOSE,
)


def _terms(query_string: str) -> List[Tuple[str, str]]:
    terms: List[Tuple[str, str]] = []
    position = 0
    text = query_string.strip()
    while position < len(text):
        if text[position].isspace():
            position += 1
            continue
        match = _TERM_RE.match(text, position)
        if match is None or match.end() == position:
            raise QueryParseError(
                f"cannot parse query at position {position}: "
                f"{text[position:position + 20]!r}"
            )
        prefix = match.group("prefix") or "word"
        value = (
            match.group("quoted")
            if match.group("quoted") is not None
            else match.group("bare")
        )
        if not value:
            raise QueryParseError("empty term value")
        terms.append((prefix, value))
        position = match.end()
    return terms


def _resolve_entity(kb: KnowledgeBase, value: str) -> str:
    """An entity term is either an entity id or a dictionary name."""
    if value in kb:
        return value
    candidates = kb.candidates(value)
    if not candidates:
        raise QueryParseError(f"unknown entity: {value!r}")
    # Ambiguous names resolve to the most popular candidate — the sensible
    # autocompletion default; callers wanting control pass the id.
    return max(
        candidates, key=lambda eid: (kb.entity(eid).popularity, eid)
    )


def parse_query(
    query_string: str, kb: Optional[KnowledgeBase] = None
) -> Query:
    """Parse a query string into a :class:`Query`.

    Entity-by-name resolution and category validation need the *kb*; pass
    ``None`` to accept entity ids and category names verbatim.
    """
    words: List[str] = []
    entities: List[str] = []
    categories: List[str] = []
    for prefix, value in _terms(query_string):
        if prefix == "word":
            words.append(value.lower())
        elif prefix == "thing":
            entities.append(
                _resolve_entity(kb, value) if kb is not None else value
            )
        else:  # cat
            if kb is not None and value not in kb.taxonomy:
                raise QueryParseError(f"unknown category: {value!r}")
            categories.append(value)
    return Query.of(words=words, entities=entities, categories=categories)
