"""Inverted index over strings, things, and cats.

The STICS-style search of Section 6.1 indexes documents along three
dimensions: plain *words* (strings), disambiguated canonical *entities*
(things), and the entities' semantic *categories* (cats, expanded through
the taxonomy).  Queries may mix all three; an entity-annotated document
matches the category "musician" through any mentioned musician even if the
word never occurs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.kb.knowledge_base import KnowledgeBase
from repro.text.stopwords import content_words
from repro.types import DisambiguationResult, Document, EntityId


@dataclass
class _Posting:
    doc_id: str
    count: int = 0


class EntitySearchIndex:
    """Three-dimensional inverted index with tf scoring."""

    def __init__(self, kb: KnowledgeBase):
        self.kb = kb
        self._word_index: Dict[str, Dict[str, int]] = {}
        self._entity_index: Dict[EntityId, Dict[str, int]] = {}
        self._category_index: Dict[str, Dict[str, int]] = {}
        self._documents: Dict[str, Document] = {}

    def __len__(self) -> int:
        return len(self._documents)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def add_document(
        self,
        document: Document,
        annotations: Optional[DisambiguationResult] = None,
    ) -> None:
        """Index a document; *annotations* carries its entity links."""
        doc_id = document.doc_id
        self._documents[doc_id] = document
        for word in content_words(document.tokens):
            self._bump(self._word_index, word, doc_id)
        if annotations is None:
            return
        for assignment in annotations.assignments:
            if assignment.is_out_of_kb:
                continue
            entity_id = assignment.entity
            if entity_id not in self.kb:
                continue
            self._bump(self._entity_index, entity_id, doc_id)
            for type_name in self.kb.types_of(entity_id):
                self._bump(self._category_index, type_name, doc_id)

    @staticmethod
    def _bump(index: Dict, key, doc_id: str) -> None:
        postings = index.setdefault(key, {})
        postings[doc_id] = postings.get(doc_id, 0) + 1

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def documents_with_word(self, word: str) -> Dict[str, int]:
        """doc id -> tf for a word term."""
        return dict(self._word_index.get(word.lower(), {}))

    def documents_with_entity(self, entity_id: EntityId) -> Dict[str, int]:
        """doc id -> tf for an entity term."""
        return dict(self._entity_index.get(entity_id, {}))

    def documents_with_category(self, category: str) -> Dict[str, int]:
        """doc id -> tf for a category term."""
        return dict(self._category_index.get(category, {}))

    def document(self, doc_id: str) -> Optional[Document]:
        """The indexed document by id, if present."""
        return self._documents.get(doc_id)

    def entity_frequencies(self) -> Dict[EntityId, int]:
        """Total mention count per indexed entity (for autocompletion)."""
        return {
            entity_id: sum(postings.values())
            for entity_id, postings in self._entity_index.items()
        }

    def autocomplete_entity(
        self, prefix: str, limit: int = 10
    ) -> List[EntityId]:
        """Entities whose canonical name starts with *prefix*, most
        frequently mentioned first."""
        prefix_lower = prefix.lower()
        frequencies = self.entity_frequencies()
        matches = [
            entity_id
            for entity_id in self._entity_index
            if self.kb.entity(entity_id)
            .canonical_name.lower()
            .startswith(prefix_lower)
        ]
        matches.sort(key=lambda eid: (-frequencies.get(eid, 0), eid))
        return matches[:limit]
