"""Analytics with strings, things, and cats (Section 6.2)."""

from repro.apps.analytics.store import AnalyticsStore
from repro.apps.analytics.trends import TrendAnalyzer

__all__ = ["AnalyticsStore", "TrendAnalyzer"]
