"""Trend and aggregate analytics over the occurrence store.

The use cases of Section 6.2: entity frequency time lines, bursting
("trending") entities whose daily count spikes over their trailing
baseline, and category roll-ups ("how often were *musicians* in the news
this week") through the taxonomy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.apps.analytics.store import AnalyticsStore
from repro.kb.knowledge_base import KnowledgeBase
from repro.types import EntityId


class TrendAnalyzer:
    """Analytics queries over an :class:`AnalyticsStore`."""

    def __init__(self, store: AnalyticsStore, kb: KnowledgeBase):
        self.store = store
        self.kb = kb

    def trending(
        self, day: int, baseline_days: int = 7, limit: int = 10
    ) -> List[Tuple[EntityId, float]]:
        """Entities whose count on *day* most exceeds their trailing
        average — burst score = count / (baseline average + 1)."""
        today = self.store.entities_on(day)
        scored: List[Tuple[EntityId, float]] = []
        for entity_id, count in today.items():
            baseline = 0.0
            for past in range(day - baseline_days, day):
                baseline += self.store.count_on(entity_id, past)
            baseline_avg = baseline / baseline_days if baseline_days else 0.0
            scored.append((entity_id, count / (baseline_avg + 1.0)))
        scored.sort(key=lambda kv: (-kv[1], kv[0]))
        return scored[:limit]

    def category_counts(
        self, day: int, coarse_only: bool = True
    ) -> Dict[str, int]:
        """Document-occurrence counts rolled up by entity category."""
        counts: Dict[str, int] = {}
        for entity_id, count in self.store.entities_on(day).items():
            if entity_id not in self.kb:
                continue
            if coarse_only:
                categories = {self.kb.coarse_class(entity_id)}
            else:
                categories = set(self.kb.types_of(entity_id))
            for category in categories:
                counts[category] = counts.get(category, 0) + count
        return counts

    def top_entities(
        self,
        first_day: int,
        last_day: int,
        category: Optional[str] = None,
        limit: int = 10,
    ) -> List[Tuple[EntityId, int]]:
        """Most mentioned entities in a day range, optionally filtered to
        a taxonomy category."""
        totals: Dict[EntityId, int] = {}
        for day in range(first_day, last_day + 1):
            for entity_id, count in self.store.entities_on(day).items():
                totals[entity_id] = totals.get(entity_id, 0) + count
        if category is not None:
            totals = {
                entity_id: count
                for entity_id, count in totals.items()
                if entity_id in self.kb
                and category in self.kb.types_of(entity_id)
            }
        ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:limit]

    def co_occurrence_profile(
        self, entity_id: EntityId, limit: int = 10
    ) -> List[Tuple[str, int]]:
        """Co-occurring entities by canonical name (readable output)."""
        profile = []
        for other, count in self.store.co_occurring(entity_id, limit):
            name = (
                self.kb.entity(other).canonical_name
                if other in self.kb
                else other
            )
            profile.append((name, count))
        return profile
