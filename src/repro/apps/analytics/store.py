"""Entity occurrence store over a timestamped stream.

The news-analytics architecture of Section 6.2 keeps, per day, which
entities occurred in which documents; co-occurrence and trend queries run
on top of this store.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.types import DisambiguationResult, Document, EntityId


class AnalyticsStore:
    """Per-day entity occurrence and co-occurrence counts."""

    def __init__(self) -> None:
        #: day -> entity -> number of documents mentioning it that day.
        self._daily_counts: Dict[int, Dict[EntityId, int]] = {}
        #: entity -> set of doc ids it occurs in.
        self._entity_docs: Dict[EntityId, Set[str]] = {}
        #: doc id -> (day, set of entities).
        self._doc_entities: Dict[str, Tuple[int, Set[EntityId]]] = {}

    def ingest(
        self, document: Document, annotations: DisambiguationResult
    ) -> None:
        """Record one annotated document in the store."""
        entities = {
            a.entity for a in annotations.assignments if not a.is_out_of_kb
        }
        day = document.timestamp
        self._doc_entities[document.doc_id] = (day, entities)
        daily = self._daily_counts.setdefault(day, {})
        for entity_id in entities:
            daily[entity_id] = daily.get(entity_id, 0) + 1
            self._entity_docs.setdefault(entity_id, set()).add(
                document.doc_id
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def document_count(self) -> int:
        """Number of ingested documents."""
        return len(self._doc_entities)

    def days(self) -> List[int]:
        """All days with at least one document, sorted."""
        return sorted(self._daily_counts)

    def count_on(self, entity_id: EntityId, day: int) -> int:
        """Documents mentioning the entity on the given day."""
        return self._daily_counts.get(day, {}).get(entity_id, 0)

    def frequency_series(
        self, entity_id: EntityId, first_day: int, last_day: int
    ) -> List[Tuple[int, int]]:
        """(day, document count) for every day in the range."""
        return [
            (day, self.count_on(entity_id, day))
            for day in range(first_day, last_day + 1)
        ]

    def total_count(self, entity_id: EntityId) -> int:
        """Total documents mentioning the entity."""
        return len(self._entity_docs.get(entity_id, set()))

    def co_occurring(
        self, entity_id: EntityId, limit: int = 10
    ) -> List[Tuple[EntityId, int]]:
        """Entities sharing the most documents with *entity_id*."""
        counts: Dict[EntityId, int] = {}
        for doc_id in self._entity_docs.get(entity_id, set()):
            _day, entities = self._doc_entities[doc_id]
            for other in entities:
                if other != entity_id:
                    counts[other] = counts.get(other, 0) + 1
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:limit]

    def entities_on(self, day: int) -> Dict[EntityId, int]:
        """entity -> document count for one day."""
        return dict(self._daily_counts.get(day, {}))
