"""Applications built on the disambiguation stack (Chapter 6):
entity-centric search (Section 6.1) and news analytics (Section 6.2)."""

from repro.apps.search.index import EntitySearchIndex
from repro.apps.search.query import Query, SearchResult
from repro.apps.analytics.store import AnalyticsStore
from repro.apps.analytics.trends import TrendAnalyzer

__all__ = [
    "EntitySearchIndex",
    "Query",
    "SearchResult",
    "AnalyticsStore",
    "TrendAnalyzer",
]
