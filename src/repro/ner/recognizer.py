"""Dictionary + capitalization named entity recognizer.

Strategy (greedy longest-match, left to right):

1. Try to match the longest token n-gram (up to ``max_mention_len``) whose
   surface form has an entry in the KB dictionary *and* looks like a name
   (capitalized or all-caps, not sentence-initial-only lowercase noise).
2. Independently, maximal capitalized non-sentence-initial token runs are
   emitted even without a dictionary entry — these are the candidate
   mentions for out-of-KB entities, which Chapter 5 needs.

Overlapping matches resolve in favour of the longer span.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.kb.dictionary import Dictionary
from repro.text.sentences import split_sentences
from repro.text.stopwords import is_stopword
from repro.types import Document, Mention
from repro.utils.text import is_all_upper


class NamedEntityRecognizer:
    """Recognizes entity mentions in token sequences."""

    def __init__(
        self,
        dictionary: Optional[Dictionary] = None,
        max_mention_len: int = 4,
        emit_unknown_names: bool = True,
    ):
        self._dictionary = dictionary
        self.max_mention_len = max_mention_len
        self.emit_unknown_names = emit_unknown_names

    def recognize(self, document: Document) -> Document:
        """Return a copy of *document* with recognized mentions attached."""
        mentions = self.find_mentions(document.tokens)
        return document.with_mentions(mentions)

    def find_mentions(self, tokens: Sequence[str]) -> List[Mention]:
        """Recognize mention spans over a token sequence."""
        sentence_starts = {span[0] for span in split_sentences(tokens)}
        name_like = self._name_like_mask(tokens, sentence_starts)
        claimed: Set[int] = set()
        mentions: List[Mention] = []
        index = 0
        n = len(tokens)
        while index < n:
            span = self._match_at(tokens, index, name_like)
            if span is None:
                index += 1
                continue
            start, end = span
            if any(pos in claimed for pos in range(start, end)):
                index += 1
                continue
            surface = " ".join(tokens[start:end])
            mentions.append(Mention(surface=surface, start=start, end=end))
            claimed.update(range(start, end))
            index = end
        return mentions

    def _name_like_mask(
        self, tokens: Sequence[str], sentence_starts: Set[int]
    ) -> List[bool]:
        """Token positions that plausibly belong to a name."""
        mask: List[bool] = []
        for index, token in enumerate(tokens):
            if not token or not token[0].isalpha():
                mask.append(False)
                continue
            if is_stopword(token) and not is_all_upper(token):
                mask.append(False)
                continue
            capitalized = token[0].isupper()
            if not capitalized:
                mask.append(False)
                continue
            if index in sentence_starts and not is_all_upper(token):
                # Sentence-initial capitalization is ambiguous: accept it
                # only if the dictionary knows the token as a name.
                known = (
                    self._dictionary is not None
                    and self._dictionary.record_for(token) is not None
                )
                mask.append(known or self._next_is_name(tokens, index))
                continue
            mask.append(True)
        return mask

    def _next_is_name(self, tokens: Sequence[str], index: int) -> bool:
        """Heuristic: a sentence-initial cap word followed by another
        capitalized word usually starts a multi-word name."""
        nxt = index + 1
        if nxt >= len(tokens):
            return False
        token = tokens[nxt]
        return bool(token) and token[0].isupper() and not is_stopword(token)

    def _match_at(
        self,
        tokens: Sequence[str],
        index: int,
        name_like: List[bool],
    ) -> Optional[Tuple[int, int]]:
        if not name_like[index]:
            return None
        # Longest dictionary match first.
        if self._dictionary is not None:
            for length in range(self.max_mention_len, 0, -1):
                end = index + length
                if end > len(tokens):
                    continue
                if not all(name_like[index:end]):
                    continue
                surface = " ".join(tokens[index:end])
                if self._dictionary.record_for(surface) is not None:
                    return (index, end)
        if not self.emit_unknown_names:
            return None
        # Maximal name-like run without dictionary support.
        end = index
        while (
            end < len(tokens)
            and end - index < self.max_mention_len
            and name_like[end]
        ):
            end += 1
        if end > index:
            return (index, end)
        return None
