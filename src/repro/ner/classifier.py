"""Named entity classification (Section 2.4.4).

NEC labels mentions with semantic types instead of concrete entities —
"it would label 'Dylan' as person, maybe even musician".  This classifier
scores each coarse (or fine) type of the taxonomy by combining:

* **candidate-type prior** — the types of the mention's dictionary
  candidates, weighted by their popularity prior, and
* **context evidence** — how well the document context matches the
  keyphrases of candidates of each type (type-conditioned similarity).

It degrades gracefully for out-of-KB mentions (no candidates): the
context is compared against *type profiles* aggregated over all entities
of each type.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.kb.knowledge_base import KnowledgeBase
from repro.similarity.context import DocumentContext
from repro.types import Document, Mention
from repro.weights.model import WeightModel

#: The coarse classes of the CoNLL-era shared tasks.
COARSE_CLASSES = ("person", "organization", "location", "artifact", "event")


class NamedEntityClassifier:
    """Types mentions via candidate priors and type-profile context."""

    def __init__(
        self,
        kb: KnowledgeBase,
        weights: Optional[WeightModel] = None,
        prior_weight: float = 0.6,
    ):
        self.kb = kb
        self._weights = (
            weights
            if weights is not None
            else WeightModel(kb.keyphrases, kb.links)
        )
        self.prior_weight = prior_weight
        self._type_profiles: Optional[Dict[str, Dict[str, float]]] = None

    # ------------------------------------------------------------------
    # Type profiles (lazy, aggregated over the whole KB)
    # ------------------------------------------------------------------
    def _profiles(self) -> Dict[str, Dict[str, float]]:
        if self._type_profiles is not None:
            return self._type_profiles
        profiles: Dict[str, Dict[str, float]] = {
            cls: {} for cls in COARSE_CLASSES
        }
        for entity_id in self.kb.entity_ids():
            coarse = self.kb.coarse_class(entity_id)
            if coarse not in profiles:
                continue
            profile = profiles[coarse]
            for word, count in self.kb.keyphrases.keyword_counts(
                entity_id
            ).items():
                idf = self._weights.idf_word(word)
                if idf > 0.0:
                    profile[word] = profile.get(word, 0.0) + count * idf
        # L1-normalize each profile so classes with more entities do not
        # dominate by mass alone.
        for profile in profiles.values():
            total = sum(profile.values())
            if total > 0.0:
                for word in profile:
                    profile[word] /= total
        self._type_profiles = profiles
        return profiles

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------
    def type_scores(
        self, document: Document, mention: Mention
    ) -> Dict[str, float]:
        """Score every coarse class for the mention (normalized to 1)."""
        prior_scores = self._candidate_type_prior(mention)
        context_scores = self._context_scores(document, mention)
        combined: Dict[str, float] = {}
        for cls in COARSE_CLASSES:
            combined[cls] = (
                self.prior_weight * prior_scores.get(cls, 0.0)
                + (1.0 - self.prior_weight) * context_scores.get(cls, 0.0)
            )
        total = sum(combined.values())
        if total > 0.0:
            combined = {cls: v / total for cls, v in combined.items()}
        return combined

    def classify(
        self, document: Document, mention: Mention
    ) -> Optional[str]:
        """The best coarse class, or None when there is no signal."""
        scores = self.type_scores(document, mention)
        best = max(sorted(scores), key=lambda cls: scores[cls])
        return best if scores[best] > 0.0 else None

    def classify_document(
        self, document: Document
    ) -> List[Tuple[Mention, Optional[str]]]:
        """Classify every mention of the document."""
        return [
            (mention, self.classify(document, mention))
            for mention in document.mentions
        ]

    # ------------------------------------------------------------------
    # Components
    # ------------------------------------------------------------------
    def _candidate_type_prior(self, mention: Mention) -> Dict[str, float]:
        """P(class | mention) from the candidates' popularity priors."""
        distribution = self.kb.prior_distribution(mention.surface)
        scores: Dict[str, float] = {}
        if not distribution:
            return scores
        candidates = sorted(distribution)
        uniform = 1.0 / len(candidates)
        for entity_id in candidates:
            weight = distribution[entity_id]
            if weight == 0.0:
                weight = uniform  # unseen-anchor candidates still count
            coarse = self.kb.coarse_class(entity_id)
            scores[coarse] = scores.get(coarse, 0.0) + weight
        total = sum(scores.values())
        if total > 0.0:
            scores = {cls: v / total for cls, v in scores.items()}
        return scores

    def _context_scores(
        self, document: Document, mention: Mention
    ) -> Dict[str, float]:
        """Cosine-free overlap of the context with each type profile."""
        context = DocumentContext(document, exclude_mention=mention)
        counts = context.term_counts()
        scores: Dict[str, float] = {}
        for cls, profile in self._profiles().items():
            overlap = sum(
                weight * counts.get(word, 0)
                for word, weight in profile.items()
            )
            scores[cls] = overlap
        total = sum(scores.values())
        if total > 0.0:
            scores = {cls: v / total for cls, v in scores.items()}
        return scores
