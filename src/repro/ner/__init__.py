"""Named entity recognition (stand-in for the Stanford NER tagger).

NED assumes the input has been segmented into mentions by an NER step
(Section 2.1).  The recognizer here combines dictionary longest-match with
capitalization evidence; the evaluation corpora feed gold mention spans, as
the paper's experiments do, but the examples and applications run this
recognizer end-to-end.
"""

from repro.ner.recognizer import NamedEntityRecognizer

__all__ = ["NamedEntityRecognizer"]
