"""Within-document name coreference (Section 2.4.3, applied to NED).

A news article introduces "Jimmy Page" once and says "Page" afterwards.
Coreference resolution on a named-entity-only mention set "is subsumed by
NED, under the assumption that all entities mentioned in a text exist in
the entity repository" — and conversely NED benefits from resolving the
short forms to the longer ones first: the short mention inherits the long
mention's (far less ambiguous) candidate space.

:class:`NameCoreferenceResolver` links a mention to an earlier, longer
mention of the same document when the short surface is a token suffix or
prefix of the longer one ("Page" ← "Jimmy Page", "Kashmir" ← "Kashmir
Region"), and exposes the induced candidate restriction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.kb.dictionary import match_key
from repro.types import Document, Mention


def _token_key(surface: str) -> Tuple[str, ...]:
    return tuple(match_key(tok) for tok in surface.split())


def is_short_form_of(short: str, long: str) -> bool:
    """True when *short* is a strict token prefix or suffix of *long*."""
    short_tokens = _token_key(short)
    long_tokens = _token_key(long)
    if not short_tokens or len(short_tokens) >= len(long_tokens):
        return False
    return (
        long_tokens[: len(short_tokens)] == short_tokens
        or long_tokens[-len(short_tokens):] == short_tokens
    )


@dataclass
class CoreferenceChains:
    """The resolved chains of one document."""

    #: mention -> the representative (longest) mention of its chain.
    representative: Dict[Mention, Mention] = field(default_factory=dict)

    def chain_of(self, mention: Mention) -> Mention:
        """The representative mention of the chain containing *mention*."""
        return self.representative.get(mention, mention)

    def chains(self) -> Dict[Mention, List[Mention]]:
        """Representative -> chained mentions, position-sorted."""
        grouped: Dict[Mention, List[Mention]] = {}
        for mention, head in self.representative.items():
            grouped.setdefault(head, []).append(mention)
        for head in grouped:
            grouped[head].sort(key=lambda m: m.start)
        return grouped


class NameCoreferenceResolver:
    """Chains short-form mentions to longer same-name mentions."""

    def resolve(self, document: Document) -> CoreferenceChains:
        """Compute the coreference chains of the document."""
        chains = CoreferenceChains()
        mentions = sorted(document.mentions, key=lambda m: m.start)
        for index, mention in enumerate(mentions):
            head = self._find_antecedent(mention, mentions, index)
            if head is not None:
                # Chain through: the antecedent may itself be chained.
                chains.representative[mention] = chains.chain_of(head)
        return chains

    @staticmethod
    def _find_antecedent(
        mention: Mention, mentions: Sequence[Mention], index: int
    ) -> Optional[Mention]:
        """The closest longer mention (anywhere in the document) the
        surface is a short form of; ties prefer earlier mentions, the
        news-writing convention of introducing full names first."""
        best: Optional[Mention] = None
        for other in mentions:
            if other is mention:
                continue
            if not is_short_form_of(mention.surface, other.surface):
                continue
            if best is None or len(other.surface) > len(best.surface):
                best = other
        return best


def coreference_candidate_restriction(
    document: Document, kb_candidates
) -> Dict[int, List[str]]:
    """Candidate restriction induced by the chains.

    ``kb_candidates(surface) -> [entity ids]``.  For every chained mention
    whose representative has a *non-empty* candidate set, the short
    mention's candidates are restricted to the intersection with the
    representative's — typically collapsing "Page"'s many candidates to
    the single "Jimmy Page".  Returns mention-index -> restricted list;
    unchained or non-overlapping mentions are absent.
    """
    chains = NameCoreferenceResolver().resolve(document)
    restrictions: Dict[int, List[str]] = {}
    mentions = list(document.mentions)
    for index, mention in enumerate(mentions):
        head = chains.chain_of(mention)
        if head is mention:
            continue
        head_candidates = set(kb_candidates(head.surface))
        if not head_candidates:
            continue
        own_candidates = kb_candidates(mention.surface)
        restricted = [
            eid for eid in own_candidates if eid in head_candidates
        ]
        if restricted:
            restrictions[index] = restricted
        else:
            # The long form's candidates are a superset in spirit even if
            # the dictionary lacks the short alias: adopt them outright.
            restrictions[index] = sorted(head_candidates)
    return restrictions
