"""Tests for document context, prior, and keyphrase cover matching."""

import pytest

from repro.kb.keyphrases import KeyphraseStore
from repro.similarity.context import DocumentContext
from repro.similarity.keyphrase_match import (
    KeyphraseSimilarity,
    phrase_cover,
    score_phrase,
)
from repro.similarity.prior import PopularityPrior
from repro.kb.entity import Entity
from repro.kb.knowledge_base import KnowledgeBase
from repro.types import Document, Mention
from repro.weights.model import WeightModel


def _doc(tokens, mentions=()):
    return Document(doc_id="d", tokens=tuple(tokens), mentions=tuple(mentions))


class TestDocumentContext:
    def test_stopwords_excluded(self):
        ctx = DocumentContext(_doc(["the", "guitar", "of", "Page"]))
        assert "the" not in ctx
        assert "guitar" in ctx

    def test_mention_tokens_excluded(self):
        mention = Mention(surface="Page", start=3, end=4)
        ctx = DocumentContext(
            _doc(["the", "guitar", "of", "Page"]), exclude_mention=mention
        )
        assert "page" not in ctx
        assert "guitar" in ctx

    def test_positions(self):
        ctx = DocumentContext(_doc(["rock", "guitar", "rock"]))
        assert ctx.positions("rock") == [0, 2]

    def test_occurrences_sorted(self):
        ctx = DocumentContext(_doc(["beta", "alpha", "beta"]))
        occs = ctx.occurrences(["alpha", "beta"])
        assert occs == [(0, "beta"), (1, "alpha"), (2, "beta")]

    def test_term_counts(self):
        ctx = DocumentContext(_doc(["rock", "rock", "guitar"]))
        assert ctx.term_counts() == {"rock": 2, "guitar": 1}


class TestPhraseCover:
    def test_full_match_tight_window(self):
        ctx = DocumentContext(_doc(["grammy", "award", "winner"]))
        cover = phrase_cover(ctx, ("grammy", "award", "winner"))
        assert cover.length == 3
        assert cover.match_count == 3

    def test_partial_match(self):
        # "Grammy award winner" matching "winner of many prizes including
        # the Grammy" (Section 3.3.4's example): 2 of 3 words in a window.
        ctx = DocumentContext(
            _doc(
                "winner of many prizes including the grammy".split()
            )
        )
        cover = phrase_cover(ctx, ("grammy", "award", "winner"))
        assert cover.match_count == 2
        assert set(cover.matched_words) == {"grammy", "winner"}
        # winner@0 .. grammy@6, with stopwords removed the window spans
        # positions 0..6 of the original token offsets.
        assert cover.length == 7

    def test_no_match_returns_none(self):
        ctx = DocumentContext(_doc(["unrelated", "words"]))
        assert phrase_cover(ctx, ("grammy", "award")) is None

    def test_shortest_window_found(self):
        # Two possible windows; the tighter one must win.
        tokens = ["alpha", "x", "x", "x", "beta", "alpha", "beta"]
        ctx = DocumentContext(_doc(tokens))
        cover = phrase_cover(ctx, ("alpha", "beta"))
        # The minimal window has length 2 (beta@4..alpha@5 or
        # alpha@5..beta@6), not the spread alpha@0..beta@4 one.
        assert cover.length == 2

    def test_repeated_word_phrase(self):
        ctx = DocumentContext(_doc(["rock", "rock"]))
        cover = phrase_cover(ctx, ("rock", "rock"))
        assert cover.match_count == 1  # distinct words

    def test_repeated_word_does_not_widen_window(self):
        # ("rock", "rock", "guitar") needs one rock + one guitar, not two
        # rocks: the duplicate must not force a wider window.
        tokens = ["rock", "x", "x", "x", "rock", "guitar"]
        ctx = DocumentContext(_doc(tokens))
        cover = phrase_cover(ctx, ("rock", "rock", "guitar"))
        assert cover.match_count == 2
        assert (cover.start, cover.end) == (4, 5)

    def test_single_word_phrase_first_occurrence(self):
        ctx = DocumentContext(_doc(["x", "guitar", "x", "guitar"]))
        cover = phrase_cover(ctx, ("guitar",))
        assert (cover.start, cover.end) == (1, 1)
        assert cover.length == 1
        assert cover.match_count == 1

    def test_all_words_absent(self):
        # Words exist nowhere in the document: no cover at all, even
        # though the phrase has several words.
        ctx = DocumentContext(_doc(["something", "else", "entirely"]))
        assert phrase_cover(ctx, ("grammy", "award", "winner")) is None

    def test_words_only_at_document_boundaries(self):
        # Matches at the first and last token: the window must span the
        # whole document without off-by-one at either edge.
        tokens = ["grammy"] + ["x"] * 5 + ["winner"]
        ctx = DocumentContext(_doc(tokens))
        cover = phrase_cover(ctx, ("grammy", "winner"))
        assert (cover.start, cover.end) == (0, len(tokens) - 1)
        assert cover.length == len(tokens)


class TestScorePhrase:
    WEIGHTS = {"grammy": 2.0, "award": 1.0, "winner": 1.0}

    def test_exact_match_scores_one(self):
        ctx = DocumentContext(_doc(["grammy", "award", "winner"]))
        score = score_phrase(ctx, ("grammy", "award", "winner"), self.WEIGHTS)
        assert score == pytest.approx(1.0)

    def test_partial_match_penalized_superlinearly(self):
        ctx = DocumentContext(_doc(["grammy", "winner"]))
        score = score_phrase(ctx, ("grammy", "award", "winner"), self.WEIGHTS)
        # matched weight 3 of 4, z = 2/2 = 1 -> (3/4)^2
        assert score == pytest.approx((3 / 4) ** 2)

    def test_spread_match_penalized_by_cover_length(self):
        ctx = DocumentContext(_doc(["grammy", "x", "x", "winner"]))
        score = score_phrase(ctx, ("grammy", "winner"), {"grammy": 1.0, "winner": 1.0})
        assert score == pytest.approx(2 / 4)  # z = 2/4, full weight ratio

    def test_zero_weight_phrase(self):
        ctx = DocumentContext(_doc(["grammy"]))
        assert score_phrase(ctx, ("grammy",), {}) == 0.0

    def test_no_occurrence(self):
        ctx = DocumentContext(_doc(["nothing"]))
        assert score_phrase(ctx, ("grammy",), self.WEIGHTS) == 0.0


class TestKeyphraseSimilarity:
    @pytest.fixture
    def setup(self):
        store = KeyphraseStore()
        store.add_keyphrase("Jimmy_Page", ("gibson", "guitar"))
        store.add_keyphrase("Jimmy_Page", ("hard", "rock"))
        store.add_keyphrase("Larry_Page", ("search", "engine"))
        store.add_keyphrase("Larry_Page", ("internet", "company"))
        weights = WeightModel(store, links=None, collection_size=10)
        return store, weights

    def test_matching_context_scores_higher(self, setup):
        store, weights = setup
        sim = KeyphraseSimilarity(store, weights)
        ctx = DocumentContext(
            _doc(["he", "played", "gibson", "guitar", "hard", "rock"])
        )
        scores = sim.simscores(ctx, ["Jimmy_Page", "Larry_Page"])
        assert scores["Jimmy_Page"] > scores["Larry_Page"]

    def test_no_context_scores_zero(self, setup):
        store, weights = setup
        sim = KeyphraseSimilarity(store, weights)
        ctx = DocumentContext(_doc(["completely", "unrelated"]))
        assert sim.simscore(ctx, "Jimmy_Page") == 0.0

    def test_idf_scheme(self, setup):
        store, weights = setup
        sim = KeyphraseSimilarity(store, weights, weight_scheme="idf")
        ctx = DocumentContext(_doc(["gibson", "guitar"]))
        assert sim.simscore(ctx, "Jimmy_Page") > 0.0

    def test_invalid_scheme_rejected(self, setup):
        store, weights = setup
        with pytest.raises(ValueError):
            KeyphraseSimilarity(store, weights, weight_scheme="nope")

    def test_max_keyphrases_cap(self, setup):
        store, weights = setup
        sim = KeyphraseSimilarity(store, weights, max_keyphrases=1)
        assert len(sim.entity_phrases("Jimmy_Page")) == 1


class TestPopularityPrior:
    @pytest.fixture
    def kb(self):
        kb = KnowledgeBase()
        kb.add_entity(Entity(entity_id="A", canonical_name="Alpha One"))
        kb.add_entity(Entity(entity_id="B", canonical_name="Alpha Two"))
        kb.dictionary.add_name("Alpha", "A", source="anchor", anchor_count=3)
        kb.dictionary.add_name("Alpha", "B", source="anchor", anchor_count=1)
        return kb

    def test_best(self, kb):
        prior = PopularityPrior(kb)
        entity, p = prior.best("Alpha")
        assert entity == "A"
        assert p == pytest.approx(0.75)

    def test_best_of_unknown_name(self, kb):
        assert PopularityPrior(kb).best("Nothing") is None

    def test_ranked(self, kb):
        ranked = PopularityPrior(kb).ranked("Alpha")
        assert [eid for eid, _p in ranked] == ["A", "B"]


class TestDistanceDiscount:
    """The paper's reported negative result (Section 3.3.4): a distance
    discount on far-away context tokens is implemented but off by
    default."""

    @pytest.fixture
    def setup(self):
        store = KeyphraseStore()
        store.add_keyphrase("E1", ("gibson", "guitar"))
        store.add_keyphrase("E2", ("search", "engine"))
        weights = WeightModel(store, links=None, collection_size=10)
        return store, weights

    def test_discount_reduces_far_context(self, setup):
        store, weights = setup
        tokens = (
            ["Page", "spoke"]
            + ["filler"] * 30
            + ["gibson", "guitar"]
        )
        mention = Mention(surface="Page", start=0, end=1)
        doc = _doc(tokens, [mention])
        ctx = DocumentContext(doc, exclude_mention=mention)
        plain = KeyphraseSimilarity(store, weights)
        discounted = KeyphraseSimilarity(
            store, weights, distance_discount=4.0
        )
        assert discounted.simscore(ctx, "E1") < plain.simscore(ctx, "E1")

    def test_near_context_barely_affected(self, setup):
        store, weights = setup
        tokens = ["Page", "played", "gibson", "guitar", "."]
        mention = Mention(surface="Page", start=0, end=1)
        doc = _doc(tokens, [mention])
        ctx = DocumentContext(doc, exclude_mention=mention)
        plain = KeyphraseSimilarity(store, weights)
        discounted = KeyphraseSimilarity(
            store, weights, distance_discount=1.0
        )
        ratio = discounted.simscore(ctx, "E1") / plain.simscore(ctx, "E1")
        assert ratio > 0.6

    def test_no_mention_no_discount(self, setup):
        store, weights = setup
        ctx = DocumentContext(_doc(["gibson", "guitar"]))
        plain = KeyphraseSimilarity(store, weights)
        discounted = KeyphraseSimilarity(
            store, weights, distance_discount=5.0
        )
        assert discounted.simscore(ctx, "E1") == plain.simscore(
            ctx, "E1"
        )

    def test_negative_discount_rejected(self, setup):
        store, weights = setup
        with pytest.raises(ValueError):
            KeyphraseSimilarity(store, weights, distance_discount=-1.0)
