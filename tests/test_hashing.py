"""Tests for min-hash sketches and LSH banding."""

import pytest

from repro.hashing.lsh import LshIndex, band_signature
from repro.hashing.minhash import MinHasher, jaccard_estimate


class TestMinHash:
    def test_sketch_length(self):
        hasher = MinHasher(num_hashes=8, seed=1)
        assert len(hasher.sketch({"a", "b"})) == 8

    def test_determinism(self):
        hasher = MinHasher(num_hashes=8, seed=1)
        assert hasher.sketch({"a", "b"}) == hasher.sketch({"b", "a"})

    def test_different_seeds_differ(self):
        a = MinHasher(num_hashes=8, seed=1).sketch({"a", "b"})
        b = MinHasher(num_hashes=8, seed=2).sketch({"a", "b"})
        assert a != b

    def test_identical_sets_full_agreement(self):
        hasher = MinHasher(num_hashes=16, seed=1)
        s1 = hasher.sketch({"x", "y", "z"})
        s2 = hasher.sketch({"x", "y", "z"})
        assert jaccard_estimate(s1, s2) == 1.0

    def test_disjoint_sets_near_zero(self):
        hasher = MinHasher(num_hashes=64, seed=1)
        s1 = hasher.sketch({f"a{i}" for i in range(20)})
        s2 = hasher.sketch({f"b{i}" for i in range(20)})
        assert jaccard_estimate(s1, s2) < 0.15

    def test_estimate_tracks_jaccard(self):
        # J = 10/30 = 1/3; the estimate should land in a wide band around.
        hasher = MinHasher(num_hashes=256, seed=3)
        common = {f"c{i}" for i in range(10)}
        s1 = hasher.sketch(common | {f"a{i}" for i in range(10)})
        s2 = hasher.sketch(common | {f"b{i}" for i in range(10)})
        estimate = jaccard_estimate(s1, s2)
        assert 0.15 < estimate < 0.55

    def test_empty_set_sentinel(self):
        hasher = MinHasher(num_hashes=4, seed=1)
        sketch = hasher.sketch(set())
        assert len(sketch) == 4

    def test_invalid_num_hashes(self):
        with pytest.raises(ValueError):
            MinHasher(num_hashes=0)

    def test_estimate_length_mismatch(self):
        with pytest.raises(ValueError):
            jaccard_estimate((1, 2), (1,))


class TestBandSignature:
    def test_band_count(self):
        keys = band_signature((1, 2, 3, 4), bands=2, rows=2)
        assert keys == ((0, 3), (1, 7))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            band_signature((1, 2, 3), bands=2, rows=2)


class TestLshIndex:
    def test_similar_items_collide(self):
        hasher = MinHasher(num_hashes=16, seed=1)
        index = LshIndex(bands=16, rows=1)
        base = {f"w{i}" for i in range(20)}
        index.add("A", hasher.sketch(base))
        index.add("B", hasher.sketch(base | {"extra"}))
        assert ("A", "B") in index.candidate_pairs()

    def test_dissimilar_items_do_not_collide(self):
        hasher = MinHasher(num_hashes=8, seed=1)
        index = LshIndex(bands=4, rows=2)
        index.add("A", hasher.sketch({f"a{i}" for i in range(30)}))
        index.add("B", hasher.sketch({f"b{i}" for i in range(30)}))
        assert ("A", "B") not in index.candidate_pairs()

    def test_duplicate_add_ignored(self):
        index = LshIndex(bands=1, rows=2)
        index.add("A", (1, 2))
        index.add("A", (1, 2))
        assert len(index) == 1

    def test_buckets_nontrivial_only(self):
        index = LshIndex(bands=1, rows=1)
        index.add("A", (7,))
        index.add("B", (7,))
        index.add("C", (9,))
        buckets = index.buckets()
        assert ["A", "B"] in buckets
        assert all(len(bucket) > 1 for bucket in buckets)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            LshIndex(bands=0, rows=1)

    def test_more_rows_prune_more(self):
        # The F-geometry (2 rows/band) must admit no more pairs than the
        # G-geometry (1 row/band) on the same sketches.
        hasher = MinHasher(num_hashes=32, seed=5)
        sets = {
            name: {f"c{i}" for i in range(8)} | {f"{name}{i}" for i in range(8)}
            for name in ("A", "B", "C", "D")
        }
        g_index = LshIndex(bands=32, rows=1)
        f_index = LshIndex(bands=16, rows=2)
        for name, items in sets.items():
            sketch = hasher.sketch(items)
            g_index.add(name, sketch)
            f_index.add(name, sketch)
        assert f_index.candidate_pairs() <= g_index.candidate_pairs()
