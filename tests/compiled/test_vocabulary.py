"""Tests for the word interner."""

import pytest

from repro.compiled.vocabulary import UNKNOWN, Vocabulary
from repro.kb.keyphrases import KeyphraseStore


class TestVocabulary:
    def test_dense_ids_in_intern_order(self):
        vocab = Vocabulary()
        assert vocab.intern("alpha") == 0
        assert vocab.intern("beta") == 1
        assert vocab.intern("gamma") == 2
        assert len(vocab) == 3

    def test_intern_is_idempotent(self):
        vocab = Vocabulary()
        first = vocab.intern("alpha")
        assert vocab.intern("alpha") == first
        assert len(vocab) == 1

    def test_id_of_unknown(self):
        vocab = Vocabulary(["alpha"])
        assert vocab.id_of("alpha") == 0
        assert vocab.id_of("never-seen") == UNKNOWN

    def test_word_of_roundtrip(self):
        vocab = Vocabulary(["alpha", "beta"])
        for word in ("alpha", "beta"):
            assert vocab.word_of(vocab.id_of(word)) == word

    def test_word_of_rejects_unknown_sentinel(self):
        vocab = Vocabulary(["alpha"])
        with pytest.raises(IndexError):
            vocab.word_of(UNKNOWN)

    def test_contains(self):
        vocab = Vocabulary(["alpha"])
        assert "alpha" in vocab
        assert "beta" not in vocab

    def test_from_store_covers_every_keyword(self):
        store = KeyphraseStore()
        store.add_keyphrase("E1", ("gibson", "guitar"))
        store.add_keyphrase("E2", ("search", "engine", "guitar"))
        vocab = Vocabulary.from_store(store)
        for word in ("gibson", "guitar", "search", "engine"):
            assert word in vocab
        assert len(vocab) == 4
