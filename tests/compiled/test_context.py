"""Tests for the posting-indexed document context."""

import pytest

from repro.compiled.context import IndexedContext
from repro.compiled.scoring import HAVE_NUMPY
from repro.compiled.vocabulary import Vocabulary
from repro.similarity.context import DocumentContext
from repro.types import Document, Mention


def _doc(tokens, mentions=()):
    return Document(
        doc_id="d", tokens=tuple(tokens), mentions=tuple(mentions)
    )


class TestIndexedContext:
    def test_postings_match_reference_positions(self):
        vocab = Vocabulary(["rock", "guitar"])
        context = DocumentContext(_doc(["rock", "guitar", "rock"]))
        indexed = IndexedContext(context, vocab)
        assert list(indexed.positions(vocab.id_of("rock"))) == [0, 2]
        assert list(indexed.positions(vocab.id_of("guitar"))) == [1]

    def test_out_of_vocabulary_words_dropped(self):
        vocab = Vocabulary(["rock"])
        context = DocumentContext(_doc(["rock", "meteorite"]))
        indexed = IndexedContext(context, vocab)
        # "meteorite" is not a KB keyword: no posting list, and probing
        # any unknown id finds nothing.
        assert len(indexed.postings) == 1
        assert vocab.id_of("meteorite") not in indexed.postings

    def test_mention_and_length_passthrough(self):
        mention = Mention(surface="Page", start=0, end=1)
        context = DocumentContext(
            _doc(["Page", "played", "guitar"], [mention]),
            exclude_mention=mention,
        )
        indexed = IndexedContext(context, Vocabulary(["guitar"]))
        assert indexed.mention_center == context.mention_center
        assert indexed.document_length == 3

    def test_document_length_floor(self):
        context = DocumentContext(_doc([]))
        indexed = IndexedContext(context, Vocabulary())
        assert indexed.document_length == 1

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not available")
    def test_positions_array_cached_and_equal(self):
        vocab = Vocabulary(["rock"])
        context = DocumentContext(_doc(["rock", "x", "rock"]))
        indexed = IndexedContext(context, vocab)
        wid = vocab.id_of("rock")
        first = indexed.positions_array(wid)
        assert list(first) == [0, 2]
        assert indexed.positions_array(wid) is first  # cached
