"""Compiled-vs-reference equivalence and fallback behaviour.

The compiled layer is a pure performance rewrite: every test here pins
its scores to the reference string/dict implementations (simscore within
1e-9; the two compiled backends bit-identical to each other), and the
fallback ladder — ``use_compiled=False``, numpy absent, construction
failure — must land on the same numbers.
"""

import pickle

import pytest

import repro.compiled.context as compiled_context
import repro.compiled.keyphrases as compiled_keyphrases
import repro.compiled.scoring as compiled_scoring
from repro.compiled import CompiledKeyphrases
from repro.compiled.scoring import HAVE_NUMPY, _po_merge, cover_sweep
from repro.kb.keyphrases import KeyphraseStore
from repro.obs import MetricsRegistry, set_metrics
from repro.relatedness.kore import KoreRelatedness, phrase_overlap
from repro.similarity.context import DocumentContext
from repro.similarity.keyphrase_match import (
    KeyphraseSimilarity,
    phrase_cover,
)
from repro.types import Document, Mention
from repro.weights.model import WeightModel

TOLERANCE = 1e-9


def _doc(tokens, mentions=()):
    return Document(
        doc_id="d", tokens=tuple(tokens), mentions=tuple(mentions)
    )


@pytest.fixture
def store_and_weights():
    store = KeyphraseStore()
    store.add_keyphrase("Jimmy_Page", ("gibson", "guitar"), count=3)
    store.add_keyphrase("Jimmy_Page", ("hard", "rock", "band"), count=2)
    store.add_keyphrase("Jimmy_Page", ("grammy", "award", "winner"))
    store.add_keyphrase("Larry_Page", ("search", "engine"), count=4)
    store.add_keyphrase("Larry_Page", ("internet", "company"))
    store.add_keyphrase("Larry_Page", ("award", "winner"))
    store.add_keyphrase("Lonely", ("quasar",))
    weights = WeightModel(store, links=None, collection_size=50)
    return store, weights


DOCUMENTS = [
    ["he", "played", "gibson", "guitar", "in", "a", "hard", "rock", "band"],
    ["the", "search", "engine", "company", "won", "an", "award"],
    ["winner", "of", "many", "prizes", "including", "the", "grammy"],
    ["completely", "unrelated", "text"],
    ["guitar"] * 3 + ["x"] * 5 + ["gibson", "award", "winner", "guitar"],
]

ENTITIES = ["Jimmy_Page", "Larry_Page", "Lonely"]


def _pairs(reference, compiled, context):
    ref = reference.simscores(context, ENTITIES)
    com = compiled.simscores(context, ENTITIES)
    return [(ref[eid], com[eid]) for eid in ENTITIES]


class TestSimscoreEquivalence:
    @pytest.mark.parametrize("scheme", ["npmi", "idf"])
    def test_matches_reference_per_scheme(self, store_and_weights, scheme):
        store, weights = store_and_weights
        reference = KeyphraseSimilarity(store, weights, weight_scheme=scheme)
        compiled = KeyphraseSimilarity(
            store,
            weights,
            weight_scheme=scheme,
            compiled=CompiledKeyphrases(store, weights, scheme=scheme),
        )
        for tokens in DOCUMENTS:
            context = DocumentContext(_doc(tokens))
            for ref, com in _pairs(reference, compiled, context):
                assert com == pytest.approx(ref, abs=TOLERANCE)

    def test_matches_reference_with_distance_discount(
        self, store_and_weights
    ):
        store, weights = store_and_weights
        mention = Mention(surface="Page", start=0, end=1)
        tokens = ["Page", "spoke"] + ["x"] * 20 + ["gibson", "guitar"]
        context = DocumentContext(
            _doc(tokens, [mention]), exclude_mention=mention
        )
        reference = KeyphraseSimilarity(
            store, weights, distance_discount=3.0
        )
        compiled = KeyphraseSimilarity(
            store,
            weights,
            distance_discount=3.0,
            compiled=CompiledKeyphrases(store, weights),
        )
        for ref, com in _pairs(reference, compiled, context):
            assert com == pytest.approx(ref, abs=TOLERANCE)

    def test_matches_reference_with_keyphrase_cap(self, store_and_weights):
        store, weights = store_and_weights
        reference = KeyphraseSimilarity(store, weights, max_keyphrases=2)
        compiled = KeyphraseSimilarity(
            store,
            weights,
            max_keyphrases=2,
            compiled=CompiledKeyphrases(store, weights, max_keyphrases=2),
        )
        for tokens in DOCUMENTS:
            context = DocumentContext(_doc(tokens))
            for ref, com in _pairs(reference, compiled, context):
                assert com == pytest.approx(ref, abs=TOLERANCE)

    def test_python_and_numpy_backends_bit_identical(
        self, store_and_weights
    ):
        if not HAVE_NUMPY:
            pytest.skip("numpy not available")
        store, weights = store_and_weights
        # Enough hits to clear NUMPY_MIN_HITS so the numpy cover path
        # actually runs; both backends must return the same window, so
        # the scores are equal exactly, not just within tolerance.
        tokens = (["gibson", "guitar"] * 20) + ["x"] * 3 + ["gibson"]
        context = DocumentContext(_doc(tokens))
        py = KeyphraseSimilarity(
            store,
            weights,
            compiled=CompiledKeyphrases(store, weights, backend="python"),
        )
        np_ = KeyphraseSimilarity(
            store,
            weights,
            compiled=CompiledKeyphrases(store, weights, backend="numpy"),
        )
        for eid in ENTITIES:
            assert py.simscore(context, eid) == np_.simscore(context, eid)

    def test_indexed_context_reused_across_candidates(
        self, store_and_weights
    ):
        store, weights = store_and_weights
        compiled = CompiledKeyphrases(store, weights)
        sim = KeyphraseSimilarity(store, weights, compiled=compiled)
        context = DocumentContext(_doc(DOCUMENTS[0]))
        sim.simscores(context, ENTITIES)
        first = sim._indexed(context)
        assert sim._indexed(context) is first  # identity-cached
        other = DocumentContext(_doc(DOCUMENTS[1]))
        assert sim._indexed(other) is not first


class TestCoverEquivalence:
    """The array sweeps return the reference cover, tie-breaks included."""

    CASES = [
        ["alpha", "x", "x", "x", "beta", "alpha", "beta"],
        ["alpha", "beta"] * 30,
        ["alpha"] + ["x"] * 10 + ["beta"] + ["alpha", "beta"] * 25,
        ["beta", "alpha"] * 16 + ["x", "alpha"],
    ]

    @pytest.mark.parametrize("tokens", CASES)
    def test_sweep_matches_reference(self, tokens):
        context = DocumentContext(_doc(tokens))
        cover = phrase_cover(context, ("alpha", "beta"))
        lists = [context.positions("alpha"), context.positions("beta")]
        length, start, end = cover_sweep(lists)
        assert (length, start, end) == (
            cover.length,
            cover.start,
            cover.end,
        )

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not available")
    @pytest.mark.parametrize("tokens", CASES)
    def test_numpy_cover_matches_sweep(self, tokens):
        import numpy as np

        from repro.compiled.scoring import cover_numpy

        context = DocumentContext(_doc(tokens))
        lists = [context.positions("alpha"), context.positions("beta")]
        arrays = [np.asarray(p, dtype=np.int64) for p in lists]
        assert cover_numpy(arrays) == cover_sweep(lists)


class TestKoreEquivalence:
    def test_matches_reference(self, store_and_weights):
        store, weights = store_and_weights
        reference = KoreRelatedness(store, weights)
        compiled = KoreRelatedness(
            store,
            weights,
            compiled=CompiledKeyphrases(store, weights),
        )
        entities = ["Jimmy_Page", "Larry_Page", "Lonely"]
        for i, a in enumerate(entities):
            for b in entities[i + 1 :]:
                assert compiled.relatedness(a, b) == pytest.approx(
                    reference.relatedness(a, b), abs=TOLERANCE
                )

    @pytest.mark.parametrize(
        "gamma_a,gamma_b",
        [
            # Plain positive weights, entity dicts differing per side.
            (
                {"alpha": 0.4, "beta": 0.7, "gamma": 0.2},
                {"beta": 0.9, "gamma": 0.1, "delta": 1.1},
            ),
            # Negative weights (degenerate IDF): the reference keeps the
            # raw value when the *other entity* knows the word and falls
            # back to 0.0 only otherwise — the merge must mirror that.
            (
                {"alpha": -0.5, "beta": 0.7, "gamma": -0.2, "delta": 1.1},
                {"alpha": -0.5, "beta": 0.7, "gamma": -0.2, "delta": 1.1},
            ),
            # One-sided word known to the other entity with a *larger*
            # weight (entity-level lookup, not a clamp).
            (
                {"alpha": 0.1, "beta": 0.5},
                {"alpha": 0.8, "beta": 0.5, "delta": 0.3},
            ),
        ],
    )
    def test_po_merge_matches_phrase_overlap(self, gamma_a, gamma_b):
        from array import array

        phrase_p = tuple(w for w in ("alpha", "beta", "gamma") if w in gamma_a)
        phrase_q = tuple(w for w in ("beta", "gamma", "delta") if w in gamma_b)
        expected = phrase_overlap(phrase_p, phrase_q, gamma_a, gamma_b)
        words = sorted(set(gamma_a) | set(gamma_b))
        ids = {word: i for i, word in enumerate(words)}
        a_pairs = sorted((ids[w], gamma_a.get(w, 0.0)) for w in phrase_p)
        b_pairs = sorted((ids[w], gamma_b.get(w, 0.0)) for w in phrase_q)
        a_ids = array("i", (wid for wid, _ in a_pairs))
        a_g = array("d", (g for _, g in a_pairs))
        b_ids = array("i", (wid for wid, _ in b_pairs))
        b_g = array("d", (g for _, g in b_pairs))
        a_word_gammas = {ids[w]: g for w, g in gamma_a.items()}
        b_word_gammas = {ids[w]: g for w, g in gamma_b.items()}
        got = _po_merge(
            a_ids,
            a_g,
            0,
            len(a_ids),
            b_ids,
            b_g,
            0,
            len(b_ids),
            a_word_gammas,
            b_word_gammas,
        )
        assert got == pytest.approx(expected, abs=1e-12)


class TestFallbacks:
    def test_pure_python_when_numpy_absent(
        self, store_and_weights, monkeypatch
    ):
        store, weights = store_and_weights
        reference = KeyphraseSimilarity(store, weights)
        monkeypatch.setattr(compiled_scoring, "_np", None)
        monkeypatch.setattr(compiled_scoring, "HAVE_NUMPY", False)
        monkeypatch.setattr(compiled_keyphrases, "HAVE_NUMPY", False)
        monkeypatch.setattr(compiled_context, "_np", None)
        compiled = CompiledKeyphrases(store, weights)
        assert compiled.use_numpy is False
        sim = KeyphraseSimilarity(store, weights, compiled=compiled)
        for tokens in DOCUMENTS:
            context = DocumentContext(_doc(tokens))
            for ref, com in _pairs(reference, sim, context):
                assert com == pytest.approx(ref, abs=TOLERANCE)

    def test_numpy_backend_requires_numpy(
        self, store_and_weights, monkeypatch
    ):
        store, weights = store_and_weights
        monkeypatch.setattr(compiled_keyphrases, "HAVE_NUMPY", False)
        with pytest.raises(ValueError):
            CompiledKeyphrases(store, weights, backend="numpy")

    def test_pipeline_falls_back_on_construction_failure(
        self, kb, monkeypatch
    ):
        import repro.compiled as compiled_pkg
        from repro.core.pipeline import AidaDisambiguator

        class Boom:
            def __init__(self, *args, **kwargs):
                raise RuntimeError("no compiled layer today")

        monkeypatch.setattr(compiled_pkg, "CompiledKeyphrases", Boom)
        pipeline = AidaDisambiguator(kb)
        assert pipeline.compiled is None
        assert pipeline.similarity.compiled is None

    def test_use_compiled_false_matches_default(self, kb, sample_docs):
        from repro.core.config import AidaConfig
        from repro.core.pipeline import AidaDisambiguator

        on = AidaDisambiguator(kb, config=AidaConfig.full())
        off_config = AidaConfig.full()
        off_config.use_compiled = False
        off = AidaDisambiguator(kb, config=off_config)
        assert on.compiled is not None
        assert off.compiled is None
        for sample in sample_docs[:3]:
            result_on = on.disambiguate(sample.document)
            result_off = off.disambiguate(sample.document)
            for got, want in zip(
                result_on.assignments, result_off.assignments
            ):
                assert got.entity == want.entity
                assert got.score == pytest.approx(
                    want.score, abs=TOLERANCE
                )

    def test_mismatched_compiled_model_rejected(self, store_and_weights):
        store, weights = store_and_weights
        compiled = CompiledKeyphrases(store, weights, scheme="idf")
        with pytest.raises(ValueError):
            KeyphraseSimilarity(store, weights, compiled=compiled)
        capped = CompiledKeyphrases(store, weights, max_keyphrases=5)
        with pytest.raises(ValueError):
            KeyphraseSimilarity(store, weights, compiled=capped)

    def test_invalid_backend_rejected(self, store_and_weights):
        store, weights = store_and_weights
        with pytest.raises(ValueError):
            CompiledKeyphrases(store, weights, backend="fortran")


class TestSharing:
    def test_pickle_roundtrip_scores_identically(self, store_and_weights):
        store, weights = store_and_weights
        compiled = CompiledKeyphrases(store, weights)
        compiled.precompile(kore=True)
        clone = pickle.loads(pickle.dumps(compiled))
        sim = KeyphraseSimilarity(store, weights, compiled=compiled)
        sim_clone = KeyphraseSimilarity(store, weights, compiled=clone)
        for tokens in DOCUMENTS:
            context = DocumentContext(_doc(tokens))
            for eid in ENTITIES:
                assert sim.simscore(context, eid) == sim_clone.simscore(
                    context, eid
                )
        kore = KoreRelatedness(store, weights, compiled=compiled)
        kore_clone = KoreRelatedness(store, weights, compiled=clone)
        assert kore.relatedness(
            "Jimmy_Page", "Larry_Page"
        ) == kore_clone.relatedness("Jimmy_Page", "Larry_Page")

    def test_precompile_counts_entities(self, store_and_weights):
        store, weights = store_and_weights
        compiled = CompiledKeyphrases(store, weights)
        count = compiled.precompile(kore=True)
        assert count == len(store.entity_ids())
        assert set(compiled._sim_models) == set(store.entity_ids())
        assert set(compiled._kore_models) == set(store.entity_ids())


class TestObservability:
    def test_phrase_counters_published_on_both_paths(
        self, store_and_weights
    ):
        store, weights = store_and_weights
        context = DocumentContext(_doc(DOCUMENTS[0]))
        for compiled in (None, CompiledKeyphrases(store, weights)):
            sim = KeyphraseSimilarity(store, weights, compiled=compiled)
            previous = set_metrics(MetricsRegistry())
            try:
                sim.simscore(context, "Jimmy_Page")
                sim.simscore(context, "Larry_Page")
                from repro.obs import get_metrics

                counters = get_metrics().snapshot()["counters"]
            finally:
                set_metrics(previous)
            # Jimmy: gibson-guitar and hard-rock-band match, the grammy
            # phrase does not; Larry: nothing matches.
            assert counters["similarity.phrases_scored"] == 2
            assert counters["similarity.phrases_skipped"] == 4
