"""Tests for the corpus runner and assorted smaller behaviours."""

import pytest

from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.datagen.documents import DocumentSpec
from repro.eval.runner import run_disambiguator
from repro.types import Document, Mention, OUT_OF_KB


class TestRunner:
    @pytest.fixture(scope="class")
    def pipeline(self, kb):
        return AidaDisambiguator(kb, config=AidaConfig.robust_prior_sim())

    def test_in_kb_only_filters_ooe_gold(self, pipeline, kb, sample_docs):
        with_filter = run_disambiguator(
            pipeline, sample_docs, kb=kb, in_kb_only=True
        )
        without_filter = run_disambiguator(
            pipeline, sample_docs, kb=kb, in_kb_only=False
        )
        pairs_with = sum(
            o.total for o in with_filter.evaluation.outcomes
        )
        pairs_without = sum(
            o.total for o in without_filter.evaluation.outcomes
        )
        ooe = sum(len(d.out_of_kb_gold()) for d in sample_docs)
        assert pairs_without - pairs_with == ooe

    def test_link_records_per_mention(self, pipeline, kb, sample_docs):
        run = run_disambiguator(pipeline, sample_docs, kb=kb)
        pairs = sum(o.total for o in run.evaluation.outcomes)
        assert len(run.link_records) == pairs
        for links, correct in run.link_records:
            assert links >= 0
            assert isinstance(correct, bool)

    def test_confidence_fn_used(self, pipeline, kb, sample_docs):
        def constant_confidence(document, result):
            return {a.mention: 0.42 for a in result.assignments}

        run = run_disambiguator(
            pipeline,
            sample_docs[:2],
            kb=kb,
            confidence_fn=constant_confidence,
        )
        for outcome in run.evaluation.outcomes:
            for _gold, _pred, confidence in outcome.pairs:
                assert confidence == 0.42

    def test_results_align_with_documents(self, pipeline, kb, sample_docs):
        run = run_disambiguator(pipeline, sample_docs, kb=kb)
        assert len(run.results) == len(sample_docs)
        for annotated, result in zip(sample_docs, run.results):
            assert result.doc_id == annotated.doc_id

    def test_without_kb_link_counts_zero(self, pipeline, sample_docs):
        run = run_disambiguator(pipeline, sample_docs, kb=None)
        assert all(links == 0 for links, _c in run.link_records)


class TestPipelineEdgeCases:
    def test_document_without_mentions(self, kb):
        doc = Document(doc_id="empty", tokens=("just", "words"))
        aida = AidaDisambiguator(kb, config=AidaConfig.full())
        result = aida.disambiguate(doc)
        assert result.assignments == []

    def test_all_mentions_unknown(self, kb):
        doc = Document(
            doc_id="unk",
            tokens=("Qqqa", "met", "Qqqb", "."),
            mentions=(
                Mention(surface="Qqqa", start=0, end=1),
                Mention(surface="Qqqb", start=2, end=3),
            ),
        )
        aida = AidaDisambiguator(kb, config=AidaConfig.full())
        result = aida.disambiguate(doc)
        assert all(a.entity == OUT_OF_KB for a in result.assignments)

    def test_restrict_to_empty(self, kb, sample_docs):
        aida = AidaDisambiguator(kb)
        result = aida.disambiguate(
            sample_docs[0].document, restrict_to=[]
        )
        assert result.assignments == []

    def test_fixed_and_restrict_combined(self, kb, sample_docs):
        doc = sample_docs[0].document
        aida = AidaDisambiguator(kb)
        result = aida.disambiguate(
            doc, restrict_to=[0, 1], fixed={0: "Pinned_Entity"}
        )
        assert len(result.assignments) == 2
        assert result.assignments[0].entity == "Pinned_Entity"

    def test_zero_context_falls_back_gracefully(self, kb, world):
        # A known ambiguous name with no context at all still yields an
        # assignment from the candidate set.
        name = next(
            n
            for n in kb.dictionary.all_names()
            if len(kb.candidates(n)) >= 2
        )
        tokens = tuple(name.split()) + (".",)
        doc = Document(
            doc_id="bare",
            tokens=tokens,
            mentions=(
                Mention(surface=name, start=0, end=len(name.split())),
            ),
        )
        aida = AidaDisambiguator(kb, config=AidaConfig.sim_only())
        result = aida.disambiguate(doc)
        assert result.assignments[0].entity in kb.candidates(name)


class TestDocumentGeneratorBehaviours:
    def test_popularity_bias_raises_average_popularity(
        self, world, doc_generator
    ):
        def average(bias):
            total = 0.0
            count = 0
            for index in range(15):
                spec = DocumentSpec(
                    doc_id=f"popbias-{bias}-{index}",
                    cluster_ids=[index % len(world.clusters)],
                    num_mentions=4,
                    popularity_bias=bias,
                    distractor_prob=0.0,
                    metonymy_bias=0.0,
                )
                annotated = doc_generator.generate(spec)
                for ann in annotated.gold:
                    if ann.entity != OUT_OF_KB:
                        total += world.entity(ann.entity).popularity
                        count += 1
            return total / count

        assert average(1.2) > average(0.0) * 0.8

    def test_metonymy_replaces_location_with_org(self, world):
        from repro.datagen.documents import DocumentGenerator

        # Find a sports cluster (has city/team name sharing).
        sports = [
            c for c in world.clusters.values() if c.domain == "sports"
        ]
        if not sports:
            pytest.skip("no sports clusters")
        cluster = sports[0]
        generator = DocumentGenerator(world, seed=31)
        org_types = {"football_club", "government", "sports_team"}
        saw_team_for_city_name = False
        for index in range(20):
            spec = DocumentSpec(
                doc_id=f"met-{index}",
                cluster_ids=[cluster.cluster_id],
                num_mentions=6,
                metonymy_bias=1.0,
                ambiguous_prob=1.0,
            )
            annotated = generator.generate(spec)
            for ann in annotated.gold:
                if ann.entity == OUT_OF_KB:
                    continue
                entity = world.entity(ann.entity)
                if set(entity.types) & org_types:
                    saw_team_for_city_name = True
        assert saw_team_for_city_name
