"""Tests for the keyterm weight model (IDF, NPMI, µ)."""

import math

import pytest

from repro.kb.keyphrases import KeyphraseStore
from repro.kb.links import LinkGraph
from repro.weights.model import WeightModel, binary_entropy, joint_entropy


@pytest.fixture
def setup():
    store = KeyphraseStore()
    # Four entities; "common" appears everywhere, "rare" only with E1.
    store.add_keyphrase("E1", ("rare", "term"))
    store.add_keyphrase("E1", ("common", "word"))
    store.add_keyphrase("E2", ("common", "word"))
    store.add_keyphrase("E3", ("common", "thing"))
    store.add_keyphrase("E4", ("common", "item"))
    links = LinkGraph()
    links.add_link("E2", "E1")  # E1's superdocument includes E2's article
    return store, links


class TestEntropyHelpers:
    def test_binary_entropy_bounds(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0
        assert binary_entropy(0.5) == pytest.approx(math.log(2))

    def test_binary_entropy_symmetry(self):
        assert binary_entropy(0.3) == pytest.approx(binary_entropy(0.7))

    def test_joint_entropy_uniform(self):
        assert joint_entropy(1, 1, 1, 1) == pytest.approx(math.log(4))

    def test_joint_entropy_degenerate(self):
        assert joint_entropy(0, 0, 0, 0) == 0.0
        assert joint_entropy(4, 0, 0, 0) == 0.0


class TestIdf:
    def test_rare_word_higher_idf(self, setup):
        store, links = setup
        model = WeightModel(store, links)
        assert model.idf_word("rare") > model.idf_word("common")

    def test_ubiquitous_word_zero_idf(self, setup):
        store, links = setup
        model = WeightModel(store, links)
        # "common" appears in all 4 entities: idf = log2(4/4) = 0.
        assert model.idf_word("common") == pytest.approx(0.0)

    def test_unknown_word_zero(self, setup):
        store, links = setup
        model = WeightModel(store, links)
        assert model.idf_word("missing") == 0.0

    def test_phrase_idf(self, setup):
        store, links = setup
        model = WeightModel(store, links)
        assert model.idf_phrase(("rare", "term")) > 0.0
        assert model.idf_phrase(("nope",)) == 0.0


class TestNpmi:
    def test_specific_word_positive(self, setup):
        store, links = setup
        model = WeightModel(store, links)
        assert model.npmi_word("E1", "rare") > 0.0

    def test_absent_word_negative(self, setup):
        store, links = setup
        model = WeightModel(store, links)
        assert model.npmi_word("E2", "rare") == -1.0

    def test_superdocument_includes_linking_articles(self, setup):
        store, links = setup
        model = WeightModel(store, links)
        # E2 links to E1, so E2's words join E1's superdocument: the word
        # "word" (from E2) co-occurs with E1 even though E1 also has it.
        assert model.npmi_word("E1", "word") > -1.0

    def test_npmi_bounded(self, setup):
        store, links = setup
        model = WeightModel(store, links)
        for entity in ("E1", "E2", "E3"):
            for word in store.keywords(entity):
                assert -1.0 <= model.npmi_word(entity, word) <= 1.0


class TestMuPhrase:
    def test_specific_phrase_positive(self, setup):
        store, links = setup
        model = WeightModel(store, links)
        assert model.mi_phrase("E1", ("rare", "term")) > 0.0

    def test_mu_in_unit_interval(self, setup):
        store, links = setup
        model = WeightModel(store, links)
        for entity in store.entity_ids():
            for phrase in store.keyphrases(entity):
                assert 0.0 <= model.mi_phrase(entity, phrase) <= 1.0

    def test_specific_beats_shared(self, setup):
        store, links = setup
        model = WeightModel(store, links)
        specific = model.mi_phrase("E1", ("rare", "term"))
        shared = model.mi_phrase("E3", ("common", "thing"))
        # Both are entity-specific phrases, but E1's has no competition
        # from the superdocument; sanity: both positive.
        assert specific > 0.0 and shared > 0.0


class TestWeightMaps:
    def test_keyword_weights_drop_nonpositive(self, setup):
        store, links = setup
        model = WeightModel(store, links)
        weights = model.keyword_weights("E1")
        assert all(value > 0.0 for value in weights.values())

    def test_keyword_weights_idf_scheme(self, setup):
        store, links = setup
        model = WeightModel(store, links)
        weights = model.keyword_weights("E1", scheme="idf")
        assert weights["rare"] == model.idf_word("rare")

    def test_unknown_scheme_rejected(self, setup):
        store, links = setup
        model = WeightModel(store, links)
        with pytest.raises(ValueError):
            model.keyword_weights("E1", scheme="magic")

    def test_keyphrase_weights_nonnegative(self, setup):
        store, links = setup
        model = WeightModel(store, links)
        for value in model.keyphrase_weights("E1").values():
            assert value > 0.0

    def test_invalidate_refreshes(self, setup):
        store, links = setup
        model = WeightModel(store, links)
        before = model.keyword_weights("E1")
        store.add_keyphrase("E1", ("fresh", "phrase"))
        model.invalidate(["E1"])
        after = model.keyword_weights("E1")
        assert "fresh" in after
        assert "fresh" not in before

    def test_no_links_model(self, setup):
        store, _links = setup
        model = WeightModel(store, links=None)
        # Without links every superdocument is the entity's own article.
        assert model.npmi_word("E1", "rare") > 0.0

    def test_collection_size_override(self, setup):
        store, links = setup
        model = WeightModel(store, links, collection_size=100)
        assert model.collection_size == 100
        assert model.idf_word("rare") == pytest.approx(math.log2(100))
