"""Tests for stream windowing, keyphrase harvesting, and Algorithm 2."""

import pytest

from repro.emerging.ee_model import (
    build_ee_model,
    ee_entity_id,
    is_ee_placeholder,
    register_ee_models,
)
from repro.emerging.harvest import KeyphraseHarvester, NameModel
from repro.emerging.stream import (
    docs_in_window,
    document_mentions_name,
    name_document_support,
)
from repro.kb.keyphrases import KeyphraseStore
from repro.types import Document, Mention


def _doc(doc_id, tokens, mention_specs, day=0):
    mentions = tuple(
        Mention(surface=surface, start=start, end=end)
        for surface, start, end in mention_specs
    )
    return Document(
        doc_id=doc_id, tokens=tuple(tokens), mentions=mentions, timestamp=day
    )


@pytest.fixture
def news_docs():
    # "Prism" used as a surveillance program (new) across two documents.
    doc1 = _doc(
        "n1",
        ["the", "surveillance", "program", "Prism", "was", "revealed", "."],
        [("Prism", 3, 4)],
        day=1,
    )
    doc2 = _doc(
        "n2",
        ["Prism", "collects", "intelligence", "data", "secretly", "."],
        [("Prism", 0, 1)],
        day=2,
    )
    doc3 = _doc(
        "n3",
        ["unrelated", "news", "about", "sports", "."],
        [],
        day=2,
    )
    return [doc1, doc2, doc3]


class TestStreamWindows:
    def test_docs_in_window_inclusive(self, news_docs):
        assert [d.doc_id for d in docs_in_window(news_docs, 1, 1)] == ["n1"]
        assert len(docs_in_window(news_docs, 1, 2)) == 3

    def test_document_mentions_name_case_rules(self, news_docs):
        assert document_mentions_name(news_docs[0], "Prism")
        assert document_mentions_name(news_docs[0], "PRISM")  # case rule
        assert not document_mentions_name(news_docs[2], "Prism")

    def test_name_document_support(self, news_docs):
        assert name_document_support(news_docs, "Prism") == 2


class TestHarvester:
    def test_context_phrases_exclude_mention(self, news_docs):
        harvester = KeyphraseHarvester()
        phrases = harvester.context_phrases(
            news_docs[0], news_docs[0].mentions[0]
        )
        assert ("surveillance", "program") in phrases
        assert ("prism",) not in phrases

    def test_name_model_counts(self, news_docs):
        harvester = KeyphraseHarvester()
        model = harvester.harvest_name_model(news_docs, "Prism")
        assert model.occurrence_count == 2
        assert ("surveillance", "program") in model.phrase_counts

    def test_name_model_for_absent_name(self, news_docs):
        harvester = KeyphraseHarvester()
        model = harvester.harvest_name_model(news_docs, "Nobody")
        assert model.occurrence_count == 0
        assert model.phrase_counts == {}

    def test_cache_consistency(self, news_docs):
        harvester = KeyphraseHarvester()
        first = harvester.context_phrases(
            news_docs[0], news_docs[0].mentions[0]
        )
        second = harvester.context_phrases(
            news_docs[0], news_docs[0].mentions[0]
        )
        assert first == second

    def test_entity_phrase_aggregation(self, news_docs):
        harvester = KeyphraseHarvester()
        occs = [(news_docs[0], news_docs[0].mentions[0])]
        counts = harvester.harvest_entity_phrases(occs)
        assert counts[("surveillance", "program")] == 1

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            KeyphraseHarvester(sentence_window=-1)


class TestEeModel:
    def test_placeholder_ids(self):
        assert is_ee_placeholder(ee_entity_id("Prism"))
        assert not is_ee_placeholder("Prism_Band")

    def test_model_difference_removes_kb_phrases(self):
        store = KeyphraseStore()
        store.add_keyphrase("Prism_Band", ("rock", "band"), 5)
        name_model = NameModel(name="Prism")
        name_model.phrase_counts = {
            ("surveillance", "program"): 4,
            ("rock", "band"): 2,  # covered by the in-KB candidate
        }
        name_model.occurrence_count = 6
        model = build_ee_model(
            name_model,
            candidates=["Prism_Band"],
            store=store,
            kb_collection_size=100,
            news_chunk_size=10,
        )
        assert ("surveillance", "program") in model.phrase_counts
        assert ("rock", "band") not in model.phrase_counts

    def test_alpha_scales_counts(self):
        store = KeyphraseStore()
        name_model = NameModel(name="X")
        name_model.phrase_counts = {("fresh", "phrase"): 2}
        name_model.occurrence_count = 3
        model = build_ee_model(
            name_model, [], store, kb_collection_size=100, news_chunk_size=10
        )
        # alpha = 10: count 2 -> 20.
        assert model.phrase_counts[("fresh", "phrase")] == 20

    def test_empty_model_flag(self):
        store = KeyphraseStore()
        model = build_ee_model(
            NameModel(name="X"), [], store, 100, 10
        )
        assert model.is_empty

    def test_register_layers_copy(self):
        store = KeyphraseStore()
        store.add_keyphrase("E1", ("old", "phrase"))
        name_model = NameModel(name="X")
        name_model.phrase_counts = {("new", "phrase"): 3}
        name_model.occurrence_count = 1
        model = build_ee_model(name_model, [], store, 10, 10)
        layered = register_ee_models(store, [model])
        assert ee_entity_id("X") in layered
        assert ee_entity_id("X") not in store
        assert ("new", "phrase") in layered.keyphrases(ee_entity_id("X"))

    def test_register_caps_keyphrases(self):
        store = KeyphraseStore()
        name_model = NameModel(name="X")
        name_model.phrase_counts = {
            (f"word{i}", "thing"): i + 1 for i in range(10)
        }
        name_model.occurrence_count = 1
        model = build_ee_model(name_model, [], store, 10, 10)
        layered = register_ee_models(store, [model], max_keyphrases=3)
        assert len(layered.keyphrases(ee_entity_id("X"))) == 3
        # The highest-count phrase must survive the cap.
        assert ("word9", "thing") in layered.keyphrases(ee_entity_id("X"))
