"""Tests for the NED-EE pipeline (Algorithm 3)."""

import pytest

from repro.datagen.gigaword import GigawordConfig, generate_gigaword
from repro.datagen.wikipedia import build_world_kb
from repro.datagen.world import World, WorldConfig
from repro.emerging.discovery import EeConfig, EmergingEntityPipeline
from repro.errors import ConfigurationError
from repro.eval.ee_measures import evaluate_emerging


@pytest.fixture(scope="module")
def ee_setup():
    world = World.generate(WorldConfig(seed=11, clusters_per_domain=3))
    kb, _wiki = build_world_kb(world, seed=101)
    stream = generate_gigaword(
        world,
        GigawordConfig(
            seed=909,
            num_days=36,
            docs_per_day=5,
            emerging_count=5,
            train_day=28,
            test_day=33,
            emerging_first_day=5,
            emerging_last_day=20,
        ),
    )
    docs = [d.document for d in stream.documents]
    return world, kb, stream, docs


class TestEeConfig:
    def test_defaults_skip_first_stage(self):
        assert not EeConfig().runs_first_stage

    def test_thresholds_enable_first_stage(self):
        assert EeConfig(confidence_low=0.1).runs_first_stage
        assert EeConfig(confidence_high=0.9).runs_first_stage

    def test_invalid_thresholds(self):
        with pytest.raises(ConfigurationError):
            EeConfig(confidence_low=0.8, confidence_high=0.2)

    def test_invalid_harvest_days(self):
        with pytest.raises(ConfigurationError):
            EeConfig(harvest_days=0)


class TestPipeline:
    def test_emerging_mentions_discovered(self, ee_setup):
        world, kb, stream, docs = ee_setup
        pipeline = EmergingEntityPipeline(
            kb, docs, EeConfig(enrich_existing=False)
        )
        test_docs = stream.test_docs()[:6]
        predicted = [
            pipeline.disambiguate(d.document).as_map() for d in test_docs
        ]
        gold = [(d.doc_id, d.gold_map()) for d in test_docs]
        result = evaluate_emerging(gold, predicted)
        # The explicit EE model should find some emerging mentions and be
        # precise about them.
        assert result.recall > 0.0
        assert result.precision > 0.5

    def test_result_covers_all_mentions(self, ee_setup):
        world, kb, stream, docs = ee_setup
        pipeline = EmergingEntityPipeline(
            kb, docs, EeConfig(enrich_existing=False)
        )
        document = stream.test_docs()[0].document
        result = pipeline.disambiguate(document)
        assert len(result.assignments) == len(document.mentions)

    def test_no_placeholder_ids_leak(self, ee_setup):
        world, kb, stream, docs = ee_setup
        pipeline = EmergingEntityPipeline(
            kb, docs, EeConfig(enrich_existing=False)
        )
        document = stream.test_docs()[0].document
        result = pipeline.disambiguate(document)
        for assignment in result.assignments:
            assert not assignment.entity.startswith("--EE--:")

    def test_ee_model_caching(self, ee_setup):
        world, kb, stream, docs = ee_setup
        pipeline = EmergingEntityPipeline(
            kb, docs, EeConfig(enrich_existing=False)
        )
        store = kb.keyphrases
        model_a = pipeline.ee_model_for("Anything", 30, store)
        model_b = pipeline.ee_model_for("Anything", 30, store)
        assert model_a is model_b

    def test_enrichment_adds_keyphrases(self, ee_setup):
        world, kb, stream, docs = ee_setup
        pipeline = EmergingEntityPipeline(
            kb,
            docs,
            EeConfig(
                enrich_existing=True,
                entity_harvest_days=6,
                confidence_rounds=2,
            ),
        )
        enriched = pipeline.enriched_store_for(stream.config.test_day)
        base_phrases = sum(
            len(kb.keyphrases.keyphrases(eid))
            for eid in kb.keyphrases.entity_ids()
        )
        enriched_phrases = sum(
            len(enriched.keyphrases(eid)) for eid in enriched.entity_ids()
        )
        assert enriched_phrases > base_phrases

    def test_enriched_store_cached_per_day(self, ee_setup):
        world, kb, stream, docs = ee_setup
        pipeline = EmergingEntityPipeline(
            kb,
            docs,
            EeConfig(
                enrich_existing=True,
                entity_harvest_days=4,
                confidence_rounds=2,
            ),
        )
        day = stream.config.test_day
        assert pipeline.enriched_store_for(day) is (
            pipeline.enriched_store_for(day)
        )

    def test_coherence_variant_runs(self, ee_setup):
        world, kb, stream, docs = ee_setup
        pipeline = EmergingEntityPipeline(
            kb, docs, EeConfig(enrich_existing=False, use_coherence=True)
        )
        document = stream.test_docs()[0].document
        result = pipeline.disambiguate(document)
        assert len(result.assignments) == len(document.mentions)
