"""Tests for EE grouping and provisional KB registration."""

import pytest

from repro.emerging.registration import (
    EmergingEntityGrouper,
    EmergingEntityRegistrar,
    is_provisional,
)
from repro.kb.entity import Entity
from repro.kb.knowledge_base import KnowledgeBase
from repro.types import Document, Mention


def _doc(doc_id, tokens, surface, start, end):
    mention = Mention(surface=surface, start=start, end=end)
    return (
        Document(doc_id=doc_id, tokens=tuple(tokens), mentions=(mention,)),
        mention,
    )


@pytest.fixture
def program_docs():
    """Three documents about the surveillance program 'Prism'."""
    docs = []
    for index in range(3):
        docs.append(
            _doc(
                f"prog-{index}",
                ["the", "surveillance", "program", "Prism", "was",
                 "revealed", "."],
                "Prism",
                3,
                4,
            )
        )
    return docs


@pytest.fixture
def album_docs():
    """Two documents about a different 'Prism' — a new album."""
    docs = []
    for index in range(2):
        docs.append(
            _doc(
                f"alb-{index}",
                ["the", "pop", "album", "Prism", "features", "catchy",
                 "tunes", "."],
                "Prism",
                3,
                4,
            )
        )
    return docs


class TestGrouper:
    def test_same_context_groups_together(self, program_docs):
        grouper = EmergingEntityGrouper()
        for document, mention in program_docs:
            grouper.add_occurrence(document, mention)
        groups = grouper.groups()
        assert len(groups) == 1
        assert groups[0].support == 3

    def test_different_contexts_split(self, program_docs, album_docs):
        grouper = EmergingEntityGrouper()
        for document, mention in program_docs + album_docs:
            grouper.add_occurrence(document, mention)
        groups = grouper.groups()
        assert len(groups) == 2
        supports = sorted(group.support for group in groups)
        assert supports == [2, 3]

    def test_different_names_never_merge(self, program_docs):
        grouper = EmergingEntityGrouper()
        for document, mention in program_docs:
            grouper.add_occurrence(document, mention)
        other_doc, other_mention = _doc(
            "x",
            ["the", "surveillance", "program", "Tempest", "was",
             "revealed", "."],
            "Tempest",
            3,
            4,
        )
        grouper.add_occurrence(other_doc, other_mention)
        names = {group.name for group in grouper.groups()}
        assert names == {"Prism", "Tempest"}

    def test_min_support_filter(self, program_docs, album_docs):
        grouper = EmergingEntityGrouper()
        for document, mention in program_docs + album_docs:
            grouper.add_occurrence(document, mention)
        assert len(grouper.groups(min_support=3)) == 1

    def test_group_phrases_aggregated(self, program_docs):
        grouper = EmergingEntityGrouper()
        for document, mention in program_docs:
            grouper.add_occurrence(document, mention)
        group = grouper.groups()[0]
        assert group.phrase_counts[("surveillance", "program")] == 3

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            EmergingEntityGrouper(similarity_threshold=2.0)


class TestRegistrar:
    @pytest.fixture
    def small_kb(self):
        kb = KnowledgeBase()
        kb.add_entity(
            Entity(
                entity_id="Prism_Band",
                canonical_name="Prism (band)",
                types=("band",),
            )
        )
        kb.dictionary.add_name(
            "Prism", "Prism_Band", source="anchor", anchor_count=5
        )
        return kb

    def test_mature_group_registered(
        self, small_kb, program_docs, album_docs
    ):
        grouper = EmergingEntityGrouper()
        for document, mention in program_docs + album_docs:
            grouper.add_occurrence(document, mention)
        registrar = EmergingEntityRegistrar(small_kb, min_support=3)
        view, registered = registrar.register(grouper)
        assert len(registered) == 1  # only the 3-doc program group
        assert is_provisional(registered[0])
        assert registered[0] in view
        assert registered[0] not in small_kb

    def test_registered_entity_becomes_candidate(
        self, small_kb, program_docs
    ):
        grouper = EmergingEntityGrouper()
        for document, mention in program_docs:
            grouper.add_occurrence(document, mention)
        view, registered = EmergingEntityRegistrar(
            small_kb, min_support=3
        ).register(grouper)
        candidates = view.candidates("Prism")
        assert registered[0] in candidates
        assert "Prism_Band" in candidates
        # The base KB's dictionary is untouched.
        assert small_kb.candidates("Prism") == ["Prism_Band"]

    def test_keyphrases_carried_over(self, small_kb, program_docs):
        grouper = EmergingEntityGrouper()
        for document, mention in program_docs:
            grouper.add_occurrence(document, mention)
        view, registered = EmergingEntityRegistrar(
            small_kb, min_support=3
        ).register(grouper)
        phrases = view.keyphrases.keyphrases(registered[0])
        assert ("surveillance", "program") in phrases

    def test_immature_groups_skipped(self, small_kb, album_docs):
        grouper = EmergingEntityGrouper()
        for document, mention in album_docs:
            grouper.add_occurrence(document, mention)
        _view, registered = EmergingEntityRegistrar(
            small_kb, min_support=3
        ).register(grouper)
        assert registered == []

    def test_invalid_min_support(self, small_kb):
        with pytest.raises(ValueError):
            EmergingEntityRegistrar(small_kb, min_support=0)

    def test_registered_entity_disambiguatable(
        self, small_kb, program_docs
    ):
        # End-to-end: a future document about the program links to the
        # provisional entity, not the band.
        from repro.core.config import AidaConfig
        from repro.core.pipeline import AidaDisambiguator
        from repro.weights.model import WeightModel

        grouper = EmergingEntityGrouper()
        for document, mention in program_docs:
            grouper.add_occurrence(document, mention)
        view, registered = EmergingEntityRegistrar(
            small_kb, min_support=3
        ).register(grouper)
        weights = WeightModel(view.keyphrases, view.links)
        aida = AidaDisambiguator(
            view,
            config=AidaConfig.sim_only(),
            keyphrase_store=view.keyphrases,
            weight_model=weights,
        )
        future_doc, future_mention = _doc(
            "future",
            ["Prism", "the", "surveillance", "program", "expanded", "."],
            "Prism",
            0,
            1,
        )
        result = aida.disambiguate(future_doc)
        assert result.assignments[0].entity == registered[0]
