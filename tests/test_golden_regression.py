"""Golden regression: the frozen corpus must reproduce bit-for-bit.

``tests/fixtures/golden/`` freezes a small CoNLL-style corpus and the full
AIDA pipeline's per-mention assignments on it (see ``generate.py`` there).
These tests replay the corpus through a freshly built pipeline — serial,
cached, and batched — and diff against the frozen expectations.  Any
refactor that changes an entity assignment, a mention span, or (beyond
float tolerance) a score fails here first.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.batch import BatchConfig, BatchRunner
from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.datagen.io import load_corpus
from repro.relatedness import CachingRelatedness, MilneWittenRelatedness

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "fixtures", "golden")
CORPUS_PATH = os.path.join(GOLDEN_DIR, "corpus.jsonl")
EXPECTED_PATH = os.path.join(GOLDEN_DIR, "expected.json")

#: Scores pass through libm (log/exp), so allow last-ulp platform drift;
#: entity assignments and spans are compared exactly.
SCORE_TOLERANCE = 1e-9

VARIANTS = {
    "full": AidaConfig.full,
    "sim": AidaConfig.sim_only,
}


@pytest.fixture(scope="module")
def golden():
    with open(EXPECTED_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def golden_corpus():
    return load_corpus(CORPUS_PATH)


def _check_fixture_matches_conftest(golden):
    # The test-session KB (tests/conftest.py) and the fixture must be
    # derived from the same seeds, or the diff below compares apples to
    # oranges.  Fails loudly if someone changes one side only.
    assert golden["world_seed"] == 7
    assert golden["clusters_per_domain"] == 4
    assert golden["kb_seed"] == 101


def _assert_matches(result, expected_records, context):
    assert len(result.assignments) == len(expected_records), context
    for assignment, record in zip(result.assignments, expected_records):
        where = (
            f"{context}: mention {record['surface']!r} "
            f"[{record['start']}, {record['end']})"
        )
        assert assignment.mention.surface == record["surface"], where
        assert assignment.mention.start == record["start"], where
        assert assignment.mention.end == record["end"], where
        assert assignment.entity == record["entity"], where
        assert assignment.score == pytest.approx(
            record["score"], abs=SCORE_TOLERANCE
        ), where


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_golden_assignments_reproduce(kb, golden, golden_corpus, variant):
    """The frozen per-mention assignments reproduce exactly, per variant."""
    _check_fixture_matches_conftest(golden)
    expected = golden["expected"][variant]
    assert len(golden_corpus) == golden["documents"]
    pipeline = AidaDisambiguator(kb, config=VARIANTS[variant]())
    for annotated in golden_corpus:
        result = pipeline.disambiguate(annotated.document)
        _assert_matches(
            result,
            expected[annotated.doc_id],
            f"variant {variant}, doc {annotated.doc_id}",
        )


def test_golden_under_caching_wrapper(kb, golden, golden_corpus):
    """A shared relatedness cache must not move a single assignment."""
    expected = golden["expected"]["full"]
    pipeline = AidaDisambiguator(
        kb,
        relatedness=CachingRelatedness(
            MilneWittenRelatedness(kb.links, max(kb.entity_count, 2))
        ),
    )
    for annotated in golden_corpus:
        result = pipeline.disambiguate(annotated.document)
        _assert_matches(
            result, expected[annotated.doc_id], f"doc {annotated.doc_id}"
        )


@pytest.mark.parametrize("workers", [2, 4])
def test_golden_under_batch_runner(kb, golden, golden_corpus, workers):
    """The batch runner reproduces the frozen assignments in order."""
    expected = golden["expected"]["full"]
    pipeline = AidaDisambiguator(
        kb,
        relatedness=CachingRelatedness(
            MilneWittenRelatedness(kb.links, max(kb.entity_count, 2))
        ),
    )
    runner = BatchRunner(
        pipeline=pipeline,
        config=BatchConfig(workers=workers, executor="thread"),
    )
    outcome = runner.run([doc.document for doc in golden_corpus])
    assert outcome.ok, outcome.failures
    for annotated, result in zip(golden_corpus, outcome.results):
        _assert_matches(
            result, expected[annotated.doc_id], f"doc {annotated.doc_id}"
        )
