"""Tests for the TAC-KBP-style protocol and genre adaptation."""

import pytest

from repro.core.config import AidaConfig
from repro.core.genre import (
    GENRE_REGULAR,
    GENRE_SHORT,
    GenreAdaptiveDisambiguator,
    GenreThresholds,
    classify_genre,
)
from repro.core.pipeline import AidaDisambiguator
from repro.datagen.documents import DocumentSpec
from repro.datagen.kore50 import Kore50Config, generate_kore50
from repro.eval.tac import (
    TacQuery,
    evaluate_tac,
    queries_from_corpus,
)
from repro.types import Document, Mention, OUT_OF_KB


class TestQueriesFromCorpus:
    def test_one_query_per_gold_mention(self, sample_docs):
        queries = queries_from_corpus(sample_docs)
        expected = sum(len(doc.gold) for doc in sample_docs)
        assert len(queries) == expected

    def test_nil_queries_carry_clusters(self, sample_docs):
        queries = queries_from_corpus(sample_docs)
        for query in queries:
            if query.gold_entity == OUT_OF_KB:
                assert query.gold_nil_cluster is not None
            else:
                assert query.gold_nil_cluster is None

    def test_custom_nil_cluster_fn(self, sample_docs):
        queries = queries_from_corpus(
            sample_docs, nil_cluster_of=lambda doc, ann: "X"
        )
        nil_clusters = {
            q.gold_nil_cluster
            for q in queries
            if q.gold_entity == OUT_OF_KB
        }
        assert nil_clusters <= {"X"}


class TestEvaluateTac:
    @pytest.fixture(scope="class")
    def tac_run(self, kb, sample_docs):
        pipeline = AidaDisambiguator(
            kb, config=AidaConfig.robust_prior_sim()
        )
        queries = queries_from_corpus(sample_docs)
        return evaluate_tac(pipeline, queries), queries

    def test_totals_add_up(self, tac_run):
        result, queries = tac_run
        assert result.total == len(queries)
        assert result.in_kb_total + result.nil_total == result.total
        assert result.correct == (
            result.in_kb_correct + result.nil_correct
        )

    def test_accuracy_reasonable(self, tac_run):
        result, _queries = tac_run
        assert result.accuracy > 0.5
        assert 0.0 <= result.in_kb_accuracy <= 1.0
        assert 0.0 <= result.nil_accuracy <= 1.0

    def test_b3_bounds(self, tac_run):
        result, _queries = tac_run
        assert 0.0 <= result.b3_precision <= 1.0
        assert 0.0 <= result.b3_recall <= 1.0
        assert 0.0 <= result.b3_f1 <= 1.0

    def test_empty_run(self, kb):
        pipeline = AidaDisambiguator(kb)
        result = evaluate_tac(pipeline, [])
        assert result.total == 0
        assert result.accuracy == 0.0


class TestGenreClassification:
    def _doc(self, tokens, num_mentions):
        mentions = tuple(
            Mention(surface=f"M{i}", start=i, end=i + 1)
            for i in range(num_mentions)
        )
        return Document(
            doc_id="g", tokens=tuple(tokens), mentions=mentions
        )

    def test_short_document(self):
        doc = self._doc(["w"] * 14, num_mentions=3)
        assert classify_genre(doc) == GENRE_SHORT

    def test_long_prose(self):
        doc = self._doc(["w"] * 300, num_mentions=6)
        assert classify_genre(doc) == GENRE_REGULAR

    def test_mention_dense_long_doc_is_short_genre(self):
        doc = self._doc(["w"] * 100, num_mentions=20)
        assert classify_genre(doc) == GENRE_SHORT

    def test_custom_thresholds(self):
        doc = self._doc(["w"] * 50, num_mentions=2)
        assert (
            classify_genre(doc, GenreThresholds(max_tokens=60))
            == GENRE_SHORT
        )


class TestGenreAdaptiveDisambiguator:
    def test_routes_by_genre(self, kb, world, doc_generator):
        adaptive = GenreAdaptiveDisambiguator(kb)
        kore50 = generate_kore50(world, Kore50Config(num_sentences=3))
        assert adaptive.genre_of(kore50[0].document) == GENRE_SHORT
        long_doc = doc_generator.generate(
            DocumentSpec(
                doc_id="long", cluster_ids=[0], num_mentions=6,
                filler_sentences=8,
            )
        )
        assert adaptive.genre_of(long_doc.document) == GENRE_REGULAR

    def test_disambiguates_both_genres(self, kb, world, doc_generator):
        adaptive = GenreAdaptiveDisambiguator(kb)
        kore50 = generate_kore50(world, Kore50Config(num_sentences=2))
        result = adaptive.disambiguate(kore50[0].document)
        assert len(result.assignments) == len(kore50[0].document.mentions)
        long_doc = doc_generator.generate(
            DocumentSpec(doc_id="long2", cluster_ids=[1], num_mentions=5)
        )
        result = adaptive.disambiguate(long_doc.document)
        assert len(result.assignments) == len(long_doc.document.mentions)

    def test_not_worse_than_plain_on_mixed_corpus(
        self, kb, world, doc_generator
    ):
        from repro.eval.runner import run_disambiguator

        mixed = list(
            generate_kore50(world, Kore50Config(num_sentences=8))
        )
        for index in range(8):
            mixed.append(
                doc_generator.generate(
                    DocumentSpec(
                        doc_id=f"mix-{index}",
                        cluster_ids=[index % len(world.clusters)],
                        num_mentions=5,
                    )
                )
            )
        plain = run_disambiguator(
            AidaDisambiguator(kb, config=AidaConfig.full()), mixed, kb=kb
        )
        adaptive = run_disambiguator(
            GenreAdaptiveDisambiguator(kb), mixed, kb=kb
        )
        assert adaptive.micro >= plain.micro - 0.05
