"""Tests for named entity classification (Section 2.4.4)."""

import pytest

from repro.datagen.documents import DocumentSpec
from repro.ner.classifier import COARSE_CLASSES, NamedEntityClassifier
from repro.types import Document, Mention


@pytest.fixture(scope="module")
def classifier(kb):
    return NamedEntityClassifier(kb)


@pytest.fixture(scope="module")
def typed_docs(world, doc_generator):
    """Documents whose gold mentions carry known coarse classes."""
    docs = []
    for index in range(8):
        spec = DocumentSpec(
            doc_id=f"nec-{index}",
            cluster_ids=[index % len(world.clusters)],
            num_mentions=5,
            context_prob=0.9,
            metonymy_bias=0.0,  # keep gold types aligned with surfaces
        )
        docs.append(doc_generator.generate(spec))
    return docs


class TestTypeScores:
    def test_scores_form_distribution(self, classifier, typed_docs):
        document = typed_docs[0].document
        mention = document.mentions[0]
        scores = classifier.type_scores(document, mention)
        assert set(scores) == set(COARSE_CLASSES)
        assert sum(scores.values()) == pytest.approx(1.0, abs=1e-6)

    def test_unknown_mention_uses_context_only(self, classifier):
        document = Document(
            doc_id="unk",
            tokens=("Zzqqx", "did", "things", "."),
            mentions=(Mention(surface="Zzqqx", start=0, end=1),),
        )
        scores = classifier.type_scores(document, document.mentions[0])
        # No candidates and no topical context: everything is zero or a
        # flat context-profile fallback — but always a valid mapping.
        assert set(scores) == set(COARSE_CLASSES)


class TestClassification:
    def test_majority_accuracy_on_gold(
        self, world, kb, classifier, typed_docs
    ):
        correct = 0
        total = 0
        for annotated in typed_docs:
            for annotation in annotated.gold:
                if annotation.is_out_of_kb:
                    continue
                gold_class = kb.coarse_class(annotation.entity)
                if gold_class not in COARSE_CLASSES:
                    continue
                predicted = classifier.classify(
                    annotated.document, annotation.mention
                )
                total += 1
                if predicted == gold_class:
                    correct += 1
        assert total > 10
        assert correct / total > 0.6

    def test_classify_document_covers_all_mentions(
        self, classifier, typed_docs
    ):
        document = typed_docs[0].document
        labeled = classifier.classify_document(document)
        assert len(labeled) == len(document.mentions)

    def test_person_name_classified_as_person(
        self, world, kb, classifier
    ):
        # Build a direct probe: a person's canonical name, no context.
        person = next(
            eid
            for eid in world.in_kb_ids()
            if kb.coarse_class(eid) == "person"
        )
        name = world.entity(person).names.canonical
        tokens = tuple(name.split()) + ("spoke", ".")
        document = Document(
            doc_id="probe",
            tokens=tokens,
            mentions=(
                Mention(surface=name, start=0, end=len(name.split())),
            ),
        )
        predicted = classifier.classify(document, document.mentions[0])
        assert predicted == "person"
