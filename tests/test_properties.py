"""Property-based tests (hypothesis) on core data structures and
invariants: triple store, link graph, min-hash, relatedness bounds,
weights, cover matching, and evaluation measures."""

import math

from hypothesis import given, settings, strategies as st

from repro.eval.measures import DocumentOutcome, micro_average_accuracy
from repro.eval.ranking import spearman
from repro.hashing.minhash import MinHasher, jaccard_estimate
from repro.kb.keyphrases import KeyphraseStore
from repro.kb.links import LinkGraph
from repro.kb.triples import TripleStore
from repro.relatedness.kore import phrase_overlap
from repro.similarity.context import DocumentContext
from repro.similarity.keyphrase_match import phrase_cover, score_phrase
from repro.types import Document
from repro.weights.model import WeightModel, binary_entropy, joint_entropy

_ids = st.text(
    alphabet="abcdefgh", min_size=1, max_size=4
)
_words = st.text(alphabet="qrstuv", min_size=2, max_size=5)


class TestTripleStoreProperties:
    @given(
        st.lists(
            st.tuples(_ids, _ids, _ids), min_size=0, max_size=30
        )
    )
    def test_match_all_returns_distinct_inserted(self, triples):
        store = TripleStore()
        for s, p, o in triples:
            store.add(s, p, o)
        matched = {(t.subject, t.predicate, t.obj) for t in store.match()}
        assert matched == set(triples)

    @given(st.lists(st.tuples(_ids, _ids, _ids), min_size=1, max_size=20))
    def test_remove_inverts_add(self, triples):
        store = TripleStore()
        for s, p, o in triples:
            store.add(s, p, o)
        for s, p, o in triples:
            store.remove(s, p, o)
        assert len(store) == 0


class TestLinkGraphProperties:
    @given(
        st.lists(st.tuples(_ids, _ids), min_size=0, max_size=40)
    )
    def test_inlink_outlink_duality(self, edges):
        graph = LinkGraph()
        graph.add_links(edges)
        for node in graph.nodes():
            for target in graph.outlinks(node):
                assert node in graph.inlinks(target)

    @given(st.lists(st.tuples(_ids, _ids), min_size=0, max_size=40))
    def test_edge_count_matches_distinct_edges(self, edges):
        graph = LinkGraph()
        graph.add_links(edges)
        distinct = {(s, t) for s, t in edges if s != t}
        assert graph.edge_count == len(distinct)


class TestMinHashProperties:
    @given(st.sets(_words, min_size=1, max_size=15))
    def test_identical_sets_estimate_one(self, items):
        hasher = MinHasher(num_hashes=16, seed=3)
        assert jaccard_estimate(
            hasher.sketch(items), hasher.sketch(set(items))
        ) == 1.0

    @given(
        st.sets(_words, min_size=1, max_size=15),
        st.sets(_words, min_size=1, max_size=15),
    )
    def test_estimate_in_unit_interval(self, a, b):
        hasher = MinHasher(num_hashes=16, seed=3)
        estimate = jaccard_estimate(hasher.sketch(a), hasher.sketch(b))
        assert 0.0 <= estimate <= 1.0


class TestEntropyProperties:
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_binary_entropy_bounds(self, p):
        value = binary_entropy(p)
        assert 0.0 <= value <= math.log(2) + 1e-12

    @given(
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=50),
    )
    def test_joint_entropy_nonnegative(self, n11, n10, n01, n00):
        assert joint_entropy(n11, n10, n01, n00) >= 0.0


class TestPhraseOverlapProperties:
    @given(
        st.lists(_words, min_size=1, max_size=5),
        st.lists(_words, min_size=1, max_size=5),
    )
    def test_overlap_bounded_and_symmetric(self, p, q):
        gamma = {w: 1.0 for w in set(p) | set(q)}
        po_pq = phrase_overlap(p, q, gamma, gamma)
        po_qp = phrase_overlap(q, p, gamma, gamma)
        assert 0.0 <= po_pq <= 1.0
        assert po_pq == po_qp

    @given(st.lists(_words, min_size=1, max_size=5))
    def test_self_overlap_is_one(self, p):
        gamma = {w: 1.0 for w in p}
        assert phrase_overlap(p, p, gamma, gamma) == 1.0


class TestCoverProperties:
    @given(
        st.lists(_words, min_size=1, max_size=25),
        st.lists(_words, min_size=1, max_size=4),
    )
    def test_cover_invariants(self, tokens, phrase):
        doc = Document(doc_id="p", tokens=tuple(tokens))
        context = DocumentContext(doc)
        cover = phrase_cover(context, tuple(phrase))
        present = {w for w in set(phrase) if context.positions(w)}
        if not present:
            assert cover is None
            return
        assert cover is not None
        assert set(cover.matched_words) == present
        assert 0 <= cover.start <= cover.end < len(tokens)
        # Every matched word occurs inside the cover window.
        for word in cover.matched_words:
            assert any(
                cover.start <= pos <= cover.end
                for pos in context.positions(word)
            )

    @given(
        st.lists(_words, min_size=1, max_size=25),
        st.lists(_words, min_size=1, max_size=4),
    )
    def test_score_bounded(self, tokens, phrase):
        doc = Document(doc_id="p", tokens=tuple(tokens))
        context = DocumentContext(doc)
        weights = {w: 1.0 for w in phrase}
        score = score_phrase(context, tuple(phrase), weights)
        assert 0.0 <= score <= 1.0


class TestWeightProperties:
    @given(
        st.lists(
            st.tuples(_ids, st.lists(_words, min_size=1, max_size=3)),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=30)
    def test_weight_bounds(self, entity_phrases):
        store = KeyphraseStore()
        for entity_id, phrase in entity_phrases:
            store.add_keyphrase(f"E_{entity_id}", tuple(phrase))
        model = WeightModel(store, links=None)
        for entity_id in store.entity_ids():
            for phrase in store.keyphrases(entity_id):
                assert 0.0 <= model.mi_phrase(entity_id, phrase) <= 1.0
            for word in store.keywords(entity_id):
                assert -1.0 <= model.npmi_word(entity_id, word) <= 1.0
            assert model.idf_word("nonexistent") == 0.0


class TestEvalProperties:
    @given(
        st.lists(
            st.tuples(_ids, _ids),
            min_size=1,
            max_size=30,
        )
    )
    def test_micro_accuracy_bounds(self, pairs):
        outcome = DocumentOutcome(
            doc_id="d",
            pairs=[(gold, pred, None) for gold, pred in pairs],
        )
        assert 0.0 <= micro_average_accuracy([outcome]) <= 1.0

    @given(st.permutations(list("abcdef")))
    def test_spearman_bounds(self, order):
        value = spearman(list("abcdef"), list(order))
        assert -1.0 <= value <= 1.0 + 1e-12
