"""Tests for corpus JSONL serialization."""

import json

import pytest

from repro.datagen.io import (
    FORMAT_VERSION,
    document_from_dict,
    document_to_dict,
    load_corpus,
    save_corpus,
)
from repro.errors import DatasetError


class TestRoundTrip:
    def test_documents_survive(self, sample_docs, tmp_path):
        path = str(tmp_path / "corpus.jsonl")
        written = save_corpus(sample_docs, path)
        assert written == len(sample_docs)
        loaded = load_corpus(path)
        assert len(loaded) == len(sample_docs)
        for original, restored in zip(sample_docs, loaded):
            assert restored.doc_id == original.doc_id
            assert restored.document.tokens == original.document.tokens
            assert restored.document.timestamp == (
                original.document.timestamp
            )
            assert restored.gold == original.gold

    def test_mentions_attached_to_document(self, sample_docs, tmp_path):
        path = str(tmp_path / "corpus.jsonl")
        save_corpus(sample_docs, path)
        loaded = load_corpus(path)
        for annotated in loaded:
            assert annotated.document.mentions == tuple(
                ann.mention for ann in annotated.gold
            )

    def test_dict_round_trip(self, sample_docs):
        data = document_to_dict(sample_docs[0])
        restored = document_from_dict(data)
        assert restored.gold == sample_docs[0].gold


class TestValidation:
    def test_wrong_version_rejected(self, sample_docs):
        data = document_to_dict(sample_docs[0])
        data["version"] = FORMAT_VERSION + 1
        with pytest.raises(DatasetError):
            document_from_dict(data)

    def test_missing_field_rejected(self, sample_docs):
        data = document_to_dict(sample_docs[0])
        del data["tokens"]
        with pytest.raises(DatasetError):
            document_from_dict(data)

    def test_out_of_range_span_rejected(self, sample_docs):
        data = document_to_dict(sample_docs[0])
        data["gold"][0]["end"] = len(data["tokens"]) + 5
        with pytest.raises(DatasetError):
            document_from_dict(data)

    def test_invalid_json_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(DatasetError):
            load_corpus(str(path))

    def test_blank_lines_skipped(self, sample_docs, tmp_path):
        path = tmp_path / "gaps.jsonl"
        record = json.dumps(document_to_dict(sample_docs[0]))
        path.write_text(f"\n{record}\n\n")
        assert len(load_corpus(str(path))) == 1
