"""Tests for vocabulary, names, and the world generator."""

import pytest

from repro.datagen.names import NameFactory, generate_name_pools
from repro.datagen.vocabulary import generate_vocabulary, make_word
from repro.datagen.world import World, WorldConfig
from repro.errors import DatasetError
from repro.utils.rng import SeededRng


class TestVocabulary:
    def test_deterministic(self):
        a = generate_vocabulary(3)
        b = generate_vocabulary(3)
        assert a.background == b.background
        assert a.topics == b.topics

    def test_partitions_disjoint(self):
        vocab = generate_vocabulary(3)
        seen = set(vocab.background)
        for domain in vocab.domains:
            topic = set(vocab.topic_words(domain))
            assert not topic & seen
            seen |= topic

    def test_sizes(self):
        vocab = generate_vocabulary(3, background_size=10, topic_size=5)
        assert len(vocab.background) == 10
        assert all(
            len(vocab.topic_words(d)) == 5 for d in vocab.domains
        )

    def test_unknown_domain_raises(self):
        with pytest.raises(DatasetError):
            generate_vocabulary(3).topic_words("astrology")

    def test_make_word_pronounceable(self):
        word = make_word(SeededRng(1), syllables=2)
        assert word.isalpha()
        assert word == word.lower()


class TestNamePools:
    def test_deterministic(self):
        assert (
            generate_name_pools(5).family_names
            == generate_name_pools(5).family_names
        )

    def test_person_name_structure(self):
        pools = generate_name_pools(5)
        factory = NameFactory(pools, SeededRng(1))
        names = factory.person_name()
        assert len(names.canonical.split()) == 2
        assert names.short_forms[0] == names.canonical.split()[1]

    def test_shared_family_forced(self):
        pools = generate_name_pools(5)
        factory = NameFactory(pools, SeededRng(1))
        names = factory.person_name(shared_family="Smith")
        assert names.canonical.endswith("Smith")

    def test_team_name_shares_city(self):
        pools = generate_name_pools(5)
        factory = NameFactory(pools, SeededRng(1))
        names = factory.team_name("Duluth")
        assert "Duluth" in names.short_forms
        assert names.canonical.startswith("Duluth")

    def test_org_acronym(self):
        pools = generate_name_pools(5)
        factory = NameFactory(pools, SeededRng(1))
        names = factory.org_name(with_acronym=True)
        acronym = names.short_forms[1]
        assert acronym.isupper()
        assert len(acronym) == 3

    def test_usage_tracking(self):
        pools = generate_name_pools(5)
        factory = NameFactory(pools, SeededRng(1))
        names = factory.place_name(base="Kashmir")
        assert factory.uses_of("Kashmir") == 1


class TestWorld:
    def test_deterministic(self):
        a = World.generate(WorldConfig(seed=9, clusters_per_domain=2))
        b = World.generate(WorldConfig(seed=9, clusters_per_domain=2))
        assert a.entity_ids() == b.entity_ids()
        first = a.entity_ids()[0]
        assert a.entity(first).names == b.entity(first).names

    def test_out_of_kb_fraction_respected(self, world):
        total = len(world.entities)
        ookb = len(world.out_of_kb_ids())
        assert 0 < ookb < total * 0.3

    def test_popularity_zipfian(self, world):
        pops = sorted(
            (e.popularity for e in world.entities.values()), reverse=True
        )
        assert pops[0] > 10 * pops[-1]

    def test_clusters_cover_all_entities(self, world):
        members = set()
        for cluster in world.clusters.values():
            members.update(cluster.members)
        assert members == set(world.entities)

    def test_name_ambiguity_exists(self, world):
        from collections import Counter

        counter = Counter()
        for entity in world.entities.values():
            for form in entity.names.short_forms:
                counter[form] += 1
        assert any(count >= 2 for count in counter.values())

    def test_entity_phrases_mix_shared_and_unique(self, world):
        entity_id = world.entity_ids()[0]
        entity = world.entity(entity_id)
        phrases = world.entity_phrases(entity_id)
        flat = {word for phrase in phrases for word in phrase}
        assert set(entity.unique_words) <= flat
        assert flat & set(entity.shared_words)

    def test_latent_relatedness_cluster_gt_cross(self, world):
        cluster = world.clusters[0]
        a, b = cluster.members[0], cluster.members[1]
        other_cluster = world.clusters[max(world.clusters)]
        c = other_cluster.members[0]
        assert world.latent_relatedness(a, b) > world.latent_relatedness(
            a, c
        )

    def test_unknown_entity_raises(self, world):
        with pytest.raises(DatasetError):
            world.entity("missing")


class TestEmergingSpawn:
    def test_spawn_shares_name_with_in_kb(self):
        world = World.generate(WorldConfig(seed=9, clusters_per_domain=2))
        spawned = world.spawn_emerging(
            3, first_day=5, last_day=10, seed=77
        )
        assert len(spawned) == 3
        in_kb_names = {
            form
            for eid in world.in_kb_ids()
            for form in world.entity(eid).names.all_forms
            if not world.entity(eid).is_emerging
        }
        for entity in spawned:
            assert entity.names.canonical in in_kb_names
            assert not entity.in_kb
            assert 5 <= entity.emerging_day <= 10

    def test_spawned_have_fresh_unique_words(self):
        world = World.generate(WorldConfig(seed=9, clusters_per_domain=2))
        spawned = world.spawn_emerging(2, 5, 10, seed=77)
        for entity in spawned:
            assert entity.unique_words
