"""Tests for the four evaluation corpora and the relatedness gold."""

import pytest

from repro.datagen.conll import ConllConfig, generate_conll
from repro.datagen.gigaword import GigawordConfig, generate_gigaword
from repro.datagen.kore50 import Kore50Config, generate_kore50
from repro.datagen.relatedness_gold import (
    RelatednessGoldConfig,
    generate_relatedness_gold,
)
from repro.datagen.world import World, WorldConfig
from repro.datagen.wpslice import WpSliceConfig, generate_wp_slice
from repro.errors import DatasetError
from repro.types import OUT_OF_KB


class TestConll:
    @pytest.fixture(scope="class")
    def corpus(self, world):
        return generate_conll(world, ConllConfig(scale=0.03))

    def test_split_sizes_scale(self, corpus):
        assert len(corpus.train) == int(946 * 0.03)
        assert len(corpus.testa) == int(216 * 0.03)
        assert len(corpus.testb) == int(231 * 0.03)

    def test_out_of_kb_fraction_near_paper(self, corpus):
        props = corpus.properties()
        fraction = props["mentions_no_entity"] / props["mentions_total"]
        assert 0.05 < fraction < 0.4

    def test_properties_shape(self, corpus):
        props = corpus.properties()
        assert props["articles"] == len(corpus.all_documents())
        assert props["mentions_per_article_avg"] > 3

    def test_deterministic(self, world):
        a = generate_conll(world, ConllConfig(scale=0.01))
        b = generate_conll(world, ConllConfig(scale=0.01))
        assert a.testb[0].document.tokens == b.testb[0].document.tokens

    def test_invalid_scale(self, world):
        with pytest.raises(DatasetError):
            ConllConfig(scale=0.0)


class TestKore50:
    def test_sentence_count_and_density(self, world):
        docs = generate_kore50(world, Kore50Config(num_sentences=20))
        assert len(docs) == 20
        for doc in docs:
            assert len(doc.gold) == 3
            # Short sentences: high mention density.
            assert len(doc.document.tokens) < 60


class TestWpSlice:
    def test_music_domain_only(self, world):
        docs = generate_wp_slice(world, WpSliceConfig(num_sentences=15))
        music_entities = {
            eid
            for eid in world.entity_ids()
            if world.entity(eid).domain == "music"
        }
        for doc in docs:
            for ann in doc.gold:
                if ann.entity != OUT_OF_KB:
                    assert ann.entity in music_entities

    def test_unknown_domain_rejected(self, world):
        with pytest.raises(DatasetError):
            generate_wp_slice(world, WpSliceConfig(domain="astrology"))


class TestGigaword:
    @pytest.fixture(scope="class")
    def fresh_world(self):
        # generate_gigaword mutates the world (spawns emerging entities),
        # so the shared session world must not be used here.
        return World.generate(WorldConfig(seed=13, clusters_per_domain=3))

    @pytest.fixture(scope="class")
    def stream(self, fresh_world):
        return generate_gigaword(
            fresh_world,
            GigawordConfig(
                num_days=34,
                docs_per_day=4,
                emerging_count=4,
                train_day=28,
                test_day=31,
                emerging_first_day=4,
                emerging_last_day=20,
            ),
        )

    def test_all_days_covered(self, stream):
        days = {d.document.timestamp for d in stream.documents}
        assert days == set(range(34))

    def test_annotated_days_have_docs(self, stream):
        assert stream.train_docs()
        assert stream.test_docs()

    def test_emerging_mentions_present_after_emerging_day(
        self, fresh_world, stream
    ):
        for eid in stream.emerging_ids:
            entity = fresh_world.entity(eid)
            name = entity.names.canonical
            docs_with_name = [
                d
                for d in stream.documents
                if any(m.surface == name for m in d.document.mentions)
            ]
            late = [
                d
                for d in docs_with_name
                if d.document.timestamp >= entity.emerging_day
            ]
            assert late  # the EE appears in the stream after surfacing

    def test_properties(self, stream):
        props = stream.properties()
        assert props["documents"] > 0
        assert props["mentions_with_emerging_entities"] > 0

    def test_invalid_config(self):
        with pytest.raises(DatasetError):
            GigawordConfig(num_days=10, train_day=20)
        with pytest.raises(DatasetError):
            GigawordConfig(
                num_days=40, emerging_last_day=35, train_day=30, test_day=38
            )


class TestRelatednessGold:
    @pytest.fixture(scope="class")
    def gold(self, world):
        return generate_relatedness_gold(
            world, RelatednessGoldConfig(seeds_per_domain=2)
        )

    def test_seed_count(self, gold):
        assert len(gold.seeds) == 8  # 4 domains x 2

    def test_candidate_count(self, gold):
        for seed in gold.seeds:
            assert len(seed.ranked_candidates) == 20

    def test_seed_not_among_candidates(self, gold):
        for seed in gold.seeds:
            assert seed.seed not in seed.ranked_candidates

    def test_cluster_members_rank_high(self, world, gold):
        # On average, same-cluster candidates should rank above
        # cross-domain ones.
        for seed in gold.seeds:
            cluster = world.entity(seed.seed).cluster_id
            ranks_same = [
                rank
                for rank, eid in enumerate(seed.ranked_candidates)
                if world.entity(eid).cluster_id == cluster
            ]
            ranks_other = [
                rank
                for rank, eid in enumerate(seed.ranked_candidates)
                if world.entity(eid).domain != world.entity(seed.seed).domain
            ]
            if ranks_same and ranks_other:
                avg_same = sum(ranks_same) / len(ranks_same)
                avg_other = sum(ranks_other) / len(ranks_other)
                assert avg_same < avg_other

    def test_by_domain_grouping(self, gold):
        grouped = gold.by_domain()
        assert set(grouped) == {"tech", "film", "music", "sports"}
