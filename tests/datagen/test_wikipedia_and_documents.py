"""Tests for the synthetic encyclopedia and document generation."""

import pytest

from repro.datagen.documents import DocumentGenerator, DocumentSpec
from repro.datagen.wikipedia import SyntheticWikipedia, build_world_kb
from repro.types import OUT_OF_KB


class TestWikipedia:
    def test_only_in_kb_entities_have_articles(self, world, wiki):
        assert set(wiki.articles) == set(world.in_kb_ids())

    def test_deterministic(self, world):
        a = SyntheticWikipedia.generate(world, seed=101)
        b = SyntheticWikipedia.generate(world, seed=101)
        eid = sorted(a.articles)[0]
        assert a.articles[eid].anchors == b.articles[eid].anchors

    def test_popular_entities_have_more_inlinks(self, world, kb):
        in_kb = world.in_kb_ids()
        by_pop = sorted(
            in_kb, key=lambda eid: -world.entity(eid).popularity
        )
        top = by_pop[:10]
        bottom = by_pop[-10:]
        avg_top = sum(kb.inlink_count(e) for e in top) / len(top)
        avg_bottom = sum(kb.inlink_count(e) for e in bottom) / len(bottom)
        assert avg_top > avg_bottom * 1.5

    def test_anchor_counts_give_popularity_prior(self, world, kb):
        # For ambiguous names, the more popular entity should usually have
        # the larger prior.
        checked = 0
        agree = 0
        for name in kb.dictionary.all_names():
            candidates = kb.candidates(name)
            if len(candidates) < 2:
                continue
            by_prior = max(candidates, key=lambda e: kb.prior(name, e))
            by_pop = max(
                candidates, key=lambda e: world.entity(e).popularity
            )
            checked += 1
            if by_prior == by_pop:
                agree += 1
        assert checked > 5
        # Majority agreement; hub-structured linking makes anchor counts
        # depend on article structure as well, so this is not exact.
        assert agree / checked >= 0.5

    def test_keyphrases_cover_theme_words(self, world, kb):
        eid = world.in_kb_ids()[0]
        entity = world.entity(eid)
        words = {
            word
            for phrase in kb.entity_keyphrases(eid)
            for word in phrase
        }
        covered = sum(1 for w in entity.unique_words if w in words)
        assert covered == len(entity.unique_words)

    def test_kb_dictionary_contains_short_forms(self, world, kb):
        eid = world.in_kb_ids()[0]
        entity = world.entity(eid)
        for form in entity.names.short_forms:
            assert eid in kb.candidates(form)


class TestDocumentGenerator:
    def test_deterministic(self, world, doc_generator):
        spec = DocumentSpec(doc_id="det", cluster_ids=[0], num_mentions=4)
        a = doc_generator.generate(spec)
        b = doc_generator.generate(spec)
        assert a.document.tokens == b.document.tokens
        assert a.gold == b.gold

    def test_mention_offsets_match_surface(self, world, doc_generator):
        spec = DocumentSpec(doc_id="off", cluster_ids=[1], num_mentions=4)
        annotated = doc_generator.generate(spec)
        doc = annotated.document
        for mention in doc.mentions:
            assert doc.mention_surface(mention) == mention.surface

    def test_out_of_kb_gold_for_out_of_kb_entities(
        self, world, doc_generator
    ):
        ookb = [
            eid
            for eid in world.out_of_kb_ids()
            if not world.entity(eid).is_emerging
        ]
        if not ookb:
            pytest.skip("world has no out-of-KB entities")
        target = ookb[0]
        spec = DocumentSpec(
            doc_id="ookb",
            cluster_ids=[world.entity(target).cluster_id],
            forced_entities=[target],
            num_mentions=4,
        )
        annotated = doc_generator.generate(spec)
        assert any(ann.entity == OUT_OF_KB for ann in annotated.gold)

    def test_num_mentions_respected(self, world, doc_generator):
        spec = DocumentSpec(doc_id="n", cluster_ids=[0], num_mentions=3)
        annotated = doc_generator.generate(spec)
        assert len(annotated.gold) == 3

    def test_ambiguous_prob_zero_gives_canonical(self, world, doc_generator):
        spec = DocumentSpec(
            doc_id="canon",
            cluster_ids=[0],
            num_mentions=4,
            ambiguous_prob=0.0,
        )
        annotated = doc_generator.generate(spec)
        for ann in annotated.gold:
            entity_id = (
                ann.entity
                if ann.entity != OUT_OF_KB
                else None
            )
            if entity_id:
                canonical = world.entity(entity_id).names.canonical
                assert ann.mention.surface == canonical

    def test_context_override_used(self, world, doc_generator):
        cluster = world.clusters[0]
        target = cluster.members[0]
        spec = DocumentSpec(
            doc_id="override",
            cluster_ids=[0],
            forced_entities=[target],
            num_mentions=2,
            context_prob=1.0,
            context_overrides={target: ("xxoverride", "yyoverride")},
        )
        annotated = doc_generator.generate(spec)
        assert "xxoverride" in annotated.document.tokens

    def test_unknown_cluster_rejected(self, world, doc_generator):
        from repro.errors import DatasetError

        spec = DocumentSpec(doc_id="bad", cluster_ids=[999])
        with pytest.raises(DatasetError):
            doc_generator.generate(spec)

    def test_long_tail_preference(self, world, doc_generator):
        """With prefer_long_tail, average popularity of chosen entities
        drops (statistically, over several documents)."""

        def avg_pop(prefer):
            total = 0.0
            count = 0
            for index in range(12):
                spec = DocumentSpec(
                    doc_id=f"lt-{prefer}-{index}",
                    cluster_ids=[index % len(world.clusters)],
                    num_mentions=4,
                    prefer_long_tail=prefer,
                    distractor_prob=0.0,
                )
                annotated = doc_generator.generate(spec)
                for ann in annotated.gold:
                    if ann.entity != OUT_OF_KB:
                        total += world.entity(ann.entity).popularity
                        count += 1
            return total / count

        assert avg_pop(True) <= avg_pop(False) * 1.2
