"""Unit tests for trace contexts and the JSONL trace sink."""

from __future__ import annotations

import json
import pickle
import threading

import pytest

from repro.obs import (
    TraceContext,
    TraceSink,
    current_context,
    new_request_id,
    new_trace_id,
    set_context,
    use_context,
)


class TestTraceContext:
    def test_new_mints_distinct_ids(self):
        a, b = TraceContext.new(), TraceContext.new()
        assert a.trace_id != b.trace_id
        assert a.request_id != b.request_id
        assert a.request_id.startswith("req-")
        assert len(a.trace_id) == 32

    def test_id_helpers(self):
        assert new_trace_id() != new_trace_id()
        assert new_request_id().startswith("req-")

    def test_with_parent_and_baggage_are_copy_on_write(self):
        base = TraceContext.new()
        child = base.with_parent(42).with_baggage(rung="prior_only")
        assert child.parent_span_id == 42
        assert child.baggage == {"rung": "prior_only"}
        assert base.parent_span_id is None
        assert base.baggage == {}
        assert child.trace_id == base.trace_id

    def test_dict_roundtrip(self):
        context = TraceContext.new(sampled=False).with_parent(
            7
        ).with_baggage(rung="no_coherence")
        clone = TraceContext.from_dict(
            json.loads(json.dumps(context.to_dict()))
        )
        assert clone == context

    def test_pickles_across_the_process_wall(self):
        context = TraceContext.new().with_parent(3).with_baggage(k="v")
        assert pickle.loads(pickle.dumps(context)) == context

    def test_use_context_restores_previous(self):
        outer = TraceContext.new()
        inner = TraceContext.new()
        assert current_context() is None
        set_context(outer)
        try:
            with use_context(inner):
                assert current_context() is inner
                with use_context(None):
                    assert current_context() is None
                assert current_context() is inner
            assert current_context() is outer
        finally:
            set_context(None)

    def test_context_is_thread_local(self):
        context = TraceContext.new()
        seen = []

        def worker():
            seen.append(current_context())

        with use_context(context):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen == [None]


class TestTraceSink:
    def test_spools_traces_as_jsonl(self, tmp_path):
        path = str(tmp_path / "traces.jsonl")
        sink = TraceSink(path, max_traces=10)
        assert sink.export(
            [{"name": "a", "span_id": 1}, {"name": "b", "span_id": 2}]
        )
        sink.close()
        rows = [
            json.loads(line)
            for line in open(path, encoding="utf-8")
            if line.strip()
        ]
        assert [row["name"] for row in rows] == ["a", "b"]
        assert sink.stats() == {
            "traces_written": 1,
            "traces_dropped": 0,
            "spans_written": 2,
        }

    def test_bound_drops_excess_traces(self, tmp_path):
        sink = TraceSink(str(tmp_path / "t.jsonl"), max_traces=2)
        assert sink.export([{"name": "one"}])
        assert sink.export([{"name": "two"}])
        assert not sink.export([{"name": "three"}])
        stats = sink.stats()
        assert stats["traces_written"] == 2
        assert stats["traces_dropped"] == 1
        sink.close()

    def test_empty_trace_is_not_counted(self, tmp_path):
        sink = TraceSink(str(tmp_path / "t.jsonl"))
        assert not sink.export([])
        assert sink.stats()["traces_written"] == 0
        sink.close()

    def test_close_is_idempotent_and_creates_directories(self, tmp_path):
        sink = TraceSink(str(tmp_path / "deep" / "dir" / "t.jsonl"))
        sink.export([{"name": "x"}])
        sink.close()
        sink.close()
        assert (tmp_path / "deep" / "dir" / "t.jsonl").exists()

    def test_max_traces_validated(self, tmp_path):
        with pytest.raises(ValueError):
            TraceSink(str(tmp_path / "t.jsonl"), max_traces=0)
