"""Unit tests for the hierarchical span tracer (:mod:`repro.obs.tracing`)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
)


class TestSpans:
    def test_span_records_name_category_and_args(self):
        tracer = Tracer()
        with tracer.span("work", category="stage", doc_id="d1"):
            pass
        (record,) = tracer.records()
        assert record.name == "work"
        assert record.category == "stage"
        assert record.args == {"doc_id": "d1"}
        assert record.duration > 0.0
        assert record.parent_id is None
        assert record.depth == 0

    def test_nesting_sets_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
        by_name = {r.name: r for r in tracer.records()}
        assert by_name["outer"].parent_id is None
        assert by_name["middle"].parent_id == by_name["outer"].span_id
        assert by_name["inner"].parent_id == by_name["middle"].span_id
        assert by_name["inner"].depth == 2
        # Children close before parents; durations nest.
        assert by_name["outer"].duration >= by_name["middle"].duration
        assert by_name["middle"].duration >= by_name["inner"].duration

    def test_current_span_tracks_stack(self):
        tracer = Tracer()
        assert tracer.current_span() is None
        with tracer.span("a"):
            assert tracer.current_span().name == "a"
            with tracer.span("b"):
                assert tracer.current_span().name == "b"
            assert tracer.current_span().name == "a"
        assert tracer.current_span() is None

    def test_add_args_on_open_span(self):
        tracer = Tracer()
        with tracer.span("a") as span:
            span.add_args(entities=5)
        (record,) = tracer.records()
        assert record.args["entities"] == 5

    def test_span_closed_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.current_span() is None
        (record,) = tracer.records()
        assert record.name == "boom"

    def test_decorator_traces_calls(self):
        tracer = Tracer()

        @tracer.traced("fn", category="test")
        def add(a, b):
            return a + b

        assert add(1, 2) == 3
        assert add(3, 4) == 7
        names = [r.name for r in tracer.records()]
        assert names == ["fn", "fn"]

    def test_clear_drops_records(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.records() == []


class TestThreadLocalStacks:
    def test_threads_get_independent_stacks(self):
        """Spans opened concurrently in two threads never become each
        other's parents."""
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def work(name):
            with tracer.span(f"outer-{name}"):
                barrier.wait(timeout=10)
                with tracer.span(f"inner-{name}"):
                    barrier.wait(timeout=10)

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = {r.name: r for r in tracer.records()}
        assert len(records) == 4
        for i in range(2):
            inner = records[f"inner-{i}"]
            outer = records[f"outer-{i}"]
            assert inner.parent_id == outer.span_id
            assert inner.tid == outer.tid
        assert records["outer-0"].tid != records["outer-1"].tid


class TestJsonlExport:
    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", category="c", k="v"):
            with tracer.span("inner"):
                pass
        path = tmp_path / "spans.jsonl"
        count = tracer.export_jsonl(str(path))
        assert count == 2
        lines = path.read_text().splitlines()
        spans = [json.loads(line) for line in lines]
        assert [s["name"] for s in spans] == ["outer", "inner"]
        assert spans[0]["args"] == {"k": "v"}
        assert spans[1]["parent_id"] == spans[0]["span_id"]


class TestNullTracer:
    def test_null_tracer_is_default(self):
        assert get_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled

    def test_null_span_is_shared_noop(self):
        a = NULL_TRACER.span("x", category="y", k=1)
        b = NULL_TRACER.span("z")
        assert a is b
        with a:
            a.add_args(ignored=True)
        assert NULL_TRACER.records() == []
        assert NULL_TRACER.current_span() is None

    def test_null_decorator_returns_function_unchanged(self):
        def fn():
            return 42

        assert NullTracer().traced("fn")(fn) is fn

    def test_set_tracer_swaps_and_restores(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert previous is NULL_TRACER
            assert get_tracer() is tracer
        finally:
            assert set_tracer(None) is tracer
        assert get_tracer() is NULL_TRACER
