"""Differential guarantee: observability never changes the answer.

Traced/metered runs must produce bit-identical assignments to the
default (null-observability) path — spans and metrics only observe, and
the disabled path is the one production exercises, so any divergence is
a bug in the instrumentation wiring.
"""

from __future__ import annotations

import pytest

from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.graph.dense_subgraph import GreedyDenseSubgraph
from repro.graph.synthetic import SyntheticGraphSpec, synthetic_graph
from repro.obs import MetricsRegistry, Tracer, set_metrics, set_tracer

#: Ten seeded worlds of varying shape; identical spec -> identical graph.
WORLDS = tuple(
    SyntheticGraphSpec(
        mentions=4 + seed,
        candidates_per_mention=3 + seed % 4,
        ee_neighbors=2 + seed % 3,
        shared_fraction=0.05 * (seed % 5),
        seed=seed,
    )
    for seed in range(10)
)


@pytest.fixture
def live_obs():
    """Install a live tracer + registry, restore the null pair after."""
    tracer, registry = Tracer(), MetricsRegistry()
    set_tracer(tracer)
    set_metrics(registry)
    yield tracer, registry
    set_tracer(None)
    set_metrics(None)


def _comparable(result):
    return [
        (
            assignment.mention,
            assignment.entity,
            assignment.score,
            sorted(assignment.candidate_scores.items()),
        )
        for assignment in result.assignments
    ]


class TestSolverWorlds:
    def test_solver_bit_identical_on_ten_seeded_worlds(self, live_obs):
        """The solver's span/metric hooks do not perturb a single
        assignment on any of the ten synthetic worlds."""
        untraced = {}
        set_tracer(None)
        set_metrics(None)
        for spec in WORLDS:
            untraced[spec.seed] = GreedyDenseSubgraph().solve(
                synthetic_graph(spec)
            )
        tracer, registry = live_obs
        set_tracer(tracer)
        set_metrics(registry)
        for spec in WORLDS:
            traced = GreedyDenseSubgraph().solve(synthetic_graph(spec))
            assert traced == untraced[spec.seed], (
                f"world seed={spec.seed} diverged under tracing"
            )
        assert registry.counter("solver.solves").value == len(WORLDS)
        solver_spans = [
            r for r in tracer.records() if r.category == "solver"
        ]
        assert len(solver_spans) == 3 * len(WORLDS)


class TestPipelineDocuments:
    def test_pipeline_bit_identical_with_obs_enabled(
        self, kb, sample_docs, live_obs
    ):
        """Full pipeline: identical assignments, scores, and candidate
        score maps with tracing + metrics on versus off."""
        config = AidaConfig.full()
        documents = [annotated.document for annotated in sample_docs]
        set_tracer(None)
        set_metrics(None)
        baseline = [
            AidaDisambiguator(kb, config=config).disambiguate(doc)
            for doc in documents
        ]
        tracer, registry = live_obs
        set_tracer(tracer)
        set_metrics(registry)
        traced = [
            AidaDisambiguator(kb, config=config).disambiguate(doc)
            for doc in documents
        ]
        for before, after in zip(baseline, traced):
            assert _comparable(before) == _comparable(after)
            assert before.stats.phase_seconds.keys() == (
                after.stats.phase_seconds.keys()
            )
        assert registry.counter("pipeline.documents").value == len(
            sample_docs
        )
        document_spans = [
            r for r in tracer.records() if r.name == "document"
        ]
        assert len(document_spans) == len(sample_docs)
