"""Unit tests for the trace-report analysis (:mod:`repro.obs.report`)."""

from __future__ import annotations

import json

import pytest

from repro.obs.report import (
    build_report,
    group_traces,
    load_spans,
    render_report,
)


def span(name, span_id, parent_id=None, start=0.0, duration=1.0,
         trace_id="t1"):
    return {
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "wall_start": start,
        "duration": duration,
        "trace_id": trace_id,
    }


class TestLoading:
    def test_load_spans_skips_blanks_and_non_spans(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps({"name": "a", "span_id": 1}) + "\n"
            "\n"
            + json.dumps({"not_a_span": True}) + "\n"
            + json.dumps({"name": "b", "span_id": 2}) + "\n",
            encoding="utf-8",
        )
        spans = load_spans([str(path)])
        assert [row["name"] for row in spans] == ["a", "b"]

    def test_load_spans_reports_bad_lines_with_position(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "ok"}\nnot json\n', encoding="utf-8")
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            load_spans([str(path)])

    def test_group_traces_buckets_missing_ids_together(self):
        spans = [
            span("a", 1, trace_id="t1"),
            {"name": "anon", "span_id": 2},
            {"name": "anon2", "span_id": 3},
        ]
        traces = group_traces(spans)
        assert set(traces) == {"t1", ""}
        assert len(traces[""]) == 2


class TestSelfTime:
    def test_children_subtract_from_parent_self_time(self):
        spans = [
            span("request", 1, start=0.0, duration=1.0),
            span("stage_a", 2, parent_id=1, start=0.0, duration=0.3),
            span("stage_b", 3, parent_id=1, start=0.5, duration=0.4),
        ]
        report = build_report(spans)
        rows = {row["name"]: row for row in report["stages"]}
        assert rows["request"]["total_ms"] == pytest.approx(300.0)
        assert rows["stage_a"]["total_ms"] == pytest.approx(300.0)
        assert rows["stage_b"]["total_ms"] == pytest.approx(400.0)
        # Shares are fractions of root wall time and sum to 1 here.
        assert sum(r["share"] for r in report["stages"]) == (
            pytest.approx(1.0)
        )

    def test_overlapping_children_are_not_double_counted(self):
        # Two parallel children covering [0, 0.8] between them.
        spans = [
            span("request", 1, start=0.0, duration=1.0),
            span("worker", 2, parent_id=1, start=0.0, duration=0.6),
            span("worker", 3, parent_id=1, start=0.4, duration=0.4),
        ]
        report = build_report(spans)
        rows = {row["name"]: row for row in report["stages"]}
        assert rows["request"]["total_ms"] == pytest.approx(200.0)
        assert rows["worker"]["count"] == 2

    def test_child_outside_parent_window_is_clamped(self):
        spans = [
            span("request", 1, start=0.0, duration=1.0),
            span("skewed", 2, parent_id=1, start=0.9, duration=5.0),
        ]
        report = build_report(spans)
        rows = {row["name"]: row for row in report["stages"]}
        # The child can only subtract the 0.1s it overlaps the parent.
        assert rows["request"]["total_ms"] == pytest.approx(900.0)


class TestReportStructure:
    def test_slow_trace_accounting(self):
        spans = [
            span("request", 1, duration=0.05, trace_id="fast"),
            span("request", 2, duration=0.5, trace_id="slow"),
        ]
        report = build_report(spans, slo_ms=100.0)
        assert report["traces"] == 2
        assert report["slow_traces"] == 1
        assert report["slo_ms"] == 100.0

    def test_slow_traces_none_without_slo(self):
        report = build_report([span("request", 1)])
        assert report["slow_traces"] is None

    def test_stages_sorted_by_total_self_time(self):
        spans = [
            span("small", 1, duration=0.1, trace_id="a"),
            span("big", 2, duration=0.9, trace_id="b"),
        ]
        report = build_report(spans)
        assert [row["name"] for row in report["stages"]] == (
            ["big", "small"]
        )

    def test_render_is_a_fixed_width_table(self):
        spans = [
            span("request", 1, start=0.0, duration=1.0),
            span("solve", 2, parent_id=1, start=0.2, duration=0.6),
        ]
        text = render_report(build_report(spans, slo_ms=500.0))
        lines = text.splitlines()
        assert lines[0].startswith("traces: 1  spans: 2")
        assert "breaching: 1" in lines[0]
        assert any(line.startswith("stage") for line in lines)
        assert any("solve" in line for line in lines)

    def test_empty_input(self):
        report = build_report([])
        assert report["traces"] == 0
        assert report["stages"] == []
