"""Tracer retention, context stamping, and cross-process span fan-in."""

from __future__ import annotations

import pytest

from repro.obs import (
    DEFAULT_MAX_SPANS,
    MetricsRegistry,
    TraceContext,
    Tracer,
    set_metrics,
    use_context,
)


class TestRingBuffer:
    def test_default_cap(self):
        assert Tracer().max_spans == DEFAULT_MAX_SPANS == 65_536

    def test_oldest_spans_evicted_at_the_cap(self):
        tracer = Tracer(max_spans=4)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        names = [record.name for record in tracer.records()]
        assert names == ["s6", "s7", "s8", "s9"]
        assert tracer.dropped_spans == 6

    def test_eviction_counts_into_metrics(self):
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            tracer = Tracer(max_spans=2)
            for index in range(5):
                with tracer.span(f"s{index}"):
                    pass
        finally:
            set_metrics(previous)
        snap = registry.snapshot()
        assert snap["counters"]["obs.tracer.dropped_spans"] == 3

    def test_detached_spans_do_not_block_retention(self):
        tracer = Tracer(max_spans=4)
        context = TraceContext.new()
        with use_context(context):
            with tracer.span("kept"):
                pass
        taken = tracer.take_trace(context.trace_id)
        assert [row["name"] for row in taken] == ["kept"]
        # The detached span no longer occupies live capacity.
        for index in range(4):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.records()) == 4
        assert tracer.dropped_spans == 0


class TestContextStamping:
    def test_spans_carry_the_active_context_ids(self):
        tracer = Tracer()
        context = TraceContext.new()
        with use_context(context):
            with tracer.span("work"):
                pass
        (record,) = tracer.records()
        assert record.trace_id == context.trace_id
        assert record.request_id == context.request_id

    def test_reparenting_onto_the_request_span(self):
        tracer = Tracer()
        root = tracer.allocate_span_id()
        context = TraceContext.new().with_parent(root)
        # An untraced ambient span is already on the stack (the serial
        # executor's batch.run) — the context still wins.
        with tracer.span("batch.run"):
            with use_context(context):
                with tracer.span("document"):
                    with tracer.span("stage"):
                        pass
        by_name = {r.name: r for r in tracer.records()}
        assert by_name["document"].parent_id == root
        assert by_name["stage"].parent_id == by_name["document"].span_id
        assert by_name["batch.run"].trace_id is None

    def test_take_trace_detaches_and_sorts(self):
        tracer = Tracer()
        context = TraceContext.new()
        with use_context(context):
            with tracer.span("a"):
                with tracer.span("b"):
                    pass
        spans = tracer.take_trace(context.trace_id)
        assert [row["name"] for row in spans] == ["a", "b"]
        assert all(row["trace_id"] == context.trace_id for row in spans)
        # Taking detaches: the records are gone from the buffer and a
        # second take returns nothing.
        assert tracer.records() == []
        assert tracer.take_trace(context.trace_id) == []

    def test_discard_trace_drops_without_export(self):
        tracer = Tracer()
        context = TraceContext.new()
        with use_context(context):
            with tracer.span("a"):
                pass
        assert tracer.discard_trace(context.trace_id) == 1
        assert tracer.records() == []


class TestCrossProcessFanIn:
    def test_absorb_preserves_ids_and_parentage(self):
        worker = Tracer(span_id_base=(7 & 0xFFFF) << 32)
        context = TraceContext.new().with_parent(12345)
        with use_context(context):
            with worker.span("document"):
                with worker.span("solve"):
                    pass
        shipped = [record.as_dict() for record in worker.records()]

        parent = Tracer()
        assert parent.absorb(shipped) == 2
        by_name = {r.name: r for r in parent.records()}
        assert by_name["document"].parent_id == 12345
        assert by_name["solve"].parent_id == by_name["document"].span_id
        assert by_name["document"].span_id > (1 << 32)
        assert by_name["document"].trace_id == context.trace_id

    def test_absorbed_spans_are_takeable_by_trace(self):
        worker = Tracer(span_id_base=1 << 32)
        context = TraceContext.new()
        with use_context(context):
            with worker.span("remote"):
                pass
        parent = Tracer()
        parent.absorb([r.as_dict() for r in worker.records()])
        taken = parent.take_trace(context.trace_id)
        assert [row["name"] for row in taken] == ["remote"]

    def test_record_span_synthesizes_request_spans(self):
        tracer = Tracer()
        span_id = tracer.allocate_span_id()
        record = tracer.record_span(
            "request",
            category="serving",
            wall_start=1000.0,
            duration=0.25,
            span_id=span_id,
            trace_id="t1",
            request_id="req-1",
            doc_id="d1",
        )
        assert record.span_id == span_id
        assert record.duration == pytest.approx(0.25)
        assert record.args["doc_id"] == "d1"
        taken = tracer.take_trace("t1")
        assert [row["name"] for row in taken] == ["request"]
