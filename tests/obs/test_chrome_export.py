"""Chrome ``trace_event`` exporter schema tests.

The exported file must round-trip ``json.load``, contain only duration
events (B/E) with monotonically non-decreasing ``ts``, and pair every B
with a same-thread, same-name E in stack order — otherwise Perfetto and
chrome://tracing render garbage or refuse the file outright.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, List

import pytest

from repro.obs import Tracer


def _load(path) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _check_stream(events: List[dict]) -> Dict[int, List[str]]:
    """Assert monotonic ts + matched B/E pairs; return final stacks."""
    last_ts = float("-inf")
    stacks: Dict[int, List[str]] = {}
    for event in events:
        assert event["ph"] in ("B", "E")
        assert event["ts"] >= last_ts, "ts went backwards"
        last_ts = event["ts"]
        stack = stacks.setdefault(event["tid"], [])
        if event["ph"] == "B":
            stack.append(event["name"])
        else:
            assert stack, f"E without B: {event['name']}"
            assert stack[-1] == event["name"], "mis-nested B/E pair"
            stack.pop()
    return stacks


@pytest.fixture
def nested_trace(tmp_path):
    tracer = Tracer()
    with tracer.span("document", category="pipeline", doc_id="d1"):
        for stage in ("graph_build", "solve"):
            with tracer.span(stage, category="stage"):
                with tracer.span("solver.main_loop", category="solver"):
                    pass
    path = tmp_path / "trace.json"
    tracer.export_chrome(str(path))
    return _load(path)


class TestSchema:
    def test_top_level_shape(self, nested_trace):
        assert set(nested_trace) >= {"traceEvents", "displayTimeUnit"}
        assert nested_trace["displayTimeUnit"] == "ms"
        assert isinstance(nested_trace["traceEvents"], list)

    def test_event_fields(self, nested_trace):
        for event in nested_trace["traceEvents"]:
            assert set(event) >= {"name", "ph", "ts", "pid", "tid"}
            assert isinstance(event["ts"], float)
            assert event["ts"] >= 0.0
            if event["ph"] == "B":
                assert "cat" in event

    def test_matched_pairs_and_monotonic_ts(self, nested_trace):
        events = nested_trace["traceEvents"]
        # 5 spans -> 5 B + 5 E events.
        assert len(events) == 10
        stacks = _check_stream(events)
        assert all(not stack for stack in stacks.values())

    def test_nesting_preserved_in_event_order(self, nested_trace):
        names = [
            (e["ph"], e["name"]) for e in nested_trace["traceEvents"]
        ]
        assert names[0] == ("B", "document")
        assert names[-1] == ("E", "document")
        assert names.index(("B", "solve")) > names.index(
            ("E", "graph_build")
        )

    def test_args_attached_to_begin_event(self, nested_trace):
        begin = next(
            e
            for e in nested_trace["traceEvents"]
            if e["ph"] == "B" and e["name"] == "document"
        )
        assert begin["args"] == {"doc_id": "d1"}
        assert begin["cat"] == "pipeline"


class TestThreadedExport:
    def test_interleaved_threads_stay_valid(self, tmp_path):
        """Concurrent spans from several threads interleave in ts order
        yet remain correctly paired per tid."""
        tracer = Tracer()
        barrier = threading.Barrier(4)

        def work(i: int) -> None:
            with tracer.span(f"outer-{i}"):
                barrier.wait(timeout=10)
                for j in range(5):
                    with tracer.span(f"inner-{i}-{j}"):
                        pass

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        path = tmp_path / "threads.json"
        tracer.export_chrome(str(path))
        events = _load(path)["traceEvents"]
        assert len(events) == 2 * 4 * 6
        stacks = _check_stream(events)
        assert len(stacks) == 4
        assert all(not stack for stack in stacks.values())

    def test_zero_duration_spans_keep_pair_order(self, tmp_path):
        """Back-to-back instant spans must not emit an E before its B
        when ts values collide."""
        tracer = Tracer()
        for _ in range(200):
            with tracer.span("tick"):
                pass
        path = tmp_path / "ticks.json"
        tracer.export_chrome(str(path))
        events = _load(path)["traceEvents"]
        assert len(events) == 400
        _check_stream(events)
