"""Structured logging tests (:mod:`repro.obs.logging`) including the
per-stage pipeline event smoke the CI log-capture job mirrors."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.obs import configure_logging, get_logger, log_event, parse_level
from repro.obs.logging import ROOT_LOGGER_NAME
from repro.types import Document, Mention


@pytest.fixture
def restore_logging():
    """Snapshot and restore the repro root logger around each test."""
    root = logging.getLogger(ROOT_LOGGER_NAME)
    state = (root.level, list(root.handlers), root.propagate)
    yield root
    root.level, root.propagate = state[0], state[2]
    root.handlers[:] = state[1]


class TestConfiguration:
    def test_levels_parse(self):
        assert parse_level("debug") == logging.DEBUG
        assert parse_level("INFO") == logging.INFO
        assert parse_level(logging.ERROR) == logging.ERROR
        with pytest.raises(ValueError):
            parse_level("loud")

    def test_get_logger_prefixes_hierarchy(self):
        assert get_logger("pipeline").name == "repro.pipeline"
        assert get_logger("repro.solver").name == "repro.solver"
        assert get_logger("repro").name == "repro"

    def test_configure_is_idempotent(self, restore_logging):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        configure_logging("debug", stream=stream)
        root = logging.getLogger(ROOT_LOGGER_NAME)
        ours = [
            h for h in root.handlers
            if getattr(h, "_repro_obs_handler", False)
        ]
        assert len(ours) == 1
        assert root.level == logging.DEBUG
        assert root.propagate is False


class TestFormats:
    def test_key_value_lines(self, restore_logging):
        stream = io.StringIO()
        configure_logging("debug", stream=stream)
        log_event(
            get_logger("pipeline"),
            "pipeline.stage",
            stage="solve",
            seconds=0.012,
            note="two words",
        )
        line = stream.getvalue().strip()
        assert "event=pipeline.stage" in line
        assert "stage=solve" in line
        assert "seconds=0.012" in line
        assert "note='two words'" in line
        assert "repro.pipeline" in line

    def test_plain_logging_calls_pass_through(self, restore_logging):
        stream = io.StringIO()
        configure_logging("info", stream=stream)
        get_logger("kb").info("loaded %d entities", 42)
        assert "loaded 42 entities" in stream.getvalue()

    def test_json_lines(self, restore_logging):
        stream = io.StringIO()
        configure_logging("debug", json=True, stream=stream)
        log_event(
            get_logger("solver"),
            "solver.solve",
            iterations=7,
            _level=logging.INFO,
        )
        get_logger("solver").warning("plain %s", "message")
        records = [
            json.loads(line)
            for line in stream.getvalue().splitlines()
        ]
        assert records[0]["event"] == "solver.solve"
        assert records[0]["iterations"] == 7
        assert records[0]["level"] == "info"
        assert records[0]["logger"] == "repro.solver"
        assert records[1]["message"] == "plain message"

    def test_exceptions_are_rendered(self, restore_logging):
        stream = io.StringIO()
        configure_logging("debug", json=True, stream=stream)
        try:
            raise ValueError("boom")
        except ValueError:
            get_logger("x").exception("failed")
        payload = json.loads(stream.getvalue())
        assert "ValueError: boom" in payload["exception"]

    def test_log_event_is_lazy_below_level(self, restore_logging):
        stream = io.StringIO()
        configure_logging("warning", stream=stream)
        log_event(get_logger("pipeline"), "pipeline.stage", stage="x")
        assert stream.getvalue() == ""


class TestPipelineStageEvents:
    """The CI log-capture smoke: debug logging on one document emits at
    least one record per pipeline stage and raises nothing."""

    STAGES = (
        "candidate_retrieval",
        "feature_computation",
        "coherence_test",
        "graph_build",
        "solve",
        "post_process",
    )

    def test_debug_run_emits_every_stage(self, kb, restore_logging):
        stream = io.StringIO()
        configure_logging("debug", json=True, stream=stream)
        doc = Document(
            doc_id="log-smoke",
            tokens=(
                "Kashmir", "played", "by", "Page", "on", "gibson", ".",
            ),
            mentions=(
                Mention(surface="Kashmir", start=0, end=1),
                Mention(surface="Page", start=3, end=4),
            ),
        )
        aida = AidaDisambiguator(kb, config=AidaConfig.full())
        aida.disambiguate(doc)
        records = [
            json.loads(line)
            for line in stream.getvalue().splitlines()
        ]
        stage_records = [
            r for r in records if r.get("event") == "pipeline.stage"
        ]
        seen = {r["stage"] for r in stage_records}
        for stage in self.STAGES:
            assert stage in seen, f"no debug record for stage {stage}"
        assert any(
            r.get("event") == "pipeline.document" for r in records
        )
        assert any(
            r.get("event") == "solver.solve" for r in records
        )
