"""Golden and validator tests for the Prometheus text exposition."""

from __future__ import annotations

from repro.obs import (
    MetricsRegistry,
    render_prometheus,
    validate_exposition,
)

#: A registry snapshot with one metric of every kind, built by hand so
#: the golden below is stable (no wall clock, no quantile estimation).
SNAPSHOT = {
    "counters": {"serving.admitted": 3},
    "gauges": {"serving.queue_depth": 2.5},
    "histograms": {
        "stage.seconds": {
            "bounds": [0.1, 1.0],
            "bucket_counts": [2, 1, 1],
            "count": 4,
            "sum": 3.2,
        }
    },
    "windows": {
        "counters": {
            "serving.shed": {
                "window_seconds": 60.0,
                "rate": 0.05,
                "total": 3.0,
            }
        },
        "histograms": {
            "serving.request.seconds": {
                "window_seconds": 60.0,
                "p50": 0.2,
                "p90": 0.4,
                "p99": 0.5,
                "sum": 1.1,
                "count": 5,
            }
        },
    },
}

GOLDEN = [
    "# HELP serving_admitted_total Cumulative count of serving.admitted.",
    "# TYPE serving_admitted_total counter",
    "serving_admitted_total 3",
    "# HELP serving_queue_depth Current value of serving.queue_depth.",
    "# TYPE serving_queue_depth gauge",
    "serving_queue_depth 2.5",
    "# HELP stage_seconds Distribution of stage.seconds.",
    "# TYPE stage_seconds histogram",
    'stage_seconds_bucket{le="0.1"} 2',
    'stage_seconds_bucket{le="1.0"} 3',
    'stage_seconds_bucket{le="+Inf"} 4',
    "stage_seconds_sum 3.2",
    "stage_seconds_count 4",
    "# HELP serving_shed_rate Per-second rate of serving.shed over a "
    "60s window.",
    "# TYPE serving_shed_rate gauge",
    "serving_shed_rate 0.05",
    "# HELP serving_shed_window Events of serving.shed inside the window.",
    "# TYPE serving_shed_window gauge",
    "serving_shed_window 3",
    "# HELP serving_request_seconds_window Rolling distribution of "
    "serving.request.seconds over a 60s window.",
    "# TYPE serving_request_seconds_window summary",
    'serving_request_seconds_window{quantile="0.5"} 0.2',
    'serving_request_seconds_window{quantile="0.9"} 0.4',
    'serving_request_seconds_window{quantile="0.99"} 0.5',
    "serving_request_seconds_window_sum 1.1",
    "serving_request_seconds_window_count 5",
]


class TestRender:
    def test_golden_line_by_line(self):
        rendered = render_prometheus(SNAPSHOT).splitlines()
        assert rendered == GOLDEN

    def test_golden_output_validates(self):
        assert validate_exposition(render_prometheus(SNAPSHOT)) == []

    def test_live_registry_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(7)
        registry.gauge("depth").set(1.5)
        registry.histogram("latency.seconds").observe(0.02)
        registry.windowed_counter("windowed.requests").inc()
        registry.windowed_histogram("windowed.latency").observe(0.3)
        text = render_prometheus(registry.snapshot())
        assert validate_exposition(text) == []
        assert "requests_total 7" in text
        assert 'latency_seconds_bucket{le="+Inf"} 1' in text
        assert 'windowed_latency_window{quantile="0.99"}' in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""
        assert validate_exposition("") == []

    def test_illegal_characters_sanitized(self):
        text = render_prometheus({"counters": {"a.b-c/d": 1}})
        assert "a_b_c_d_total 1" in text
        assert validate_exposition(text) == []


class TestValidator:
    def test_sample_without_type_is_flagged(self):
        problems = validate_exposition("lonely_metric 1\n")
        assert any("no preceding TYPE" in p for p in problems)

    def test_non_cumulative_buckets_flagged(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="1.0"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 1\n"
            "h_count 5\n"
        )
        problems = validate_exposition(text)
        assert any("non-cumulative" in p for p in problems)

    def test_unclosed_histogram_flagged(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            "h_sum 1\n"
            "h_count 5\n"
        )
        problems = validate_exposition(text)
        assert any('+Inf' in p for p in problems)

    def test_summary_without_quantile_flagged(self):
        text = "# TYPE s summary\ns 0.5\n"
        problems = validate_exposition(text)
        assert any("quantile" in p for p in problems)

    def test_non_numeric_value_flagged(self):
        text = "# TYPE c counter\nc_total banana\n"
        problems = validate_exposition(text)
        assert any("non-numeric" in p for p in problems)

    def test_malformed_labels_flagged(self):
        text = '# TYPE g gauge\ng{oops} 1\n'
        problems = validate_exposition(text)
        assert any("label" in p for p in problems)
