"""Unit and concurrency tests for :mod:`repro.obs.metrics`."""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.obs import (
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    get_metrics,
    set_metrics,
)


class TestCounterGauge:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.counter("c") is counter

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == pytest.approx(11.5)


class TestHistogram:
    def test_bucketing_and_aggregates(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(106.5)
        assert snap["min"] == 0.5
        assert snap["max"] == 100.0
        assert snap["bucket_counts"] == [1, 2, 1, 1]

    def test_nearest_rank_quantiles(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0, 8.0))
        # Ten samples: 9 in the <=1.0 bucket, one in the <=8.0 bucket.
        for _ in range(9):
            hist.observe(0.5)
        hist.observe(5.0)
        # p90 = rank ceil(0.9*10)=9 -> still the first bucket, not max.
        assert hist.quantile(0.9) <= 1.0
        assert hist.quantile(0.99) == 5.0  # clamped to observed max
        assert hist.quantile(0.5) <= 1.0

    def test_quantile_resolves_bucket_upper_bound(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(1.5)
        hist.observe(1.6)
        assert hist.quantile(0.5) == pytest.approx(1.6)  # min(bound, max)

    def test_empty_quantile_is_zero(self):
        assert Histogram("h").quantile(0.5) == 0.0

    def test_invalid_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))


class TestRegistrySnapshots:
    def test_snapshot_is_plain_and_picklable(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        registry.gauge("g").set(7)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap
        assert snap["counters"] == {"a": 3}
        assert snap["gauges"] == {"g": 7}
        assert snap["histograms"]["h"]["count"] == 1
        assert "p50" in snap["histograms"]["h"]
        assert "p90" in snap["histograms"]["h"]
        assert "p99" in snap["histograms"]["h"]

    def test_merge_adds_counters_and_buckets(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for registry, n in ((a, 2), (b, 5)):
            registry.counter("c").inc(n)
            registry.gauge("g").set(n)
            registry.histogram("h", buckets=(1.0, 2.0)).observe(n / 10)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["c"] == 7
        assert snap["gauges"]["g"] == 5  # max wins
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["min"] == pytest.approx(0.2)
        assert snap["histograms"]["h"]["max"] == pytest.approx(0.5)

    def test_merge_into_empty_registry_adopts_bounds(self):
        source = MetricsRegistry()
        source.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        target = MetricsRegistry()
        target.merge(source.snapshot())
        assert target.histogram("h").bounds == (1.0, 2.0)
        assert target.histogram("h").count == 1

    def test_merge_mismatched_bounds_raises(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b.snapshot())

    def test_drain_returns_delta_and_resets(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.histogram("h").observe(0.1)
        delta = registry.drain()
        assert delta["counters"]["c"] == 3
        assert registry.counter("c").value == 0
        assert registry.histogram("h").count == 0
        # A second drain reports only new activity.
        registry.counter("c").inc(1)
        assert registry.drain()["counters"]["c"] == 1


class TestNullRegistry:
    def test_default_registry_is_null(self):
        assert get_metrics() is NULL_METRICS
        assert not NULL_METRICS.enabled

    def test_null_metrics_are_shared_noops(self):
        counter = NULL_METRICS.counter("a")
        assert counter is NULL_METRICS.counter("b")
        assert counter is NULL_METRICS.gauge("g")
        assert counter is NULL_METRICS.histogram("h")
        counter.inc()
        counter.set(5)
        counter.observe(1.0)
        assert counter.value == 0
        assert NULL_METRICS.drain() == {}

    def test_set_metrics_swaps_and_restores(self):
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            assert previous is NULL_METRICS
            assert get_metrics() is registry
        finally:
            assert set_metrics(None) is registry
        assert get_metrics() is NULL_METRICS


class TestConcurrency:
    THREADS = 8
    OPS = 2000

    def test_registry_hammered_from_eight_threads(self):
        """Counters, gauges and histograms stay exact under contention,
        including metric creation racing observation."""
        registry = MetricsRegistry()
        barrier = threading.Barrier(self.THREADS)
        errors = []

        def work(worker: int) -> None:
            try:
                barrier.wait(timeout=10)
                for op in range(self.OPS):
                    registry.counter("shared.counter").inc()
                    registry.counter(f"worker.{worker}").inc(2)
                    registry.gauge("shared.gauge").set(worker)
                    registry.histogram(
                        "shared.hist", buckets=(0.25, 0.5, 1.0)
                    ).observe((op % 4) / 4)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(i,))
            for i in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        total = self.THREADS * self.OPS
        assert registry.counter("shared.counter").value == total
        for worker in range(self.THREADS):
            assert registry.counter(f"worker.{worker}").value == (
                2 * self.OPS
            )
        hist = registry.histogram("shared.hist")
        assert hist.count == total
        snap = hist.snapshot()
        assert sum(snap["bucket_counts"]) == total
        # Every op cycled 0, .25, .5, .75 evenly across the buckets.
        assert snap["bucket_counts"][:3] == [
            total // 2, total // 4, total // 4
        ]

    def test_concurrent_merges_are_atomic_per_metric(self):
        source = MetricsRegistry()
        source.counter("c").inc(1)
        source.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = source.snapshot()
        target = MetricsRegistry()
        threads = [
            threading.Thread(
                target=lambda: [target.merge(snap) for _ in range(50)]
            )
            for _ in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = 50 * self.THREADS
        assert target.counter("c").value == expected
        assert target.histogram("h").count == expected
