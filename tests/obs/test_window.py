"""Unit tests for the time-windowed metrics (:mod:`repro.obs.window`)."""

from __future__ import annotations

import threading

import pytest

from repro.obs import MetricsRegistry, WindowedCounter, WindowedHistogram


class FakeClock:
    """A settable clock the tests advance explicitly."""

    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestWindowedCounter:
    def test_counts_inside_the_window(self):
        clock = FakeClock()
        counter = WindowedCounter(
            "c", window_seconds=60.0, window_buckets=12, clock=clock
        )
        counter.inc()
        counter.inc(2)
        assert counter.total == 3
        assert counter.rate() == pytest.approx(3 / 60.0)

    def test_old_samples_age_out(self):
        clock = FakeClock()
        counter = WindowedCounter(
            "c", window_seconds=60.0, window_buckets=12, clock=clock
        )
        counter.inc(5)
        clock.advance(30.0)
        counter.inc(1)
        assert counter.total == 6
        # Move past the window relative to the first sample only.
        clock.advance(35.0)
        assert counter.total == 1
        clock.advance(60.0)
        assert counter.total == 0

    def test_snapshot_and_cross_process_merge(self):
        clock = FakeClock()
        ours = WindowedCounter("c", clock=clock)
        theirs = WindowedCounter("c", clock=clock)
        ours.inc(2)
        clock.advance(10.0)
        theirs.inc(3)
        ours.merge(theirs.snapshot())
        assert ours.total == 5
        # Merged samples age out on the same absolute schedule.
        clock.advance(55.0)
        assert ours.total == 3

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            WindowedCounter("c", window_seconds=0.0)
        with pytest.raises(ValueError):
            WindowedCounter("c", window_buckets=0)

    def test_thread_safety_loses_no_increments(self):
        counter = WindowedCounter("c", window_seconds=3600.0)

        def worker():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.total == 8000


class TestWindowedHistogram:
    def test_quantiles_cover_only_the_window(self):
        clock = FakeClock()
        hist = WindowedHistogram(
            "h",
            buckets=(0.1, 0.5, 1.0, 5.0),
            window_seconds=60.0,
            window_buckets=12,
            clock=clock,
        )
        # Plant a burst of slow samples, then let them age out.
        for _ in range(100):
            hist.observe(4.0)
        assert hist.quantile(0.99) == pytest.approx(4.0)
        clock.advance(61.0)
        for _ in range(100):
            hist.observe(0.05)
        # The p99 forgets the old slow burst entirely.
        assert hist.quantile(0.99) == pytest.approx(0.05)
        assert hist.count == 100

    def test_quantile_clamped_to_observed_max(self):
        hist = WindowedHistogram(
            "h", buckets=(1.0, 10.0), window_seconds=3600.0
        )
        hist.observe(2.0)
        # Nearest-rank would report the bucket bound (10.0); the
        # observed max is tighter.
        assert hist.quantile(0.99) == pytest.approx(2.0)

    def test_empty_window_is_zero(self):
        hist = WindowedHistogram("h", window_seconds=60.0)
        assert hist.quantile(0.5) == 0.0
        assert hist.count == 0
        assert hist.rate() == 0.0

    def test_snapshot_quantile_keys(self):
        clock = FakeClock()
        hist = WindowedHistogram(
            "h", buckets=(0.1, 1.0), window_seconds=60.0, clock=clock
        )
        for value in (0.05, 0.05, 0.05, 2.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["p50"] == pytest.approx(0.1)
        assert snap["p99"] == pytest.approx(2.0)
        assert snap["min"] == pytest.approx(0.05)
        assert snap["max"] == pytest.approx(2.0)

    def test_merge_requires_matching_bounds(self):
        ours = WindowedHistogram("h", buckets=(1.0, 2.0))
        theirs = WindowedHistogram("h", buckets=(1.0, 3.0))
        with pytest.raises(ValueError):
            ours.merge(theirs.snapshot())

    def test_merge_folds_counts(self):
        clock = FakeClock()
        ours = WindowedHistogram("h", buckets=(1.0,), clock=clock)
        theirs = WindowedHistogram("h", buckets=(1.0,), clock=clock)
        ours.observe(0.5)
        theirs.observe(0.5)
        theirs.observe(2.0)
        ours.merge(theirs.snapshot())
        assert ours.count == 3
        assert ours.quantile(1.0) == pytest.approx(2.0)

    def test_misordered_bounds_rejected(self):
        with pytest.raises(ValueError):
            WindowedHistogram("h", buckets=(2.0, 1.0))


class TestRegistryIntegration:
    def test_registry_accessors_and_snapshot(self):
        registry = MetricsRegistry()
        registry.windowed_counter("w.c").inc(4)
        registry.windowed_histogram("w.h").observe(0.25)
        snap = registry.snapshot()
        assert snap["windows"]["counters"]["w.c"]["total"] == 4
        assert snap["windows"]["histograms"]["w.h"]["count"] == 1
        # Accessors are idempotent per name.
        assert registry.windowed_counter("w.c").total == 4

    def test_registry_merge_recreates_windowed_metrics(self):
        parent = MetricsRegistry()
        child = MetricsRegistry()
        child.windowed_counter("w.c", window_seconds=30.0).inc(2)
        child.windowed_histogram("w.h").observe(1.5)
        parent.merge(child.snapshot())
        assert parent.windowed_counter("w.c").total == 2
        assert parent.windowed_counter("w.c").window_seconds == 30.0
        assert parent.windowed_histogram("w.h").count == 1

    def test_reset_clears_windows(self):
        registry = MetricsRegistry()
        registry.windowed_counter("w.c").inc()
        registry.reset()
        assert registry.windowed_counter("w.c").total == 0
