"""Unit tests for the SLO tracker (:mod:`repro.obs.slo`)."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, SloTracker


class FakeClock:
    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestAccounting:
    def test_good_and_bad_classification(self):
        tracker = SloTracker(slo_ms=100.0)
        assert tracker.record(50.0) is True
        assert tracker.record(100.0) is True  # at the SLO is good
        assert tracker.record(150.0) is False  # breach
        assert tracker.record(10.0, error=True) is False  # error is bad
        assert tracker.total == 4
        assert tracker.bad_total == 2
        assert tracker.compliance() == pytest.approx(0.5)

    def test_clean_ledger_defaults(self):
        tracker = SloTracker(slo_ms=100.0)
        assert tracker.compliance() == 1.0
        assert tracker.burn_rate() == 0.0
        assert tracker.budget_remaining() == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SloTracker(slo_ms=0.0)
        with pytest.raises(ValueError):
            SloTracker(slo_ms=100.0, objective=1.0)


class TestBurnRate:
    def test_burn_rate_of_one_is_sustainable_spend(self):
        # 1 bad in 100 at a 99% objective: exactly the budget rate.
        tracker = SloTracker(slo_ms=100.0, objective=0.99)
        for _ in range(99):
            tracker.record(10.0)
        tracker.record(500.0)
        assert tracker.burn_rate() == pytest.approx(1.0)

    def test_burn_rate_uses_only_the_window(self):
        clock = FakeClock()
        tracker = SloTracker(
            slo_ms=100.0,
            objective=0.99,
            window_seconds=60.0,
            window_buckets=12,
            clock=clock,
        )
        # An all-bad burst, then a healthy hour later.
        for _ in range(10):
            tracker.record(500.0)
        assert tracker.burn_rate() == pytest.approx(1.0 / 0.01)
        clock.advance(3600.0)
        for _ in range(10):
            tracker.record(10.0)
        assert tracker.burn_rate() == 0.0
        # The cumulative ledger still remembers the burst.
        assert tracker.compliance() == pytest.approx(0.5)

    def test_budget_remaining_floors_at_zero(self):
        tracker = SloTracker(slo_ms=100.0, objective=0.99)
        tracker.record(10.0)
        for _ in range(9):
            tracker.record(500.0)
        assert tracker.budget_remaining() == 0.0


class TestExport:
    def test_snapshot_keys(self):
        tracker = SloTracker(slo_ms=250.0, objective=0.95)
        tracker.record(100.0)
        tracker.record(300.0)
        snap = tracker.snapshot()
        assert snap["slo_ms"] == 250.0
        assert snap["objective"] == 0.95
        assert snap["good_total"] == 1
        assert snap["bad_total"] == 1
        assert snap["window_good"] == 1
        assert snap["window_bad"] == 1
        assert 0.0 <= snap["compliance"] <= 1.0
        assert snap["burn_rate"] > 1.0

    def test_publish_sets_gauges(self):
        registry = MetricsRegistry()
        tracker = SloTracker(slo_ms=100.0, objective=0.99)
        tracker.record(10.0)
        tracker.record(500.0)
        tracker.publish(registry)
        gauges = registry.snapshot()["gauges"]
        assert gauges["serving.slo.objective"] == pytest.approx(0.99)
        assert gauges["serving.slo.compliance"] == pytest.approx(0.5)
        assert gauges["serving.slo.burn_rate"] == pytest.approx(50.0)
        assert gauges["serving.slo.window_bad"] == 1
