"""Tests for within-document name coreference."""

import pytest

from repro.ner.coref import (
    CoreferenceChains,
    NameCoreferenceResolver,
    coreference_candidate_restriction,
    is_short_form_of,
)
from repro.types import Document, Mention


def _doc(tokens, surfaces):
    mentions = tuple(
        Mention(surface=surface, start=start, end=end)
        for surface, start, end in surfaces
    )
    return Document(doc_id="c", tokens=tuple(tokens), mentions=mentions)


class TestShortForm:
    def test_suffix(self):
        assert is_short_form_of("Page", "Jimmy Page")

    def test_prefix(self):
        assert is_short_form_of("Kashmir", "Kashmir Region")

    def test_not_infix(self):
        assert not is_short_form_of("von", "Johann von Neumann Institute")

    def test_equal_is_not_short_form(self):
        assert not is_short_form_of("Page", "Page")

    def test_longer_is_not_short_form(self):
        assert not is_short_form_of("Jimmy Page", "Page")

    def test_case_rules_applied(self):
        # Long-name matching is case-normalized like the dictionary.
        assert is_short_form_of("PAGE", "Jimmy Page")


class TestResolver:
    def test_short_mention_chains_to_long(self):
        doc = _doc(
            ["Jimmy", "Page", "played", ".", "Page", "smiled", "."],
            [("Jimmy Page", 0, 2), ("Page", 4, 5)],
        )
        chains = NameCoreferenceResolver().resolve(doc)
        short = doc.mentions[1]
        assert chains.chain_of(short) == doc.mentions[0]

    def test_cataphora_also_resolves(self):
        # The long form appearing later still anchors the short one.
        doc = _doc(
            ["Page", "played", ".", "Jimmy", "Page", "smiled", "."],
            [("Page", 0, 1), ("Jimmy Page", 3, 5)],
        )
        chains = NameCoreferenceResolver().resolve(doc)
        assert chains.chain_of(doc.mentions[0]) == doc.mentions[1]

    def test_unrelated_mentions_unchained(self):
        doc = _doc(
            ["Page", "met", "Plant", "."],
            [("Page", 0, 1), ("Plant", 2, 3)],
        )
        chains = NameCoreferenceResolver().resolve(doc)
        assert chains.chain_of(doc.mentions[0]) == doc.mentions[0]
        assert chains.chain_of(doc.mentions[1]) == doc.mentions[1]

    def test_longest_antecedent_preferred(self):
        doc = _doc(
            ["Jimmy", "Page", "Junior", "and", "Jimmy", "Page", "met",
             "Page", "."],
            [
                ("Jimmy Page Junior", 0, 3),
                ("Jimmy Page", 4, 6),
                ("Page", 7, 8),
            ],
        )
        chains = NameCoreferenceResolver().resolve(doc)
        assert chains.chain_of(doc.mentions[2]) == doc.mentions[0]

    def test_chains_grouping(self):
        doc = _doc(
            ["Jimmy", "Page", ".", "Page", ".", "Page", "."],
            [("Jimmy Page", 0, 2), ("Page", 3, 4), ("Page", 5, 6)],
        )
        chains = NameCoreferenceResolver().resolve(doc)
        grouped = chains.chains()
        assert len(grouped) == 1
        assert len(grouped[doc.mentions[0]]) == 2


class TestCandidateRestriction:
    def _kb_candidates(self, surface):
        table = {
            "Jimmy Page": ["Jimmy_Page"],
            "Page": ["Jimmy_Page", "Larry_Page", "Page_Arizona"],
        }
        return table.get(surface, [])

    def test_restriction_collapses_ambiguity(self):
        doc = _doc(
            ["Jimmy", "Page", "played", ".", "Page", "smiled", "."],
            [("Jimmy Page", 0, 2), ("Page", 4, 5)],
        )
        restricted = coreference_candidate_restriction(
            doc, self._kb_candidates
        )
        assert restricted == {1: ["Jimmy_Page"]}

    def test_no_restriction_without_chain(self):
        doc = _doc(["Page", "spoke", "."], [("Page", 0, 1)])
        assert (
            coreference_candidate_restriction(doc, self._kb_candidates)
            == {}
        )

    def test_head_without_candidates_ignored(self):
        doc = _doc(
            ["Edward", "Snowden", ".", "Snowden", "."],
            [("Edward Snowden", 0, 2), ("Snowden", 3, 4)],
        )

        def candidates(surface):
            return ["Snowden_WA"] if surface == "Snowden" else []

        assert coreference_candidate_restriction(doc, candidates) == {}


class TestPipelineIntegration:
    def test_coreference_improves_short_mention(self, kb, world):
        from repro.core.config import AidaConfig
        from repro.core.pipeline import AidaDisambiguator

        # Find a person with an ambiguous family name.
        target = None
        for eid in world.in_kb_ids():
            entity = world.entity(eid)
            if "person" not in {
                kb.coarse_class(eid)
            }:
                continue
            family = (
                entity.names.short_forms[0]
                if entity.names.short_forms
                else None
            )
            if (
                family
                and len(kb.candidates(family)) >= 2
                and kb.candidates(entity.names.canonical) == [eid]
            ):
                target = entity
                break
        if target is None:
            pytest.skip("no ambiguous family name in test world")
        full = target.names.canonical
        family = target.names.short_forms[0]
        tokens = tuple(full.split()) + ("spoke", ".") + (family, "left", ".")
        doc = Document(
            doc_id="coref-int",
            tokens=tokens,
            mentions=(
                Mention(surface=full, start=0, end=len(full.split())),
                Mention(
                    surface=family,
                    start=len(full.split()) + 2,
                    end=len(full.split()) + 3,
                ),
            ),
        )
        config = AidaConfig.sim_only()
        config.use_name_coreference = True
        aida = AidaDisambiguator(kb, config=config)
        result = aida.disambiguate(doc)
        # Both mentions resolve to the same entity thanks to the chain.
        assert result.assignments[1].entity == target.entity_id
