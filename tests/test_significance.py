"""Tests for the significance-testing utilities."""

import pytest

from repro.eval.measures import DocumentOutcome, EvaluationResult
from repro.eval.significance import (
    document_accuracies,
    paired_bootstrap,
    paired_t_test,
)


class TestPairedTTest:
    def test_clear_difference_significant(self):
        a = [0.9, 0.85, 0.92, 0.88, 0.95, 0.91, 0.89, 0.93]
        b = [0.5, 0.55, 0.48, 0.52, 0.51, 0.49, 0.53, 0.50]
        result = paired_t_test(a, b)
        assert result.significant(0.01)
        assert result.mean_difference > 0.3

    def test_identical_scores_not_significant(self):
        a = [0.8, 0.7, 0.9, 0.6]
        result = paired_t_test(a, list(a))
        assert result.p_value == 1.0
        assert not result.significant()

    def test_noise_not_significant(self):
        a = [0.80, 0.81, 0.79, 0.80, 0.81, 0.79]
        b = [0.81, 0.80, 0.80, 0.79, 0.80, 0.81]
        result = paired_t_test(a, b)
        assert not result.significant(0.05)

    def test_symmetry(self):
        a = [0.9, 0.8, 0.85, 0.95]
        b = [0.6, 0.7, 0.65, 0.55]
        forward = paired_t_test(a, b)
        backward = paired_t_test(b, a)
        assert forward.p_value == pytest.approx(backward.p_value)
        assert forward.statistic == pytest.approx(-backward.statistic)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            paired_t_test([1.0], [1.0, 2.0])

    def test_too_few_pairs_rejected(self):
        with pytest.raises(ValueError):
            paired_t_test([1.0], [0.5])

    def test_p_value_bounded(self):
        a = [0.5, 0.6, 0.55]
        b = [0.52, 0.58, 0.56]
        result = paired_t_test(a, b)
        assert 0.0 <= result.p_value <= 1.0


class TestPairedBootstrap:
    def test_clear_difference(self):
        a = [0.9] * 10
        b = [0.5] * 10
        result = paired_bootstrap(a, b, iterations=200, seed=1)
        assert result.p_value < 0.05

    def test_no_difference(self):
        a = [0.8] * 10
        result = paired_bootstrap(a, list(a), iterations=200, seed=1)
        assert result.p_value == 1.0

    def test_deterministic(self):
        a = [0.9, 0.7, 0.8, 0.95, 0.6]
        b = [0.7, 0.75, 0.7, 0.8, 0.65]
        first = paired_bootstrap(a, b, iterations=300, seed=9)
        second = paired_bootstrap(a, b, iterations=300, seed=9)
        assert first.p_value == second.p_value


class TestDocumentAccuracies:
    def test_extraction(self):
        evaluation = EvaluationResult(
            outcomes=[
                DocumentOutcome(
                    doc_id="a",
                    pairs=[("E", "E", None), ("F", "X", None)],
                ),
                DocumentOutcome(doc_id="empty", pairs=[]),
                DocumentOutcome(doc_id="b", pairs=[("E", "E", None)]),
            ]
        )
        assert document_accuracies(evaluation) == [0.5, 1.0]
