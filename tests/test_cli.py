"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.kb.io import load_knowledge_base


@pytest.fixture(scope="module")
def kb_dir(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("cli") / "kb")
    exit_code = main(
        ["generate-kb", "--out", directory, "--seed", "7",
         "--clusters", "2"]
    )
    assert exit_code == 0
    return directory


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_variant_choices(self):
        args = build_parser().parse_args(
            ["disambiguate", "--kb", "x", "--text", "y",
             "--variant", "sim"]
        )
        assert args.variant == "sim"


class TestGenerateKb:
    def test_kb_loadable(self, kb_dir):
        kb = load_knowledge_base(kb_dir)
        assert len(kb) > 0


class TestDisambiguate:
    def test_known_name_resolved(self, kb_dir, capsys):
        kb = load_knowledge_base(kb_dir)
        entity = kb.entities()[0]
        text = f"{entity.canonical_name} did something ."
        exit_code = main(
            ["disambiguate", "--kb", kb_dir, "--text", text]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert entity.canonical_name in out

    def test_file_input(self, kb_dir, tmp_path, capsys):
        kb = load_knowledge_base(kb_dir)
        entity = kb.entities()[0]
        path = tmp_path / "input.txt"
        path.write_text(f"{entity.canonical_name} spoke .")
        exit_code = main(
            ["disambiguate", "--kb", kb_dir, "--file", str(path)]
        )
        assert exit_code == 0
        assert entity.entity_id in capsys.readouterr().out

    def test_no_mentions(self, kb_dir, capsys):
        exit_code = main(
            ["disambiguate", "--kb", kb_dir, "--text",
             "nothing capitalized here ."]
        )
        assert exit_code == 0
        assert "no entity mentions" in capsys.readouterr().out

    def test_missing_text_and_file(self, kb_dir):
        with pytest.raises(SystemExit):
            main(["disambiguate", "--kb", kb_dir])


class TestRelatedness:
    def test_pair_scored(self, kb_dir, capsys):
        kb = load_knowledge_base(kb_dir)
        a, b = kb.entity_ids()[:2]
        exit_code = main(
            ["relatedness", "--kb", kb_dir, "--measure", "kore", a, b]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert a in out and b in out

    def test_unknown_entity_fails(self, kb_dir, capsys):
        exit_code = main(
            ["relatedness", "--kb", kb_dir, "Nobody", "Nothing"]
        )
        assert exit_code == 1

    def test_mw_measure(self, kb_dir, capsys):
        kb = load_knowledge_base(kb_dir)
        a, b = kb.entity_ids()[:2]
        exit_code = main(
            ["relatedness", "--kb", kb_dir, "--measure", "mw", a, b]
        )
        assert exit_code == 0


class TestClassify:
    def test_classifies_mentions(self, kb_dir, capsys):
        kb = load_knowledge_base(kb_dir)
        person = next(
            e for e in kb.entities() if kb.coarse_class(e.entity_id) == "person"
        )
        exit_code = main(
            ["classify", "--kb", kb_dir, "--text",
             f"{person.canonical_name} spoke ."]
        )
        assert exit_code == 0
        assert "person" in capsys.readouterr().out


class TestCorpusAndEvaluate:
    @pytest.fixture(scope="class")
    def corpus_file(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("cli-corpus") / "c.jsonl")
        exit_code = main(
            ["corpus", "--seed", "7", "--clusters", "2", "--kind",
             "conll", "--scale", "0.02", "--out", path]
        )
        assert exit_code == 0
        return path

    def test_corpus_loadable(self, corpus_file):
        from repro.datagen.io import load_corpus

        documents = load_corpus(corpus_file)
        assert documents
        assert all(doc.gold for doc in documents)

    def test_kore50_kind(self, tmp_path):
        path = str(tmp_path / "k50.jsonl")
        assert main(
            ["corpus", "--seed", "7", "--clusters", "2",
             "--kind", "kore50", "--out", path]
        ) == 0
        from repro.datagen.io import load_corpus

        assert len(load_corpus(path)) == 50

    def test_evaluate_against_matching_kb(
        self, tmp_path_factory, corpus_file, capsys
    ):
        kb_dir = str(tmp_path_factory.mktemp("cli-eval") / "kb")
        assert main(
            ["generate-kb", "--out", kb_dir, "--seed", "7",
             "--clusters", "2"]
        ) == 0
        assert main(
            ["evaluate", "--kb", kb_dir, "--corpus", corpus_file,
             "--variant", "r-prior-sim"]
        ) == 0
        out = capsys.readouterr().out
        assert "micro accuracy" in out
