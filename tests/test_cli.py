"""Tests for the command-line interface."""

import json
import logging

import pytest

from repro.cli import build_parser, main
from repro.kb.io import load_knowledge_base
from repro.obs import NULL_METRICS, NULL_TRACER, get_metrics, get_tracer
from repro.obs.logging import ROOT_LOGGER_NAME


@pytest.fixture(scope="module")
def kb_dir(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("cli") / "kb")
    exit_code = main(
        ["generate-kb", "--out", directory, "--seed", "7",
         "--clusters", "2"]
    )
    assert exit_code == 0
    return directory


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_variant_choices(self):
        args = build_parser().parse_args(
            ["disambiguate", "--kb", "x", "--text", "y",
             "--variant", "sim"]
        )
        assert args.variant == "sim"


class TestGenerateKb:
    def test_kb_loadable(self, kb_dir):
        kb = load_knowledge_base(kb_dir)
        assert len(kb) > 0


class TestDisambiguate:
    def test_known_name_resolved(self, kb_dir, capsys):
        kb = load_knowledge_base(kb_dir)
        entity = kb.entities()[0]
        text = f"{entity.canonical_name} did something ."
        exit_code = main(
            ["disambiguate", "--kb", kb_dir, "--text", text]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert entity.canonical_name in out

    def test_file_input(self, kb_dir, tmp_path, capsys):
        kb = load_knowledge_base(kb_dir)
        entity = kb.entities()[0]
        path = tmp_path / "input.txt"
        path.write_text(f"{entity.canonical_name} spoke .")
        exit_code = main(
            ["disambiguate", "--kb", kb_dir, "--file", str(path)]
        )
        assert exit_code == 0
        assert entity.entity_id in capsys.readouterr().out

    def test_no_mentions(self, kb_dir, capsys):
        exit_code = main(
            ["disambiguate", "--kb", kb_dir, "--text",
             "nothing capitalized here ."]
        )
        assert exit_code == 0
        assert "no entity mentions" in capsys.readouterr().out

    def test_missing_text_and_file(self, kb_dir):
        with pytest.raises(SystemExit):
            main(["disambiguate", "--kb", kb_dir])


class TestRelatedness:
    def test_pair_scored(self, kb_dir, capsys):
        kb = load_knowledge_base(kb_dir)
        a, b = kb.entity_ids()[:2]
        exit_code = main(
            ["relatedness", "--kb", kb_dir, "--measure", "kore", a, b]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert a in out and b in out

    def test_unknown_entity_fails(self, kb_dir, capsys):
        exit_code = main(
            ["relatedness", "--kb", kb_dir, "Nobody", "Nothing"]
        )
        assert exit_code == 1

    def test_mw_measure(self, kb_dir, capsys):
        kb = load_knowledge_base(kb_dir)
        a, b = kb.entity_ids()[:2]
        exit_code = main(
            ["relatedness", "--kb", kb_dir, "--measure", "mw", a, b]
        )
        assert exit_code == 0


class TestClassify:
    def test_classifies_mentions(self, kb_dir, capsys):
        kb = load_knowledge_base(kb_dir)
        person = next(
            e for e in kb.entities() if kb.coarse_class(e.entity_id) == "person"
        )
        exit_code = main(
            ["classify", "--kb", kb_dir, "--text",
             f"{person.canonical_name} spoke ."]
        )
        assert exit_code == 0
        assert "person" in capsys.readouterr().out


class TestObservabilityFlags:
    @pytest.fixture(autouse=True)
    def restore_logging(self):
        root = logging.getLogger(ROOT_LOGGER_NAME)
        state = (root.level, list(root.handlers), root.propagate)
        yield
        root.level, root.propagate = state[0], state[2]
        root.handlers[:] = state[1]

    def _text(self, kb_dir):
        kb = load_knowledge_base(kb_dir)
        return f"{kb.entities()[0].canonical_name} did something ."

    def test_parser_accepts_obs_flags(self):
        args = build_parser().parse_args(
            ["evaluate", "--kb", "k", "--corpus", "c",
             "--trace-out", "t.json", "--metrics-out", "m.json",
             "--log-level", "debug", "--log-json"]
        )
        assert args.trace_out == "t.json"
        assert args.metrics_out == "m.json"
        assert args.log_level == "debug"
        assert args.log_json is True

    def test_trace_and_metrics_written(self, kb_dir, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        exit_code = main(
            ["disambiguate", "--kb", kb_dir, "--text",
             self._text(kb_dir), "--trace-out", str(trace),
             "--metrics-out", str(metrics)]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert str(trace) in out and str(metrics) in out
        payload = json.loads(trace.read_text())
        names = {e["name"] for e in payload["traceEvents"]}
        assert "document" in names and "solve" in names
        snapshot = json.loads(metrics.read_text())
        assert snapshot["counters"]["pipeline.documents"] == 1
        assert "pipeline.stage.solve.seconds" in snapshot["histograms"]
        # Globals restored: the next command pays the null path again.
        assert get_tracer() is NULL_TRACER
        assert get_metrics() is NULL_METRICS

    def test_jsonl_trace_suffix_switches_exporter(
        self, kb_dir, tmp_path
    ):
        trace = tmp_path / "spans.jsonl"
        assert main(
            ["disambiguate", "--kb", kb_dir, "--text",
             self._text(kb_dir), "--trace-out", str(trace)]
        ) == 0
        spans = [
            json.loads(line)
            for line in trace.read_text().splitlines()
        ]
        assert any(span["name"] == "document" for span in spans)

    def test_log_level_debug_emits_stage_events(
        self, kb_dir, capsys
    ):
        exit_code = main(
            ["disambiguate", "--kb", kb_dir, "--text",
             self._text(kb_dir), "--log-level", "debug", "--log-json"]
        )
        assert exit_code == 0
        err = capsys.readouterr().err
        events = [
            json.loads(line)["event"]
            for line in err.splitlines()
            if line.startswith("{")
        ]
        assert "pipeline.stage" in events
        assert "pipeline.document" in events


class TestCorpusAndEvaluate:
    @pytest.fixture(scope="class")
    def corpus_file(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("cli-corpus") / "c.jsonl")
        exit_code = main(
            ["corpus", "--seed", "7", "--clusters", "2", "--kind",
             "conll", "--scale", "0.02", "--out", path]
        )
        assert exit_code == 0
        return path

    def test_corpus_loadable(self, corpus_file):
        from repro.datagen.io import load_corpus

        documents = load_corpus(corpus_file)
        assert documents
        assert all(doc.gold for doc in documents)

    def test_kore50_kind(self, tmp_path):
        path = str(tmp_path / "k50.jsonl")
        assert main(
            ["corpus", "--seed", "7", "--clusters", "2",
             "--kind", "kore50", "--out", path]
        ) == 0
        from repro.datagen.io import load_corpus

        assert len(load_corpus(path)) == 50

    def test_evaluate_against_matching_kb(
        self, tmp_path_factory, corpus_file, capsys
    ):
        kb_dir = str(tmp_path_factory.mktemp("cli-eval") / "kb")
        assert main(
            ["generate-kb", "--out", kb_dir, "--seed", "7",
             "--clusters", "2"]
        ) == 0
        assert main(
            ["evaluate", "--kb", kb_dir, "--corpus", corpus_file,
             "--variant", "r-prior-sim"]
        ) == 0
        out = capsys.readouterr().out
        assert "micro accuracy" in out
