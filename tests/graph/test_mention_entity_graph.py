"""Tests for the mention-entity graph."""

import pytest

from repro.errors import GraphError
from repro.graph.mention_entity_graph import MentionEntityGraph
from repro.types import Mention


def _mentions(n):
    return [
        Mention(surface=f"m{i}", start=i * 2, end=i * 2 + 1)
        for i in range(n)
    ]


@pytest.fixture
def graph():
    g = MentionEntityGraph(_mentions(2))
    g.add_mention_entity_edge(0, "A", 0.8)
    g.add_mention_entity_edge(0, "B", 0.2)
    g.add_mention_entity_edge(1, "C", 0.5)
    g.add_mention_entity_edge(1, "D", 0.5)
    g.add_entity_entity_edge("A", "C", 0.9)
    g.add_entity_entity_edge("B", "D", 0.1)
    return g


class TestConstruction:
    def test_candidates(self, graph):
        assert graph.candidates_of(0) == ["A", "B"]

    def test_weighted_degree(self, graph):
        assert graph.weighted_degree("A") == pytest.approx(0.8 + 0.9)

    def test_coherence_edge_requires_candidates(self):
        g = MentionEntityGraph(_mentions(1))
        g.add_mention_entity_edge(0, "A", 1.0)
        with pytest.raises(GraphError):
            g.add_entity_entity_edge("A", "Z", 0.5)

    def test_self_coherence_edge_ignored(self, graph):
        graph.add_entity_entity_edge("A", "A", 1.0)
        assert graph.ee_weight("A", "A") == 0.0

    def test_unknown_mention_rejected(self, graph):
        with pytest.raises(GraphError):
            graph.add_mention_entity_edge(9, "A", 1.0)

    def test_edge_update_replaces_weight(self, graph):
        graph.add_mention_entity_edge(0, "A", 0.5)
        assert graph.me_weight(0, "A") == 0.5
        assert graph.weighted_degree("A") == pytest.approx(0.5 + 0.9)


class TestRemoval:
    def test_remove_updates_neighbors(self, graph):
        graph.remove_entity("B")
        assert graph.candidates_of(0) == ["A"]
        assert graph.weighted_degree("D") == pytest.approx(0.5)

    def test_taboo_protection(self, graph):
        graph.remove_entity("B")
        with pytest.raises(GraphError):
            graph.remove_entity("A")  # last candidate of mention 0

    def test_is_taboo(self, graph):
        assert not graph.is_taboo("A")
        graph.remove_entity("B")
        assert graph.is_taboo("A")

    def test_minimum_weighted_degree(self, graph):
        assert graph.minimum_weighted_degree() == pytest.approx(0.2 + 0.1)

    def test_snapshot_restore(self, graph):
        snap = graph.snapshot()
        graph.remove_entity("B")
        graph.restore(snap)
        assert graph.candidates_of(0) == ["A", "B"]
        assert graph.weighted_degree("D") == pytest.approx(0.5 + 0.1)

    def test_restrict_to_entities(self, graph):
        graph.restrict_to_entities(["A", "C"])
        assert graph.active_entities() == ["A", "C"]

    def test_restrict_keeps_taboo(self, graph):
        graph.remove_entity("B")
        # A is now taboo; restricting to others must keep it.
        graph.restrict_to_entities(["C", "D"])
        assert "A" in graph.active_entities()


class TestRescaling:
    def test_rescale_families_to_unit(self, graph):
        graph.rescale_and_balance(gamma=0.4)
        for index in (0, 1):
            for entity in graph.candidates_of(index):
                assert 0.0 <= graph.me_weight(index, entity) <= 0.6 + 1e-9

    def test_gamma_balances_coherence(self, graph):
        graph.rescale_and_balance(gamma=0.0)
        assert graph.ee_weight("A", "C") == 0.0

    def test_invalid_gamma(self, graph):
        with pytest.raises(GraphError):
            graph.rescale_and_balance(gamma=1.5)

    def test_degrees_consistent_after_rescale(self, graph):
        graph.rescale_and_balance(gamma=0.4)
        expected = graph.me_weight(0, "A") + graph.ee_weight("A", "C")
        assert graph.weighted_degree("A") == pytest.approx(expected)
