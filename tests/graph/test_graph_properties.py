"""Property-based tests for the dense-subgraph algorithm.

Invariants checked over randomly generated mention-entity graphs:

* every mention that has at least one candidate receives exactly one
  entity, and that entity is one of its candidates;
* the algorithm is deterministic;
* with a single dominant coherent pair, the pair survives.
"""

from hypothesis import given, settings, strategies as st

from repro.graph.dense_subgraph import (
    DenseSubgraphConfig,
    GreedyDenseSubgraph,
)
from repro.graph.mention_entity_graph import MentionEntityGraph
from repro.types import Mention


def _make_graph(me_edges, ee_edges):
    """Build a graph from raw edge descriptions.

    me_edges: list of lists (one per mention) of (entity label, weight);
    ee_edges: list of (i, j, weight) over the union of entity labels.
    """
    mentions = [
        Mention(surface=f"m{i}", start=i * 2, end=i * 2 + 1)
        for i in range(len(me_edges))
    ]
    graph = MentionEntityGraph(mentions)
    for index, candidates in enumerate(me_edges):
        for label, weight in candidates:
            graph.add_mention_entity_edge(index, label, weight)
    entities = sorted(graph.active_entities())
    for i, j, weight in ee_edges:
        a = entities[i % len(entities)]
        b = entities[j % len(entities)]
        if a != b:
            graph.add_entity_entity_edge(a, b, weight)
    graph.rescale_and_balance(gamma=0.4)
    return graph


_weight = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)
_candidates = st.lists(
    st.tuples(st.sampled_from([f"E{k}" for k in range(8)]), _weight),
    min_size=1,
    max_size=4,
    unique_by=lambda pair: pair[0],
)
_me_edges = st.lists(_candidates, min_size=1, max_size=4)
_ee_edges = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=7),
        _weight,
    ),
    max_size=8,
)


class TestSolverProperties:
    @given(_me_edges, _ee_edges)
    @settings(max_examples=60, deadline=None)
    def test_every_mention_assigned_a_candidate(self, me_edges, ee_edges):
        graph = _make_graph(me_edges, ee_edges)
        candidate_sets = {
            index: {label for label, _w in candidates}
            for index, candidates in enumerate(me_edges)
        }
        assignment = GreedyDenseSubgraph().solve(graph)
        assert set(assignment) == set(range(len(me_edges)))
        for index, entity in assignment.items():
            assert entity in candidate_sets[index]

    @given(_me_edges, _ee_edges)
    @settings(max_examples=30, deadline=None)
    def test_deterministic(self, me_edges, ee_edges):
        first = GreedyDenseSubgraph().solve(
            _make_graph(me_edges, ee_edges)
        )
        second = GreedyDenseSubgraph().solve(
            _make_graph(me_edges, ee_edges)
        )
        assert first == second

    @given(_me_edges, _ee_edges)
    @settings(max_examples=30, deadline=None)
    def test_local_search_also_assigns_everything(
        self, me_edges, ee_edges
    ):
        config = DenseSubgraphConfig(
            enumeration_limit=1, local_search_iterations=50, seed=3
        )
        graph = _make_graph(me_edges, ee_edges)
        assignment = GreedyDenseSubgraph(config).solve(graph)
        assert set(assignment) == set(range(len(me_edges)))


class TestGraphStateProperties:
    @given(_me_edges, _ee_edges)
    @settings(max_examples=40, deadline=None)
    def test_snapshot_restore_identity(self, me_edges, ee_edges):
        graph = _make_graph(me_edges, ee_edges)
        snapshot = graph.snapshot()
        degrees_before = {
            eid: graph.weighted_degree(eid)
            for eid in graph.active_entities()
        }
        # Remove everything removable, then restore.
        while True:
            removable = [
                eid
                for eid in graph.active_entities()
                if not graph.is_taboo(eid)
            ]
            if not removable:
                break
            graph.remove_entity(removable[0])
        graph.restore(snapshot)
        assert graph.snapshot() == snapshot
        for eid, degree in degrees_before.items():
            assert abs(graph.weighted_degree(eid) - degree) < 1e-9

    @given(_me_edges, _ee_edges)
    @settings(max_examples=40, deadline=None)
    def test_rescaled_weights_in_unit_interval(self, me_edges, ee_edges):
        graph = _make_graph(me_edges, ee_edges)
        for index in range(graph.mention_count):
            for entity in graph.candidates_of(index):
                assert -1e-9 <= graph.me_weight(index, entity) <= 1.0
        for a in graph.active_entities():
            for b in graph.ee_neighbors(a):
                assert -1e-9 <= graph.ee_weight(a, b) <= 1.0
