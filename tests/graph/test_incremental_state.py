"""Property tests for the graph's incremental bookkeeping and the
equivalence of the heap solver with the reference scan loop.

* after any sequence of ``remove_entity`` + ``rollback``/``restore``,
  every active entity's weighted degree equals a from-scratch
  recomputation over the public API;
* the O(1) taboo counters agree with the definition "last remaining
  candidate of some mention";
* the incremental heap main loop and the original full-rescan loop
  (``exact_reference=True``) produce identical assignments on seeded
  random graphs.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.dense_subgraph import (
    DenseSubgraphConfig,
    GreedyDenseSubgraph,
)
from repro.graph.synthetic import SyntheticGraphSpec, synthetic_graph


def _recomputed_degree(graph, entity_id):
    """Weighted degree recomputed from scratch via the public API."""
    degree = sum(
        graph.me_weight(index, entity_id)
        for index in graph.mentions_of(entity_id)
    )
    degree += sum(
        graph.ee_weight(entity_id, other)
        for other in graph.ee_neighbors(entity_id)
    )
    return degree


def _taboo_by_definition(graph, entity_id):
    """Taboo per Section 3.4.2: sole remaining candidate of a mention."""
    return any(
        len(graph.candidates_of(index)) <= 1
        for index in graph.mentions_of(entity_id)
    )


def _check_state(graph):
    for entity_id in graph.active_entities():
        assert graph.weighted_degree(entity_id) == pytest.approx(
            _recomputed_degree(graph, entity_id), abs=1e-9
        )
        assert graph.is_taboo(entity_id) == _taboo_by_definition(
            graph, entity_id
        )
    for index in range(graph.mention_count):
        assert graph.live_candidate_count(index) == len(
            graph.candidates_of(index)
        )


_spec = st.builds(
    SyntheticGraphSpec,
    mentions=st.integers(min_value=1, max_value=6),
    candidates_per_mention=st.integers(min_value=1, max_value=5),
    ee_neighbors=st.integers(min_value=0, max_value=6),
    shared_fraction=st.floats(min_value=0.0, max_value=0.5),
    seed=st.integers(min_value=0, max_value=10_000),
)


class TestIncrementalState:
    @given(_spec, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_degrees_and_taboo_after_removals_and_rollbacks(
        self, spec, op_seed
    ):
        graph = synthetic_graph(spec)
        rng = random.Random(op_seed)
        checkpoints = [graph.checkpoint()]
        for _step in range(30):
            action = rng.random()
            removable = [
                eid
                for eid in graph.active_entities()
                if not graph.is_taboo(eid)
            ]
            if action < 0.6 and removable:
                graph.remove_entity(rng.choice(removable))
            elif action < 0.8:
                checkpoints.append(graph.checkpoint())
            else:
                target = rng.choice(checkpoints)
                graph.rollback(target)
                checkpoints = [
                    mark for mark in checkpoints if mark <= target
                ] or [target]
            _check_state(graph)

    @given(_spec)
    @settings(max_examples=30, deadline=None)
    def test_restore_resets_counters(self, spec):
        graph = synthetic_graph(spec)
        snapshot = graph.snapshot()
        while True:
            removable = [
                eid
                for eid in graph.active_entities()
                if not graph.is_taboo(eid)
            ]
            if not removable:
                break
            graph.remove_entity(removable[0])
        graph.restore(snapshot)
        assert graph.snapshot() == snapshot
        assert graph.checkpoint() == 0
        _check_state(graph)

    @given(_spec, st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_rollback_to_base_is_identity(self, spec, op_seed):
        graph = synthetic_graph(spec)
        base = graph.checkpoint()
        before = {
            eid: graph.weighted_degree(eid)
            for eid in graph.active_entities()
        }
        rng = random.Random(op_seed)
        for _step in range(15):
            removable = [
                eid
                for eid in graph.active_entities()
                if not graph.is_taboo(eid)
            ]
            if not removable:
                break
            graph.remove_entity(rng.choice(removable))
        graph.rollback(base)
        assert set(graph.active_entities()) == set(before)
        for eid, degree in before.items():
            assert graph.weighted_degree(eid) == degree


class TestSolverEquivalence:
    @pytest.mark.parametrize("seed", range(20))
    def test_heap_loop_matches_reference_scan(self, seed):
        spec = SyntheticGraphSpec(
            mentions=4 + seed % 5,
            candidates_per_mention=2 + seed % 4,
            ee_neighbors=1 + seed % 5,
            shared_fraction=0.15,
            seed=seed,
        )
        fast = GreedyDenseSubgraph().solve(synthetic_graph(spec))
        reference = GreedyDenseSubgraph(
            DenseSubgraphConfig(exact_reference=True)
        ).solve(synthetic_graph(spec))
        assert fast == reference

    @pytest.mark.parametrize("seed", range(5))
    def test_equivalence_with_pruning_and_local_search(self, seed):
        spec = SyntheticGraphSpec(
            mentions=5,
            candidates_per_mention=6,
            ee_neighbors=4,
            shared_fraction=0.2,
            seed=100 + seed,
        )
        config = DenseSubgraphConfig(
            prune_factor=2, enumeration_limit=8, local_search_iterations=80
        )
        reference_config = DenseSubgraphConfig(
            prune_factor=2,
            enumeration_limit=8,
            local_search_iterations=80,
            exact_reference=True,
        )
        fast = GreedyDenseSubgraph(config).solve(synthetic_graph(spec))
        reference = GreedyDenseSubgraph(reference_config).solve(
            synthetic_graph(spec)
        )
        assert fast == reference

    def test_stats_populated(self):
        spec = SyntheticGraphSpec(mentions=5, candidates_per_mention=4)
        solver = GreedyDenseSubgraph()
        solver.solve(synthetic_graph(spec))
        stats = solver.last_stats
        assert stats.initial_entities > 0
        assert stats.best_entities > 0
        assert stats.iterations > 0
        assert stats.heap_pops >= stats.iterations
        assert stats.postprocess in {"enumerate", "local_search"}
