"""Tests for shortest paths and the greedy dense-subgraph algorithm."""

import pytest

from repro.errors import GraphError
from repro.graph.dense_subgraph import (
    DenseSubgraphConfig,
    GreedyDenseSubgraph,
)
from repro.graph.mention_entity_graph import MentionEntityGraph
from repro.graph.shortest_paths import (
    distances_from_mention,
    entity_mention_distances,
)
from repro.types import Mention


def _mentions(n):
    return [
        Mention(surface=f"m{i}", start=i * 2, end=i * 2 + 1)
        for i in range(n)
    ]


def _coherent_graph():
    """Two mentions; entities A+C form a coherent pair, B has the higher
    local weight for mention 0 but no coherence."""
    g = MentionEntityGraph(_mentions(2))
    g.add_mention_entity_edge(0, "A", 0.4)
    g.add_mention_entity_edge(0, "B", 0.6)
    g.add_mention_entity_edge(1, "C", 0.5)
    g.add_mention_entity_edge(1, "D", 0.5)
    g.add_entity_entity_edge("A", "C", 0.9)
    return g


class TestShortestPaths:
    def test_direct_edge_distance(self):
        g = _coherent_graph()
        dist = distances_from_mention(g, 0)
        assert dist["A"] == pytest.approx(0.6)  # 1 - 0.4
        assert dist["B"] == pytest.approx(0.4)

    def test_path_through_coherence_edge(self):
        g = _coherent_graph()
        dist = distances_from_mention(g, 0)
        # C reachable via A (0.6) + coherence edge (0.1) = 0.7, or via
        # mention 1; from mention 0 the A path is shortest.
        assert dist["C"] == pytest.approx(0.7)

    def test_entity_mention_distances_sums_squares(self):
        g = _coherent_graph()
        totals = entity_mention_distances(g)
        assert set(totals) == {"A", "B", "C", "D"}
        assert all(value >= 0.0 for value in totals.values())

    def test_coherent_entities_are_closer(self):
        g = _coherent_graph()
        totals = entity_mention_distances(g)
        # A is strongly connected to both mentions (via C): closer than B.
        assert totals["A"] < totals["B"]


class TestConfig:
    def test_invalid_prune_factor(self):
        with pytest.raises(GraphError):
            DenseSubgraphConfig(prune_factor=0)

    def test_invalid_enumeration_limit(self):
        with pytest.raises(GraphError):
            DenseSubgraphConfig(enumeration_limit=0)


class TestGreedyDenseSubgraph:
    def test_coherence_overrides_local_weight(self):
        solver = GreedyDenseSubgraph()
        assignment = solver.solve(_coherent_graph())
        assert assignment[0] == "A"
        assert assignment[1] == "C"

    def test_single_candidate_kept(self):
        g = MentionEntityGraph(_mentions(1))
        g.add_mention_entity_edge(0, "A", 0.1)
        assignment = GreedyDenseSubgraph().solve(g)
        assert assignment == {0: "A"}

    def test_empty_graph(self):
        g = MentionEntityGraph([])
        assert GreedyDenseSubgraph().solve(g) == {}

    def test_mention_without_candidates_absent(self):
        g = MentionEntityGraph(_mentions(2))
        g.add_mention_entity_edge(0, "A", 0.5)
        assignment = GreedyDenseSubgraph().solve(g)
        assert 1 not in assignment

    def test_one_entity_per_mention(self):
        g = _coherent_graph()
        assignment = GreedyDenseSubgraph().solve(g)
        assert set(assignment) == {0, 1}

    def test_pruning_keeps_result_valid(self):
        g = MentionEntityGraph(_mentions(2))
        # 12 candidates per mention; prune factor 1 keeps only ~2 entities.
        for index in range(2):
            for candidate in range(12):
                g.add_mention_entity_edge(
                    index, f"E{index}_{candidate}", 0.1 + 0.05 * candidate
                )
        config = DenseSubgraphConfig(prune_factor=1)
        assignment = GreedyDenseSubgraph(config).solve(g)
        assert set(assignment) == {0, 1}

    def test_local_search_path(self):
        # Force the local-search post-processing by a tiny enumeration
        # limit; the result must still assign every mention.
        g = _coherent_graph()
        config = DenseSubgraphConfig(
            enumeration_limit=1, local_search_iterations=200, seed=5
        )
        assignment = GreedyDenseSubgraph(config).solve(g)
        assert set(assignment) == {0, 1}

    def test_deterministic(self):
        a = GreedyDenseSubgraph().solve(_coherent_graph())
        b = GreedyDenseSubgraph().solve(_coherent_graph())
        assert a == b

    def test_shared_entity_across_mentions(self):
        # The same entity can serve two mentions (metonymy-style).
        g = MentionEntityGraph(_mentions(2))
        g.add_mention_entity_edge(0, "Gov", 0.5)
        g.add_mention_entity_edge(1, "Gov", 0.5)
        g.add_mention_entity_edge(1, "City", 0.4)
        assignment = GreedyDenseSubgraph().solve(g)
        assert assignment[0] == "Gov"
        assert assignment[1] in {"Gov", "City"}
