"""Tests for the POS tagger and the Appendix-A keyphrase chunker."""

import pytest

from repro.text.chunker import KeyphraseChunker
from repro.text.pos import PosTagger


@pytest.fixture(scope="module")
def tagger():
    return PosTagger()


@pytest.fixture(scope="module")
def chunker():
    return KeyphraseChunker()


class TestPosTagger:
    def test_proper_nouns_mid_sentence(self, tagger):
        tags = {t.token: t.tag for t in tagger.tag(
            ["the", "singer", "Bob", "Dylan", "played", "."]
        )}
        assert tags["Bob"] == "NNP"
        assert tags["Dylan"] == "NNP"

    def test_closed_classes(self, tagger):
        tags = [t.tag for t in tagger.tag(["the", "of", "and", "he"])]
        assert tags == ["DT", "IN", "CC", "PRP"]

    def test_verbs_from_lexicon(self, tagger):
        tags = {t.token: t.tag for t in tagger.tag(["he", "played", "it"])}
        assert tags["played"] == "VB"

    def test_numbers(self, tagger):
        assert tagger.tag(["1976"])[0].tag == "CD"

    def test_punctuation(self, tagger):
        assert tagger.tag(["."])[0].tag == "PUNCT"

    def test_common_noun_default(self, tagger):
        tags = {t.token: t.tag for t in tagger.tag(["a", "guitar"])}
        assert tags["guitar"] == "NN"

    def test_all_caps_sentence_initial_is_nnp(self, tagger):
        assert tagger.tag(["NASA", "launched"])[0].tag == "NNP"

    def test_adverb_suffix(self, tagger):
        tags = {t.token: t.tag for t in tagger.tag(["he", "ran", "quickly"])}
        assert tags["quickly"] == "RB"


class TestChunker:
    def test_proper_noun_run_extracted(self, chunker):
        phrases = chunker.extract(
            ["the", "singer", "Bob", "Dylan", "played", "."]
        )
        assert ("bob", "dylan") in phrases

    def test_nominal_compound_extracted(self, chunker):
        phrases = chunker.extract(
            ["the", "surveillance", "program", "was", "revealed", "."]
        )
        assert ("surveillance", "program") in phrases

    def test_single_common_noun_not_extracted(self, chunker):
        phrases = chunker.extract(["the", "guitar", "played", "."])
        assert ("guitar",) not in phrases

    def test_phrases_lower_cased(self, chunker):
        phrases = chunker.extract(["Interfax", "said", "."])
        assert ("interfax",) in phrases

    def test_long_run_clipped(self):
        chunker = KeyphraseChunker(max_phrase_len=2)
        phrases = chunker.extract(["Aaa", "Bbb", "Ccc", "said", "."])
        assert all(len(p) <= 2 for p in phrases)

    def test_invalid_max_len_rejected(self):
        with pytest.raises(ValueError):
            KeyphraseChunker(max_phrase_len=0)

    def test_no_duplicates(self, chunker):
        phrases = chunker.extract(["Bob", "Dylan", "met", "Bob", "Dylan"])
        assert len(phrases) == len(set(phrases))
