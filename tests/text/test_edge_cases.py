"""Edge cases for the tokenizer and the keyphrase chunker.

Degenerate inputs a corpus runner will eventually feed them: empty
documents, whitespace-only text, unicode punctuation, and keyphrase
candidates flush against the document boundaries.
"""

from __future__ import annotations

import pytest

from repro.text.chunker import KeyphraseChunker
from repro.text.pos import PosTagger, TaggedToken
from repro.text.tokenizer import tokenize


class TestTokenizerEdgeCases:
    def test_empty_document(self):
        assert tokenize("") == []

    @pytest.mark.parametrize(
        "text", [" ", "   ", "\t", "\n\n", " \t \n  \r "]
    )
    def test_whitespace_only(self, text):
        assert tokenize(text) == []

    def test_ascii_curly_quotes_kept_as_punctuation_tokens(self):
        tokens = tokenize("He said “Kashmir” loudly.")
        assert tokens == ["He", "said", "“", "Kashmir", "”", "loudly", "."]

    @pytest.mark.parametrize(
        "text, expected",
        [
            # Unicode punctuation outside the tokenizer's class is
            # dropped, never crashes, and never glues words together.
            ("Dylan—Desire", ["Dylan", "Desire"]),
            ("wait…", ["wait"]),
            ("«Kashmir»", ["Kashmir"]),
            ("naïve", ["na", "ve"]),
        ],
    )
    def test_unicode_punctuation_never_crashes(self, text, expected):
        tokens = tokenize(text)
        assert tokens == expected
        assert all(isinstance(token, str) for token in tokens)

    def test_punctuation_only_document(self):
        assert tokenize("… — «»") == []
        assert tokenize(".,;") == [".", ",", ";"]

    def test_mention_flush_at_document_boundaries(self):
        """A name as the very first/last token keeps exact offsets."""
        tokens = tokenize("Dylan recorded Desire")
        assert tokens[0] == "Dylan"
        assert tokens[-1] == "Desire"
        assert len(tokens) == 3

    def test_possessive_clitic_still_split(self):
        assert tokenize("Dylan's") == ["Dylan", "'s"]


class TestChunkerEdgeCases:
    @pytest.fixture(scope="class")
    def chunker(self):
        return KeyphraseChunker()

    def test_empty_token_list(self, chunker):
        assert chunker.extract([]) == []
        assert chunker.extract_spans([]) == []

    def test_whitespace_only_document_has_no_tokens_to_chunk(self, chunker):
        assert chunker.extract(tokenize("   \n\t ")) == []

    def test_single_proper_noun_at_both_boundaries(self, chunker):
        # One token that is the whole document: span [0, 1).
        spans = chunker.extract_spans([TaggedToken("Dylan", "NNP")])
        assert spans == [(0, 1)]

    def test_proper_noun_span_at_document_start(self, chunker):
        tagged = PosTagger().tag(["Bob", "Dylan", "played", "there"])
        spans = chunker.extract_spans(tagged)
        assert (0, 2) in spans

    def test_proper_noun_span_at_document_end(self, chunker):
        tagged = [
            TaggedToken("heard", "VB"),
            TaggedToken("Bob", "NNP"),
            TaggedToken("Dylan", "NNP"),
        ]
        spans = chunker.extract_spans(tagged)
        assert (1, 3) in spans

    def test_nominal_run_covering_whole_document(self, chunker):
        tagged = [
            TaggedToken("studio", "NN"),
            TaggedToken("album", "NN"),
        ]
        assert (0, 2) in chunker.extract_spans(tagged)

    def test_over_long_run_clipped_to_head_final_suffix(self):
        chunker = KeyphraseChunker(max_phrase_len=2)
        tagged = [TaggedToken(f"W{i}", "NNP") for i in range(5)]
        # Clipping keeps the suffix (head noun side) of the run.
        assert chunker.extract_spans(tagged) == [(3, 5)]

    def test_unicode_tokens_chunk_without_crashing(self, chunker):
        phrases = chunker.extract(tokenize("Bob Dylan’s Zürich concert"))
        assert all(
            isinstance(phrase, tuple) and phrase for phrase in phrases
        )

    def test_invalid_max_phrase_len_rejected(self):
        with pytest.raises(ValueError):
            KeyphraseChunker(max_phrase_len=0)
