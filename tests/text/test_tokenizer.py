"""Tests for the tokenizer."""

from repro.text.tokenizer import tokenize


class TestTokenize:
    def test_simple_sentence(self):
        assert tokenize("Dylan played guitar") == [
            "Dylan",
            "played",
            "guitar",
        ]

    def test_punctuation_separated(self):
        assert tokenize("He left.") == ["He", "left", "."]

    def test_possessive_clitic(self):
        assert tokenize("Dylan's record") == ["Dylan", "'s", "record"]

    def test_numbers(self):
        assert tokenize("in 1976 and 2.5 times") == [
            "in",
            "1976",
            "and",
            "2.5",
            "times",
        ]

    def test_hyphenated_word_kept_together(self):
        assert tokenize("state-of-the-art") == ["state-of-the-art"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_commas_and_parens(self):
        assert tokenize("(a, b)") == ["(", "a", ",", "b", ")"]
