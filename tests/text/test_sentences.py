"""Tests for sentence splitting."""

from repro.text.sentences import sentence_containing, split_sentences


class TestSplitSentences:
    def test_single_sentence(self):
        assert split_sentences(["a", "b", "."]) == [(0, 3)]

    def test_multiple_sentences(self):
        tokens = ["a", ".", "b", "c", "!", "d", "?"]
        assert split_sentences(tokens) == [(0, 2), (2, 5), (5, 7)]

    def test_trailing_fragment(self):
        assert split_sentences(["a", ".", "b"]) == [(0, 2), (2, 3)]

    def test_empty(self):
        assert split_sentences([]) == []

    def test_no_terminator(self):
        assert split_sentences(["a", "b"]) == [(0, 2)]


class TestSentenceContaining:
    def test_lookup(self):
        spans = [(0, 3), (3, 6)]
        assert sentence_containing(spans, 1) == (0, 3)
        assert sentence_containing(spans, 4) == (3, 6)

    def test_out_of_range_returns_last(self):
        spans = [(0, 3)]
        assert sentence_containing(spans, 99) == (0, 3)

    def test_empty_spans(self):
        assert sentence_containing([], 0) == (0, 0)
