"""Differential: the pre-ranker at K >= pool size is a pure no-op.

Twenty seeded synthetic worlds (override the base seed with
``PRERANK_DIFF_BASE_SEED``): for each, the full pipeline runs with the
pre-ranker off and at a K far above any pool size, and every assignment
(mention, entity, score, per-candidate scores) must match exactly.  The
golden fixture corpus gets the same treatment against the session KB,
across the serial, thread-pool and process-pool executors, and served
from an mmap snapshot image carrying the embedding sections.
"""

from __future__ import annotations

import os

import pytest

from repro.core.batch import BatchConfig, BatchRunner
from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.datagen.documents import DocumentGenerator, DocumentSpec
from repro.datagen.io import load_corpus
from repro.datagen.wikipedia import build_world_kb
from repro.datagen.world import World, WorldConfig
from repro.embeddings import EmbeddingConfig, shared_model
from repro.eval.runner import run_disambiguator

BASE_SEED = int(os.environ.get("PRERANK_DIFF_BASE_SEED", "3301"))
WORLD_SEEDS = [BASE_SEED + i for i in range(20)]

DOCS_PER_WORLD = 2
MENTIONS_PER_DOC = 4

HUGE_K = 10 ** 6

GOLDEN_CORPUS = os.path.join(
    os.path.dirname(__file__), "fixtures", "golden", "corpus.jsonl"
)

#: Small training setup: exactness does not depend on embedding quality.
FAST = EmbeddingConfig(dim=16, epochs=1)


def _comparable(result):
    return [
        (
            assignment.mention,
            assignment.entity,
            assignment.score,
            sorted(assignment.candidate_scores.items()),
        )
        for assignment in result.assignments
    ]


def _assert_identical(kb, documents):
    baseline = AidaDisambiguator(kb, config=AidaConfig.full())
    config = AidaConfig.full()
    config.prerank_topk = HUGE_K
    pruned = AidaDisambiguator(
        kb, config=config, embedding_model=shared_model(kb, FAST)
    )
    assert pruned.preranker is not None
    for document in documents:
        want = baseline.disambiguate(document)
        got = pruned.disambiguate(document)
        assert _comparable(got) == _comparable(want)
        # The stage ran — identity is not "the stage was skipped".
        assert "prerank" in got.stats.phase_seconds
        assert got.stats.counters["prerank_pruned"] == 0


@pytest.fixture(scope="module", params=WORLD_SEEDS)
def seeded_world(request):
    seed = request.param
    world = World.generate(WorldConfig(seed=seed, clusters_per_domain=2))
    kb, _wiki = build_world_kb(world, seed=seed + 94)
    generator = DocumentGenerator(world, seed=seed + 55)
    cluster_ids = sorted(world.clusters)
    documents = [
        generator.generate(
            DocumentSpec(
                doc_id=f"w{seed}-d{index}",
                cluster_ids=[cluster_ids[index % len(cluster_ids)]],
                num_mentions=MENTIONS_PER_DOC,
            )
        ).document
        for index in range(DOCS_PER_WORLD)
    ]
    return kb, documents


def test_world_huge_k_bit_identical(seeded_world):
    kb, documents = seeded_world
    _assert_identical(kb, documents)


def test_golden_huge_k_bit_identical(kb):
    documents = [item.document for item in load_corpus(GOLDEN_CORPUS)]
    _assert_identical(kb, documents)


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def golden_annotated():
    return load_corpus(GOLDEN_CORPUS)


@pytest.fixture(scope="module")
def serial_baseline(kb, golden_annotated):
    return run_disambiguator(
        AidaDisambiguator(kb, config=AidaConfig.full()),
        golden_annotated,
        kb=kb,
    )


def _pruned_config() -> AidaConfig:
    config = AidaConfig.full()
    config.prerank_topk = HUGE_K
    return config


def _assert_run_identical(serial_baseline, run):
    assert not run.failures
    for want, got in zip(serial_baseline.results, run.results):
        assert want.doc_id == got.doc_id
        assert _comparable(want) == _comparable(got)
    assert run.micro == serial_baseline.micro
    assert run.macro == serial_baseline.macro


def test_serial_executor_identical(kb, golden_annotated, serial_baseline):
    run = run_disambiguator(
        AidaDisambiguator(
            kb,
            config=_pruned_config(),
            embedding_model=shared_model(kb, FAST),
        ),
        golden_annotated,
        kb=kb,
    )
    _assert_run_identical(serial_baseline, run)


def test_thread_executor_identical(kb, golden_annotated, serial_baseline):
    run = run_disambiguator(
        AidaDisambiguator(
            kb,
            config=_pruned_config(),
            embedding_model=shared_model(kb, FAST),
        ),
        golden_annotated,
        kb=kb,
        workers=4,
    )
    _assert_run_identical(serial_baseline, run)


def _pruned_session_pipeline():
    """Module-level factory: picklable for the process-pool executor.

    Rebuilds the conftest world/KB (same seeds) and trains the embedding
    model inside each worker process — determinism must come from the
    seeds alone.
    """
    world = World.generate(WorldConfig(seed=7, clusters_per_domain=4))
    kb, _wiki = build_world_kb(world, seed=101)
    return AidaDisambiguator(
        kb,
        config=_pruned_config(),
        embedding_model=shared_model(kb, FAST),
    )


def test_process_executor_identical(kb, golden_annotated, serial_baseline):
    runner = BatchRunner(
        pipeline_factory=_pruned_session_pipeline,
        config=BatchConfig(workers=2, executor="process"),
    )
    run = run_disambiguator(
        None, golden_annotated, kb=kb, batch=runner
    )
    _assert_run_identical(serial_baseline, run)


# ----------------------------------------------------------------------
# Snapshot-served
# ----------------------------------------------------------------------
def test_snapshot_huge_k_bit_identical(
    kb, golden_annotated, serial_baseline, tmp_path
):
    from repro.embeddings import train_embeddings
    from repro.kb.snapshot import build_snapshot, load_snapshot

    path = str(tmp_path / "prerank.snap")
    build_snapshot(kb, path, embeddings=train_embeddings(kb, FAST))
    snapshot = load_snapshot(path)
    try:
        pipeline = snapshot.pipeline(_pruned_config())
        assert pipeline.embeddings is snapshot.embeddings
        run = run_disambiguator(pipeline, golden_annotated, kb=kb)
        _assert_run_identical(serial_baseline, run)
    finally:
        snapshot.close()
