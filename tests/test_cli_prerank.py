"""CLI surface of the pre-ranker and the embeddings subcommands."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def kb_dir(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("cli-prerank") / "kb")
    assert (
        main(
            ["generate-kb", "--out", directory, "--seed", "7",
             "--clusters", "2"]
        )
        == 0
    )
    return directory


@pytest.fixture(scope="module")
def corpus_path(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("cli-prerank") / "corpus.jsonl")
    assert (
        main(
            ["corpus", "--out", path, "--seed", "7", "--clusters", "2",
             "--kind", "kore50"]
        )
        == 0
    )
    return path


class TestFlags:
    @pytest.mark.parametrize(
        "command, required",
        [
            ("disambiguate", ["--kb", "x", "--text", "y"]),
            ("evaluate", ["--kb", "x", "--corpus", "y"]),
            ("serve", ["--kb", "x"]),
        ],
    )
    def test_prerank_flags_parse(self, command, required):
        args = build_parser().parse_args(
            [command, *required, "--prerank-topk", "8",
             "--similarity-backend", "embedding"]
        )
        assert args.prerank_topk == 8
        assert args.similarity_backend == "embedding"

    def test_prerank_defaults_off(self):
        args = build_parser().parse_args(
            ["evaluate", "--kb", "x", "--corpus", "y"]
        )
        assert args.prerank_topk is None
        assert args.similarity_backend == "keyphrase"

    def test_bad_similarity_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["evaluate", "--kb", "x", "--corpus", "y",
                 "--similarity-backend", "nope"]
            )

    def test_bad_topk_is_clean_cli_error(self, kb_dir, corpus_path):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["evaluate", "--kb", kb_dir, "--corpus", corpus_path,
                 "--prerank-topk", "0"]
            )
        assert "prerank_topk" in str(excinfo.value)


class TestEvaluate:
    def test_huge_k_output_identical(self, kb_dir, corpus_path, capsys):
        assert (
            main(["evaluate", "--kb", kb_dir, "--corpus", corpus_path])
            == 0
        )
        baseline = capsys.readouterr().out
        assert (
            main(
                ["evaluate", "--kb", kb_dir, "--corpus", corpus_path,
                 "--prerank-topk", "1000000"]
            )
            == 0
        )
        assert capsys.readouterr().out == baseline

    def test_embedding_backends_run(self, kb_dir, corpus_path, capsys):
        assert (
            main(
                ["evaluate", "--kb", kb_dir, "--corpus", corpus_path,
                 "--prerank-topk", "4",
                 "--similarity-backend", "embedding",
                 "--relatedness", "embedding"]
            )
            == 0
        )
        assert "micro accuracy" in capsys.readouterr().out


class TestEmbeddingsSubcommand:
    def test_train_and_inspect(self, kb_dir, tmp_path, capsys):
        out = str(tmp_path / "model")
        assert (
            main(
                ["embeddings", "train", "--kb", kb_dir, "--out", out,
                 "--dim", "16", "--epochs", "1"]
            )
            == 0
        )
        line = capsys.readouterr().out
        assert "d=16" in line
        assert (
            main(["embeddings", "inspect", out + ".npz"]) == 0
        )
        info = json.loads(capsys.readouterr().out)
        assert info["dim"] == 16
        assert info["meta"]["config"]["seed"] == 13
        assert set(info["fingerprint"]) == {
            "word_vectors", "entity_vectors",
        }

    def test_train_deterministic_across_runs(
        self, kb_dir, tmp_path, capsys
    ):
        fingerprints = []
        for name in ("a", "b"):
            out = str(tmp_path / name)
            assert (
                main(
                    ["embeddings", "train", "--kb", kb_dir, "--out", out,
                     "--dim", "16", "--epochs", "1"]
                )
                == 0
            )
            capsys.readouterr()
            assert main(["embeddings", "inspect", out + ".npz"]) == 0
            fingerprints.append(
                json.loads(capsys.readouterr().out)["fingerprint"]
            )
        assert fingerprints[0] == fingerprints[1]

    def test_inspect_missing_file_fails_cleanly(self, capsys, tmp_path):
        assert (
            main(["embeddings", "inspect", str(tmp_path / "nope.npz")])
            == 1
        )
        assert "error:" in capsys.readouterr().err

    def test_bad_config_is_clean_cli_error(self, kb_dir, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["embeddings", "train", "--kb", kb_dir,
                 "--out", str(tmp_path / "m"), "--dim", "0"]
            )
        assert "dim" in str(excinfo.value)


class TestSnapshotEmbeddings:
    def test_build_embed_and_serve(
        self, kb_dir, corpus_path, tmp_path, capsys
    ):
        snap_path = str(tmp_path / "kb.snap")
        assert (
            main(
                ["snapshot", "build", "--kb", kb_dir, "--out", snap_path,
                 "--embeddings", "--embedding-dim", "16"]
            )
            == 0
        )
        assert "embeddings: d=16" in capsys.readouterr().out
        assert (
            main(
                ["evaluate", "--snapshot", snap_path,
                 "--corpus", corpus_path, "--prerank-topk", "4"]
            )
            == 0
        )
        assert "micro accuracy" in capsys.readouterr().out

    def test_build_without_embeddings_reports_none(
        self, kb_dir, tmp_path, capsys
    ):
        snap_path = str(tmp_path / "plain.snap")
        assert (
            main(["snapshot", "build", "--kb", kb_dir,
                  "--out", snap_path])
            == 0
        )
        assert "embeddings: none" in capsys.readouterr().out


class TestRelatednessMeasure:
    def test_embedding_measure_scores_pairs(self, kb_dir, capsys):
        from repro.kb.io import load_knowledge_base

        entities = sorted(load_knowledge_base(kb_dir).entity_ids())[:3]
        assert (
            main(
                ["relatedness", "--kb", kb_dir, "--measure", "embedding",
                 *entities]
            )
            == 0
        )
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3  # all pairs of three entities
        for line in lines:
            value = float(line.split()[-1])
            assert 0.0 <= value <= 1.0
