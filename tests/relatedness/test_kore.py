"""Tests for KORE, the cosine baselines, and the LSH acceleration."""

import pytest

from repro.kb.keyphrases import KeyphraseStore
from repro.relatedness.keyterm_cosine import (
    KeyphraseCosineRelatedness,
    KeywordCosineRelatedness,
    cosine,
)
from repro.relatedness.kore import KoreRelatedness, phrase_overlap
from repro.relatedness.lsh import KoreLshRelatedness, LshSettings
from repro.weights.model import WeightModel


@pytest.fixture
def setup():
    store = KeyphraseStore()
    # Nick Cave and his song share phrases partially; the chorus shares
    # nothing with either.
    store.add_keyphrase("Nick_Cave", ("australian", "singer"))
    store.add_keyphrase("Nick_Cave", ("bad", "seeds"))
    store.add_keyphrase("Nick_Cave", ("eerie", "cello"))
    store.add_keyphrase("Hallelujah_Cave", ("australian", "male", "singer"))
    store.add_keyphrase("Hallelujah_Cave", ("bad", "seeds"))
    store.add_keyphrase("Hallelujah_Chorus", ("baroque", "oratorio"))
    store.add_keyphrase("Hallelujah_Chorus", ("choir", "music"))
    for filler in range(6):
        store.add_keyphrase(f"F{filler}", (f"filler{filler}", "thing"))
    weights = WeightModel(store, links=None)
    return store, weights


class TestPhraseOverlap:
    def test_identical_phrases(self):
        gamma = {"a": 1.0, "b": 1.0}
        assert phrase_overlap(("a", "b"), ("a", "b"), gamma, gamma) == 1.0

    def test_partial_overlap(self):
        gamma = {"english": 1.0, "rock": 1.0, "guitarist": 1.0}
        po = phrase_overlap(
            ("english", "rock", "guitarist"),
            ("english", "guitarist"),
            gamma,
            gamma,
        )
        assert po == pytest.approx(2 / 3)

    def test_partial_beats_unrelated(self):
        gamma = {
            "english": 1.0, "rock": 1.0, "guitarist": 1.0,
            "german": 1.0, "president": 1.0,
        }
        close = phrase_overlap(
            ("english", "rock", "guitarist"), ("english", "guitarist"),
            gamma, gamma,
        )
        far = phrase_overlap(
            ("english", "rock", "guitarist"), ("german", "president"),
            gamma, gamma,
        )
        assert close > far == 0.0

    def test_asymmetric_weights_use_min_max(self):
        gamma_e = {"a": 1.0}
        gamma_f = {"a": 0.5}
        po = phrase_overlap(("a",), ("a",), gamma_e, gamma_f)
        assert po == pytest.approx(0.5 / 1.0)


class TestCosine:
    def test_identical_vectors(self):
        assert cosine({"a": 1.0}, {"a": 2.0}) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert cosine({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_empty_vector(self):
        assert cosine({}, {"a": 1.0}) == 0.0


class TestKore:
    def test_related_entities_score_positive(self, setup):
        store, weights = setup
        kore = KoreRelatedness(store, weights)
        assert kore.relatedness("Nick_Cave", "Hallelujah_Cave") > 0.0

    def test_unrelated_entities_near_zero(self, setup):
        store, weights = setup
        kore = KoreRelatedness(store, weights)
        related = kore.relatedness("Nick_Cave", "Hallelujah_Cave")
        unrelated = kore.relatedness("Nick_Cave", "Hallelujah_Chorus")
        assert related > unrelated
        assert unrelated == pytest.approx(0.0)

    def test_symmetry(self, setup):
        store, weights = setup
        kore = KoreRelatedness(store, weights)
        assert kore.relatedness(
            "Nick_Cave", "Hallelujah_Cave"
        ) == kore.relatedness("Hallelujah_Cave", "Nick_Cave")

    def test_bounded(self, setup):
        store, weights = setup
        kore = KoreRelatedness(store, weights)
        for a in store.entity_ids():
            for b in store.entity_ids():
                assert 0.0 <= kore.relatedness(a, b) <= 1.0

    def test_unsquared_ablation_not_lower(self, setup):
        # PO <= 1, so removing the squaring can only raise the measure.
        store, weights = setup
        squared = KoreRelatedness(store, weights, squared=True)
        plain = KoreRelatedness(store, weights, squared=False)
        pair = ("Nick_Cave", "Hallelujah_Cave")
        assert plain.relatedness(*pair) >= squared.relatedness(*pair)

    def test_entity_without_phrases(self, setup):
        store, weights = setup
        store.ensure_entity("Empty")
        kore = KoreRelatedness(store, weights)
        assert kore.relatedness("Empty", "Nick_Cave") == 0.0


class TestKoreCosineBaselines:
    def test_kpcs_related(self, setup):
        store, weights = setup
        kpcs = KeyphraseCosineRelatedness(store, weights)
        # KPCS needs exact phrase matches: the shared ("bad", "seeds").
        assert kpcs.relatedness("Nick_Cave", "Hallelujah_Cave") > 0.0

    def test_kwcs_partial_words(self, setup):
        store, weights = setup
        kwcs = KeywordCosineRelatedness(store, weights)
        assert kwcs.relatedness("Nick_Cave", "Hallelujah_Cave") > 0.0

    def test_both_zero_for_unrelated(self, setup):
        store, weights = setup
        kpcs = KeyphraseCosineRelatedness(store, weights)
        kwcs = KeywordCosineRelatedness(store, weights)
        assert kpcs.relatedness("Nick_Cave", "Hallelujah_Chorus") == 0.0
        assert kwcs.relatedness("Nick_Cave", "Hallelujah_Chorus") == 0.0


class TestKoreLsh:
    def test_related_pair_survives_lsh(self, setup):
        store, weights = setup
        kore = KoreRelatedness(store, weights)
        lsh = KoreLshRelatedness(
            store, kore, LshSettings.recall_geared(), name="G"
        )
        entities = store.entity_ids()
        lsh.prepare(entities)
        assert lsh.relatedness("Nick_Cave", "Hallelujah_Cave") > 0.0

    def test_pruned_pair_scores_zero_without_computation(self, setup):
        store, weights = setup
        kore = KoreRelatedness(store, weights)
        lsh = KoreLshRelatedness(store, kore, LshSettings.fast(), name="F")
        lsh.prepare(store.entity_ids())
        before = kore.comparisons
        value = lsh.relatedness("F0", "F3")
        # Disjoint filler entities should be pruned by stage two.
        if not lsh.should_compare("F0", "F3"):
            assert value == 0.0
            assert kore.comparisons == before

    def test_without_prepare_behaves_exactly(self, setup):
        store, weights = setup
        kore = KoreRelatedness(store, weights)
        lsh = KoreLshRelatedness(store, kore)
        exact = KoreRelatedness(store, weights)
        pair = ("Nick_Cave", "Hallelujah_Cave")
        assert lsh.relatedness(*pair) == exact.relatedness(*pair)

    def test_fast_prunes_at_least_as_much_as_recall(self, setup):
        store, weights = setup
        kore_g = KoreRelatedness(store, weights)
        kore_f = KoreRelatedness(store, weights)
        g = KoreLshRelatedness(store, kore_g, LshSettings.recall_geared())
        f = KoreLshRelatedness(store, kore_f, LshSettings.fast())
        entities = store.entity_ids()
        g.prepare(entities)
        f.prepare(entities)
        assert f.allowed_pair_count <= g.allowed_pair_count

    def test_prepare_resets_pair_cache(self, setup):
        store, weights = setup
        kore = KoreRelatedness(store, weights)
        lsh = KoreLshRelatedness(store, kore, LshSettings.recall_geared())
        lsh.prepare(["Nick_Cave", "Hallelujah_Chorus"])
        first = lsh.relatedness("Nick_Cave", "Hallelujah_Cave")
        lsh.prepare(["Nick_Cave", "Hallelujah_Cave"])
        second = lsh.relatedness("Nick_Cave", "Hallelujah_Cave")
        # After preparing with the pair present, the exact value is used.
        assert second >= first
