"""Tests for the link-based relatedness measures (MW, Jaccard)."""

import pytest

from repro.kb.links import LinkGraph
from repro.relatedness.jaccard import InlinkJaccardRelatedness
from repro.relatedness.milne_witten import MilneWittenRelatedness


@pytest.fixture
def links():
    g = LinkGraph()
    # A and B share two inlinks; C shares nothing; D is link-poor.
    for source in ("X", "Y"):
        g.add_link(source, "A")
        g.add_link(source, "B")
    g.add_link("Z", "A")
    g.add_link("W", "C")
    return g


class TestMilneWitten:
    def test_overlapping_entities_related(self, links):
        mw = MilneWittenRelatedness(links, collection_size=100)
        assert mw.relatedness("A", "B") > 0.0

    def test_disjoint_inlinks_zero(self, links):
        mw = MilneWittenRelatedness(links, collection_size=100)
        assert mw.relatedness("A", "C") == 0.0

    def test_no_inlinks_zero(self, links):
        mw = MilneWittenRelatedness(links, collection_size=100)
        assert mw.relatedness("A", "D") == 0.0

    def test_identity_is_one(self, links):
        mw = MilneWittenRelatedness(links, collection_size=100)
        assert mw.relatedness("A", "A") == 1.0

    def test_symmetry(self, links):
        mw = MilneWittenRelatedness(links, collection_size=100)
        assert mw.relatedness("A", "B") == mw.relatedness("B", "A")

    def test_identical_inlink_sets_high(self):
        g = LinkGraph()
        for source in ("X", "Y", "Z"):
            g.add_link(source, "A")
            g.add_link(source, "B")
        mw = MilneWittenRelatedness(g, collection_size=100)
        assert mw.relatedness("A", "B") == pytest.approx(1.0)

    def test_comparison_counter(self, links):
        mw = MilneWittenRelatedness(links, collection_size=100)
        mw.relatedness("A", "B")
        mw.relatedness("B", "A")  # cached, symmetric
        mw.relatedness("A", "C")
        assert mw.comparisons == 2

    def test_reset_stats(self, links):
        mw = MilneWittenRelatedness(links, collection_size=100)
        mw.relatedness("A", "B")
        mw.reset_stats()
        assert mw.comparisons == 0

    def test_invalid_collection_size(self, links):
        with pytest.raises(ValueError):
            MilneWittenRelatedness(links, collection_size=1)

    def test_values_in_unit_interval(self, links):
        mw = MilneWittenRelatedness(links, collection_size=100)
        for a in "ABCD":
            for b in "ABCD":
                assert 0.0 <= mw.relatedness(a, b) <= 1.0


class TestInlinkJaccard:
    def test_value(self, links):
        jac = InlinkJaccardRelatedness(links)
        # A: {X, Y, Z}; B: {X, Y} -> 2/3.
        assert jac.relatedness("A", "B") == pytest.approx(2 / 3)

    def test_disjoint_zero(self, links):
        jac = InlinkJaccardRelatedness(links)
        assert jac.relatedness("A", "C") == 0.0

    def test_rank_candidates(self, links):
        jac = InlinkJaccardRelatedness(links)
        ranked = jac.rank_candidates("A", ["C", "B", "D"])
        assert ranked[0] == "B"
