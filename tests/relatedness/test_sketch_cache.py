"""Regression: repeated serve/evaluate starts do not re-sketch the KB.

The latent pickle-wall asymmetry: every process-executor start used to
re-export the LSH sketch table (and every worker re-ran the KB-wide
stage-one pass) even when the on-disk KB had not changed.  The export is
now cached process-wide by (KB fingerprint, LSH geometry) and marked
``complete``, which short-circuits :meth:`KoreLshRelatedness.precompute`
— asserted here via the ``relatedness.lsh.precompute_ms`` /
``relatedness.lsh.prepare_ms`` metric counts, which must not grow on the
second start or worker spawn.
"""

from __future__ import annotations

import pytest

from repro.cli import (
    _cached_sketches_for,
    _lsh_measure,
    _PipelineFactory,
    _shared_sketches,
)
from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.kb.io import load_knowledge_base, save_knowledge_base
from repro.obs import MetricsRegistry, get_metrics, set_metrics
from repro.relatedness.lsh import (
    CompleteSketches,
    KoreLshRelatedness,
    LshSettings,
    clear_sketch_export_cache,
)


@pytest.fixture()
def kb_dir(kb, tmp_path):
    directory = str(tmp_path / "kb")
    save_knowledge_base(kb, directory)
    return directory


@pytest.fixture(autouse=True)
def metrics():
    clear_sketch_export_cache()
    previous = set_metrics(MetricsRegistry())
    yield get_metrics()
    set_metrics(previous)
    clear_sketch_export_cache()


def _config() -> AidaConfig:
    config = AidaConfig.full()
    config.relatedness_backend = "kore_lsh_g"
    return config


def _lsh_counts(metrics):
    snapshot = metrics.snapshot()
    histograms = snapshot["histograms"]
    return {
        "precompute": histograms.get(
            "relatedness.lsh.precompute_ms", {}
        ).get("count", 0),
        "prepare": histograms.get("relatedness.lsh.prepare_ms", {}).get(
            "count", 0
        ),
        "sketched": snapshot["counters"].get(
            "relatedness.lsh.sketched", 0
        ),
    }


def test_second_start_reuses_the_cached_export(kb_dir, metrics):
    """Start #1 sketches the KB and publishes the export; start #2 finds
    it by fingerprint and does zero stage-one work."""
    kb = load_knowledge_base(kb_dir)
    assert _cached_sketches_for(kb_dir, _config()) is None

    # -- first serve/evaluate start: pays the pass, caches the export.
    first = AidaDisambiguator(kb, config=_config())
    exported = _shared_sketches(kb_dir, first)
    assert isinstance(exported, CompleteSketches)
    after_first = _lsh_counts(metrics)
    assert after_first["precompute"] >= 1
    assert after_first["sketched"] > 0

    # -- second start: the cache hit feeds the parent pipeline...
    cached = _cached_sketches_for(kb_dir, _config())
    assert cached is exported
    kb2 = load_knowledge_base(kb_dir)
    second = AidaDisambiguator(
        kb2,
        relatedness=AidaDisambiguator.build_relatedness(
            kb2, _config(), sketches=cached
        ),
        config=_config(),
    )
    # ...and its export is the same object, not a re-export.
    assert _shared_sketches(kb_dir, second) is exported
    after_second = _lsh_counts(metrics)
    assert after_second["precompute"] == after_first["precompute"]
    assert after_second["sketched"] == after_first["sketched"]
    assert after_second["prepare"] == after_first["prepare"]


def test_worker_spawn_with_complete_sketches_skips_the_pass(
    kb_dir, metrics
):
    """A worker built from the cached export (what crosses the pickle
    wall) runs zero stage-one work — no precompute observation, no
    prepare, no sketches computed."""
    kb = load_knowledge_base(kb_dir)
    parent = AidaDisambiguator(kb, config=_config())
    shared = _shared_sketches(kb_dir, parent)
    baseline = _lsh_counts(metrics)

    factory = _PipelineFactory(
        kb_dir,
        "full",
        relatedness_backend="kore_lsh_g",
        sketches=shared,
    )
    worker = factory()  # what each pool process runs at spawn
    after_spawn = _lsh_counts(metrics)
    assert after_spawn == baseline, "worker spawn recomputed sketches"

    lsh = _lsh_measure(worker.relatedness)
    assert lsh is not None
    assert lsh.precompute() == 0  # complete table: guaranteed no-op

    # The worker still *works*: sketches resolve through the shared
    # table and stage two prepares normally (which may observe
    # prepare_ms — that is per-request work, not spawn work).
    entities = sorted(kb.entity_ids())[:8]
    lsh.prepare(entities)
    assert _lsh_counts(metrics)["sketched"] == baseline["sketched"]


def test_incomplete_sketches_still_precompute():
    """A plain (incomplete) dict of sketches keeps the old behaviour —
    the KB-wide pass runs and fills the gaps."""
    from repro.relatedness.kore import KoreRelatedness
    from repro.weights.model import WeightModel
    from repro.datagen.stress import StressConfig, generate_stress_kb

    kb = generate_stress_kb(StressConfig(entities=30))
    store = kb.keyphrases
    weights = WeightModel(store, kb.links)
    measure = KoreLshRelatedness(
        store,
        KoreRelatedness(store, weights),
        LshSettings.recall_geared(),
        sketches={},
    )
    assert not measure._sketches_complete
    assert measure.precompute() == 30
    assert len(measure.export_sketches()) == 30
