"""Thread-safety of the shared relatedness cache.

Hammers the same entity pairs from a thread pool and checks the two
guarantees batch mode relies on: counter consistency (every lookup is
accounted as exactly one hit or miss) and no recomputation after warm-up
when the cache is unbounded.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from itertools import combinations

from repro.graph.synthetic import (
    SyntheticLinkWorldSpec,
    synthetic_entity_ids,
    synthetic_link_world,
)
from repro.relatedness import CachingRelatedness, MilneWittenRelatedness
from repro.relatedness.base import EntityRelatedness

ENTITIES = 16
THREADS = 8
ROUNDS_PER_THREAD = 30


class SlowCountingMeasure(EntityRelatedness):
    """Deterministic measure with a compute counter and a thread gate.

    The gate widens the compute window so racy double-computation would
    actually be observed if the cache allowed it after warm-up.
    """

    name = "slow-counting"

    def __init__(self):
        super().__init__()
        self._count_lock = threading.Lock()
        self.computed = 0

    def _compute(self, a, b):
        with self._count_lock:
            self.computed += 1
        # Tiny deterministic "work" loop instead of sleeping: keeps the
        # test fast while still yielding the GIL between threads.
        total = sum(ord(ch) for ch in a + b)
        return (total % 97) / 96.0


def _hammer(cached, pairs, rounds):
    """Each call looks up every pair (both orders) ``rounds`` times."""
    checks = []
    for _ in range(rounds):
        for a, b in pairs:
            checks.append((a, b, cached.relatedness(a, b)))
            checks.append((b, a, cached.relatedness(b, a)))
    return checks


def test_no_recompute_after_warmup_unbounded():
    """With maxsize=None, a warmed cache never recomputes a pair."""
    inner = SlowCountingMeasure()
    cached = CachingRelatedness(inner)  # unbounded
    entities = [f"N{i}" for i in range(ENTITIES)]
    pairs = list(combinations(entities, 2))
    # Warm up serially: one computation per pair.
    expected = {pair: cached.relatedness(*pair) for pair in pairs}
    assert inner.computed == len(pairs)
    warm_stats = cached.cache_stats()
    assert warm_stats.misses == len(pairs)
    assert warm_stats.size == len(pairs)

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        futures = [
            pool.submit(_hammer, cached, pairs, ROUNDS_PER_THREAD)
            for _ in range(THREADS)
        ]
        results = [future.result() for future in futures]

    # No pair was recomputed after warm-up …
    assert inner.computed == len(pairs)
    # … every thread saw the warmed values, in both argument orders …
    for checks in results:
        for a, b, value in checks:
            key = (a, b) if (a, b) in expected else (b, a)
            assert value == expected[key]
    # … and the counters are consistent: every post-warm-up lookup is a
    # hit, hits + misses == total lookups, nothing was evicted.
    lookups_per_thread = len(pairs) * 2 * ROUNDS_PER_THREAD
    stats = cached.cache_stats()
    assert stats.hits == THREADS * lookups_per_thread
    assert stats.misses == len(pairs)
    assert stats.lookups == stats.hits + stats.misses
    assert stats.evictions == 0
    assert stats.size == len(pairs)


def test_cold_concurrent_hammer_counters_consistent():
    """Starting cold under contention, counters still add up and values
    agree with an independent plain measure."""
    spec = SyntheticLinkWorldSpec(entities=ENTITIES, seed=13)
    links = synthetic_link_world(spec)
    plain = MilneWittenRelatedness(links, ENTITIES)
    cached = CachingRelatedness(MilneWittenRelatedness(links, ENTITIES))
    entities = synthetic_entity_ids(ENTITIES)
    pairs = list(combinations(entities, 2))

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        futures = [
            pool.submit(_hammer, cached, pairs, 5) for _ in range(THREADS)
        ]
        results = [future.result() for future in futures]

    for checks in results:
        for a, b, value in checks:
            assert value == plain.relatedness(a, b)
    stats = cached.cache_stats()
    total_lookups = THREADS * len(pairs) * 2 * 5
    assert stats.hits + stats.misses == total_lookups
    # Every unique pair is cached exactly once; concurrent first requests
    # may each count a miss, but never more than one per thread.
    assert len(pairs) <= stats.misses <= len(pairs) * THREADS
    assert stats.size == len(pairs)
    assert stats.evictions == 0


def test_bounded_cache_under_contention_stays_within_capacity():
    """A bounded LRU never exceeds maxsize, whatever the interleaving."""
    maxsize = 10
    inner = SlowCountingMeasure()
    cached = CachingRelatedness(inner, maxsize=maxsize)
    entities = [f"B{i}" for i in range(ENTITIES)]
    pairs = list(combinations(entities, 2))

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        futures = [
            pool.submit(_hammer, cached, pairs, 3) for _ in range(THREADS)
        ]
        for future in futures:
            future.result()

    stats = cached.cache_stats()
    assert stats.size <= maxsize
    assert stats.evictions > 0
    assert stats.hits + stats.misses == THREADS * len(pairs) * 2 * 3
