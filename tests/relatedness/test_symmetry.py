"""Regression: pair canonicalization happens once, at the base class.

Every relatedness measure is a symmetric function, and the base class is
the single place where ``(b, a)`` is folded onto ``(a, b)`` — for the
cache key, the comparison counter, ``should_compare`` pruning, and the
``_compute`` call.  Milne–Witten and KORE must never see a non-canonical
pair or store a pair twice.
"""

from __future__ import annotations

import pytest

from repro.graph.synthetic import (
    SyntheticLinkWorldSpec,
    synthetic_entity_ids,
    synthetic_link_world,
)
from repro.relatedness import (
    InlinkJaccardRelatedness,
    KoreRelatedness,
    MilneWittenRelatedness,
)
from repro.relatedness.base import EntityRelatedness
from repro.weights.model import WeightModel

N = 20


class OrderSpy(EntityRelatedness):
    """Records the argument order of every ``_compute`` call."""

    name = "spy"

    def __init__(self):
        super().__init__()
        self.seen = []

    def _compute(self, a, b):
        self.seen.append((a, b))
        return 0.5


def test_canonical_pair_is_order_insensitive():
    assert EntityRelatedness.canonical_pair("A", "B") == ("A", "B")
    assert EntityRelatedness.canonical_pair("B", "A") == ("A", "B")
    assert EntityRelatedness.canonical_pair("X", "X") == ("X", "X")


def test_compute_only_ever_sees_canonical_pairs():
    spy = OrderSpy()
    spy.relatedness("Z", "A")
    spy.relatedness("A", "Z")
    spy.compute_pair("Z", "A")
    assert spy.seen == [("A", "Z"), ("A", "Z")]
    # One cached entry, one counted comparison for the cached path plus
    # one for the explicit uncached call.
    assert len(spy._cache) == 1
    assert spy.comparisons == 2


def test_reversed_lookup_hits_the_same_cache_entry():
    spy = OrderSpy()
    first = spy.relatedness("M", "K")
    second = spy.relatedness("K", "M")
    assert first == second
    assert spy.comparisons == 1
    assert len(spy._cache) == 1


@pytest.fixture(scope="module")
def links():
    return synthetic_link_world(
        SyntheticLinkWorldSpec(entities=N, seed=21)
    )


def test_milne_witten_symmetry_regression(links):
    measure = MilneWittenRelatedness(links, N)
    entities = synthetic_entity_ids(N)
    for i, a in enumerate(entities):
        for b in entities[i + 1 :]:
            forward = measure.relatedness(a, b)
            backward = measure.relatedness(b, a)
            assert forward == backward
    # Each unordered pair computed at most once despite both orders.
    assert measure.comparisons <= N * (N - 1) // 2


def test_jaccard_symmetry_regression(links):
    measure = InlinkJaccardRelatedness(links)
    entities = synthetic_entity_ids(N)
    for a in entities[:10]:
        for b in entities[:10]:
            assert measure.relatedness(a, b) == measure.relatedness(b, a)


def test_kore_symmetry_regression(kb):
    weights = WeightModel(kb.keyphrases, kb.links)
    measure = KoreRelatedness(kb.keyphrases, weights)
    entities = sorted(kb.entity_ids())[:10]
    for i, a in enumerate(entities):
        for b in entities[i + 1 :]:
            assert measure.relatedness(a, b) == measure.relatedness(b, a)
    assert measure.comparisons <= len(entities) * (len(entities) - 1) // 2


def test_compute_pair_matches_relatedness_and_identity():
    spy = OrderSpy()
    assert spy.compute_pair("Q", "Q") == 1.0
    assert spy.relatedness("Q", "Q") == 1.0
    assert spy.compute_pair("A", "B") == spy.relatedness("B", "A")
