"""Differential and regression tests for the LSH pruning path.

Covers the correctness properties the two-stage min-hash/LSH acceleration
must preserve:

* one surviving pair = one fault-site fire = one comparison count (the
  zero-fault chaos differential — a ``rate=0.0`` spec counts calls
  without injecting);
* pruned zeros are task-dependent and must not outlive their ``prepare``
  in an outer cross-document cache;
* inconsistent stage-one geometry fails at construction instead of
  silently bucketing everything together;
* keyphrase-less entities are never indexed (their relatedness is 0 by
  definition) and cannot inflate the allowed-pair set;
* candidate pairs are canonical and LSH values are exact-KORE-equal or
  exactly 0.0;
* per-task state is thread-local, so one measure serves concurrent
  documents.
"""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import FaultInjector, FaultSpec, injected
from repro.hashing.lsh import LshIndex
from repro.hashing.minhash import MinHasher
from repro.kb.keyphrases import KeyphraseStore
from repro.relatedness.caching import CachingRelatedness
from repro.relatedness.kore import KoreRelatedness
from repro.relatedness.lsh import KoreLshRelatedness, LshSettings
from repro.weights.model import WeightModel


def _music_store() -> KeyphraseStore:
    store = KeyphraseStore()
    store.add_keyphrase("Nick_Cave", ("australian", "singer"))
    store.add_keyphrase("Nick_Cave", ("bad", "seeds"))
    store.add_keyphrase("Nick_Cave", ("eerie", "cello"))
    store.add_keyphrase("Hallelujah_Cave", ("australian", "male", "singer"))
    store.add_keyphrase("Hallelujah_Cave", ("bad", "seeds"))
    store.add_keyphrase("Hallelujah_Chorus", ("baroque", "oratorio"))
    store.add_keyphrase("Hallelujah_Chorus", ("choir", "music"))
    for filler in range(6):
        store.add_keyphrase(f"F{filler}", (f"filler{filler}", "thing"))
    return store


@pytest.fixture
def setup():
    store = _music_store()
    return store, WeightModel(store, links=None)


class TestSingleFireSingleCount:
    """The zero-fault chaos differential of the acceptance criteria."""

    def test_one_fire_one_count_per_surviving_pair(self, setup):
        store, weights = setup
        kore = KoreRelatedness(store, weights)
        lsh = KoreLshRelatedness(
            store, kore, LshSettings.recall_geared(), name="G"
        )
        entities = store.entity_ids()
        lsh.prepare(entities)
        injector = FaultInjector(
            [FaultSpec(site="relatedness", rate=0.0)]
        )
        surviving = 0
        with injected(injector):
            for i, a in enumerate(entities):
                for b in entities[i + 1 :]:
                    lsh.relatedness(a, b)
                    if lsh.should_compare(a, b):
                        surviving += 1
        assert surviving > 0
        stats = injector.stats()["relatedness"]
        assert stats["injected"] == 0
        # One fire and one count per surviving pair — not two — and the
        # inner measure's counter stays untouched (the wrapper's counter
        # is the Table 4.4 quantity).
        assert stats["calls"] == surviving
        assert lsh.comparisons == surviving
        assert kore.comparisons == 0

    def test_cached_lookup_does_not_refire(self, setup):
        store, weights = setup
        kore = KoreRelatedness(store, weights)
        lsh = KoreLshRelatedness(store, kore, LshSettings.recall_geared())
        lsh.prepare(store.entity_ids())
        injector = FaultInjector(
            [FaultSpec(site="relatedness", rate=0.0)]
        )
        with injected(injector):
            lsh.relatedness("Nick_Cave", "Hallelujah_Cave")
            calls_after_first = injector.stats()["relatedness"]["calls"]
            lsh.relatedness("Hallelujah_Cave", "Nick_Cave")
        assert (
            injector.stats()["relatedness"]["calls"] == calls_after_first
        )

    def test_pruned_pairs_never_reach_the_fault_site(self, setup):
        store, weights = setup
        kore = KoreRelatedness(store, weights)
        lsh = KoreLshRelatedness(store, kore, LshSettings.fast())
        lsh.prepare(store.entity_ids())
        injector = FaultInjector(
            [FaultSpec(site="relatedness", rate=0.0)]
        )
        pruned = [
            (a, b)
            for i, a in enumerate(store.entity_ids())
            for b in store.entity_ids()[i + 1 :]
            if not lsh.should_compare(a, b)
        ]
        assert pruned  # disjoint fillers must prune under F
        with injected(injector):
            for a, b in pruned:
                assert lsh.relatedness(a, b) == 0.0
        assert injector.stats().get("relatedness", {}).get("calls", 0) == 0


class TestStalePrunedZeros:
    """Two-document differential: a pruned 0.0 must not leak across
    ``prepare`` boundaries through an outer shared cache."""

    def test_pruned_zero_not_retained_by_outer_cache(self, setup):
        store, weights = setup
        kore = KoreRelatedness(store, weights)
        exact = KoreRelatedness(store, weights).relatedness(
            "Nick_Cave", "Hallelujah_Cave"
        )
        assert exact > 0.0
        cached = CachingRelatedness(
            KoreLshRelatedness(
                store, kore, LshSettings.recall_geared(), name="G"
            )
        )
        # Document A: Hallelujah_Cave is not a candidate, so the pair
        # shares no stage-two bucket and is pruned to 0.0.
        cached.prepare(["Nick_Cave", "Hallelujah_Chorus"])
        assert cached.relatedness("Nick_Cave", "Hallelujah_Cave") == 0.0
        # Document B: the pair is present and collides — the exact value
        # must surface, not document A's stale 0.0.
        cached.prepare(["Nick_Cave", "Hallelujah_Cave"])
        assert cached.relatedness("Nick_Cave", "Hallelujah_Cave") == exact

    def test_surviving_values_stay_memoizable(self, setup):
        store, weights = setup
        kore = KoreRelatedness(store, weights)
        cached = CachingRelatedness(
            KoreLshRelatedness(store, kore, LshSettings.recall_geared())
        )
        cached.prepare(["Nick_Cave", "Hallelujah_Cave"])
        cached.relatedness("Nick_Cave", "Hallelujah_Cave")
        before = cached.cache_stats()
        cached.relatedness("Nick_Cave", "Hallelujah_Cave")
        after = cached.cache_stats()
        # Task-independent exact values are cached and served as hits.
        assert after.hits == before.hits + 1

    def test_pruned_lookups_are_answered_but_not_stored(self, setup):
        store, weights = setup
        kore = KoreRelatedness(store, weights)
        cached = CachingRelatedness(
            KoreLshRelatedness(store, kore, LshSettings.recall_geared())
        )
        cached.prepare(["Nick_Cave", "Hallelujah_Chorus"])
        cached.relatedness("Nick_Cave", "Hallelujah_Cave")
        assert cached.cache_stats().size == 0


class TestSettingsValidation:
    def test_inconsistent_phrase_geometry_rejected(self):
        with pytest.raises(ValueError):
            LshSettings(
                phrase_sketch_len=5, phrase_bands=2, phrase_rows=2
            )

    @pytest.mark.parametrize(
        "field",
        [
            "phrase_sketch_len",
            "phrase_bands",
            "phrase_rows",
            "entity_bands",
            "entity_rows",
        ],
    )
    def test_nonpositive_fields_rejected(self, field):
        with pytest.raises(ValueError):
            LshSettings(**{field: 0})

    def test_consistent_geometry_accepted(self):
        settings_obj = LshSettings(
            phrase_sketch_len=6, phrase_bands=3, phrase_rows=2
        )
        assert settings_obj.entity_sketch_len == (
            settings_obj.entity_bands * settings_obj.entity_rows
        )

    def test_phrase_buckets_use_full_sketch(self, setup):
        # One bucket id per phrase band, none of them the empty-band
        # ``sum([]) == 0`` artifact of the pre-validation implementation.
        store, weights = setup
        kore = KoreRelatedness(store, weights)
        lsh = KoreLshRelatedness(store, kore)
        ids = lsh._phrase_bucket_ids(("australian", "singer"))
        assert len(ids) == lsh.settings.phrase_bands
        assert len(set(ids)) == len(ids)


class TestEmptyEntities:
    def _store_with_empties(self, count=5):
        store = _music_store()
        for index in range(count):
            store.ensure_entity(f"Empty{index}")
        return store

    def test_empty_entities_never_collide(self):
        store = self._store_with_empties()
        weights = WeightModel(store, links=None)
        kore = KoreRelatedness(store, weights)
        lsh = KoreLshRelatedness(store, kore, LshSettings.recall_geared())
        lsh.prepare(store.entity_ids())
        empties = [e for e in store.entity_ids() if e.startswith("Empty")]
        assert len(empties) == 5
        for i, a in enumerate(empties):
            for b in empties[i + 1 :]:
                assert not lsh.should_compare(a, b)
                assert lsh.relatedness(a, b) == 0.0
        assert kore.comparisons == 0

    def test_empty_entities_do_not_inflate_allowed_pairs(self):
        store = self._store_with_empties()
        weights = WeightModel(store, links=None)
        kore = KoreRelatedness(store, weights)
        lsh = KoreLshRelatedness(store, kore, LshSettings.recall_geared())
        populated = [
            e for e in store.entity_ids() if not e.startswith("Empty")
        ]
        lsh.prepare(populated)
        without_empties = lsh.allowed_pair_count
        lsh.prepare(store.entity_ids())
        assert lsh.allowed_pair_count == without_empties

    def test_agrees_with_exact_kore_for_empty_entities(self):
        store = self._store_with_empties(count=2)
        weights = WeightModel(store, links=None)
        exact = KoreRelatedness(store, weights)
        lsh = KoreLshRelatedness(
            store,
            KoreRelatedness(store, weights),
            LshSettings.recall_geared(),
        )
        lsh.prepare(store.entity_ids())
        assert exact.relatedness("Empty0", "Empty1") == 0.0
        assert lsh.relatedness("Empty0", "Empty1") == 0.0


class TestCanonicalPairs:
    def test_candidate_pairs_are_canonical(self):
        hasher = MinHasher(num_hashes=8, seed=3)
        index = LshIndex(bands=8, rows=1)
        base = {f"w{i}" for i in range(10)}
        # Insertion order deliberately reversed relative to sort order.
        for name in ("Zeta", "Mid", "Alpha"):
            index.add(name, hasher.sketch(base))
        pairs = index.candidate_pairs()
        assert pairs
        for a, b in pairs:
            assert a <= b

    def test_pairs_match_should_compare_lookup(self, setup):
        store, weights = setup
        kore = KoreRelatedness(store, weights)
        lsh = KoreLshRelatedness(store, kore, LshSettings.recall_geared())
        entities = store.entity_ids()
        lsh.prepare(entities)
        allowed = {
            (a, b)
            for i, a in enumerate(entities)
            for b in entities[i + 1 :]
            if lsh.should_compare(a, b)
        }
        # should_compare is orientation-insensitive and the allowed set
        # is exactly the canonical candidate_pairs() output.
        assert allowed == lsh._task.allowed
        for a, b in allowed:
            assert lsh.should_compare(b, a)


@st.composite
def _keyphrase_stores(draw):
    """Small random stores over a colliding word pool (some empties)."""
    words = [f"word{i}" for i in range(8)]
    num_entities = draw(st.integers(min_value=2, max_value=6))
    store = KeyphraseStore()
    for index in range(num_entities):
        entity = f"E{index}"
        num_phrases = draw(st.integers(min_value=0, max_value=3))
        if num_phrases == 0:
            store.ensure_entity(entity)
            continue
        for _ in range(num_phrases):
            phrase = tuple(
                draw(
                    st.lists(
                        st.sampled_from(words),
                        min_size=1,
                        max_size=3,
                        unique=True,
                    )
                )
            )
            store.add_keyphrase(entity, phrase)
    return store


class TestPrunedValuesExactOrZero:
    @settings(max_examples=25, deadline=None)
    @given(store=_keyphrase_stores())
    def test_lsh_value_is_exact_or_zero(self, store):
        weights = WeightModel(store, links=None)
        exact = KoreRelatedness(store, weights)
        lsh = KoreLshRelatedness(
            store,
            KoreRelatedness(store, weights),
            LshSettings.recall_geared(),
        )
        entities = store.entity_ids()
        lsh.prepare(entities)
        for i, a in enumerate(entities):
            for b in entities[i + 1 :]:
                value = lsh.relatedness(a, b)
                if lsh.should_compare(a, b):
                    assert value == exact.relatedness(a, b)
                else:
                    assert value == 0.0


class TestThreadLocalTaskState:
    def test_concurrent_prepares_do_not_interfere(self, setup):
        store, weights = setup
        kore = KoreRelatedness(store, weights)
        lsh = KoreLshRelatedness(store, kore, LshSettings.recall_geared())
        lsh.precompute()
        barrier = threading.Barrier(2)
        outcomes = {}

        def run(label, universe, pair):
            lsh.prepare(universe)
            barrier.wait()  # both tasks prepared before either reads
            outcomes[label] = (
                lsh.allowed_pair_count,
                lsh.should_compare(*pair),
            )

        pair = ("Nick_Cave", "Hallelujah_Cave")
        t1 = threading.Thread(
            target=run,
            args=("with_pair", ["Nick_Cave", "Hallelujah_Cave"], pair),
        )
        t2 = threading.Thread(
            target=run,
            args=("without_pair", ["Nick_Cave", "Hallelujah_Chorus"], pair),
        )
        t1.start()
        t2.start()
        t1.join()
        t2.join()
        assert outcomes["with_pair"][1] is True
        assert outcomes["without_pair"][1] is False
        # The main thread never prepared: it behaves like exact KORE.
        assert lsh.should_compare(*pair)
        assert lsh.allowed_pair_count == 0

    def test_stats_accumulate_across_tasks(self, setup):
        store, weights = setup
        kore = KoreRelatedness(store, weights)
        lsh = KoreLshRelatedness(store, kore, LshSettings.fast())
        lsh.prepare(store.entity_ids())
        lsh.prepare(store.entity_ids())
        assert lsh.prepared_tasks == 2
        total = len(store.entity_ids())
        expected_universe = total * (total - 1) // 2
        assert (
            lsh.pruned_pairs + lsh.survived_pairs == 2 * expected_universe
        )
