"""Differential and unit tests for the shared relatedness cache.

The cache must be *observationally identical* to the measure it wraps:
same values for every pair, both argument orders, every maxsize.  The
differential tests sweep 20 seeded synthetic link worlds
(:mod:`repro.graph.synthetic`) for Milne–Witten and the session KB for
KORE.
"""

from __future__ import annotations

import pytest

from repro.graph.synthetic import (
    SyntheticLinkWorldSpec,
    synthetic_entity_ids,
    synthetic_link_world,
)
from repro.relatedness import (
    CachingRelatedness,
    KoreRelatedness,
    MilneWittenRelatedness,
)
from repro.relatedness.base import EntityRelatedness
from repro.weights.model import WeightModel

SEEDS = range(20)
WORLD_ENTITIES = 30


def _mw_pair(seed):
    """(plain, cached) Milne–Witten over the same synthetic world."""
    spec = SyntheticLinkWorldSpec(entities=WORLD_ENTITIES, seed=seed)
    links = synthetic_link_world(spec)
    plain = MilneWittenRelatedness(links, WORLD_ENTITIES)
    cached = CachingRelatedness(
        MilneWittenRelatedness(links, WORLD_ENTITIES)
    )
    return plain, cached


class CountingMeasure(EntityRelatedness):
    """Deterministic toy measure that records every ``_compute`` call."""

    name = "counting"

    def __init__(self):
        super().__init__()
        self.compute_calls = []

    def _compute(self, a, b):
        self.compute_calls.append((a, b))
        return (len(a) * 7 % 11) / 10.0 if a != b else 1.0


class TestDifferentialAgainstWrapped:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_mw_identical_on_synthetic_worlds(self, seed):
        """Cached MW equals plain MW on every pair, both orders."""
        plain, cached = _mw_pair(seed)
        entities = synthetic_entity_ids(WORLD_ENTITIES)
        for i, a in enumerate(entities):
            for b in entities[i:]:
                expected = plain.relatedness(a, b)
                assert cached.relatedness(a, b) == expected
                assert cached.relatedness(b, a) == expected

    @pytest.mark.parametrize("maxsize", [1, 7, None])
    def test_identical_under_every_capacity(self, maxsize):
        """Evicting entries must never change a returned value."""
        spec = SyntheticLinkWorldSpec(entities=WORLD_ENTITIES, seed=5)
        links = synthetic_link_world(spec)
        plain = MilneWittenRelatedness(links, WORLD_ENTITIES)
        cached = CachingRelatedness(
            MilneWittenRelatedness(links, WORLD_ENTITIES), maxsize=maxsize
        )
        entities = synthetic_entity_ids(WORLD_ENTITIES)[:12]
        # Two passes: the second replays evicted pairs.
        for _sweep in range(2):
            for a in entities:
                for b in entities:
                    assert cached.relatedness(a, b) == plain.relatedness(
                        a, b
                    )

    def test_kore_identical_on_kb(self, kb):
        """Cached KORE equals plain KORE on real keyphrase entities."""
        weights = WeightModel(kb.keyphrases, kb.links)
        plain = KoreRelatedness(kb.keyphrases, weights)
        cached = CachingRelatedness(
            KoreRelatedness(kb.keyphrases, weights)
        )
        entities = sorted(kb.entity_ids())[:15]
        for i, a in enumerate(entities):
            for b in entities[i:]:
                assert cached.relatedness(a, b) == plain.relatedness(a, b)

    def test_rank_candidates_identical(self):
        """The inherited ranking API goes through the cache unchanged."""
        plain, cached = _mw_pair(seed=9)
        entities = synthetic_entity_ids(WORLD_ENTITIES)
        assert cached.rank_candidates(
            entities[0], entities[1:]
        ) == plain.rank_candidates(entities[0], entities[1:])


class TestCacheMechanics:
    def test_counters_and_memoization(self):
        inner = CountingMeasure()
        cached = CachingRelatedness(inner)
        assert cached.relatedness("A", "B") == cached.relatedness("B", "A")
        cached.relatedness("A", "B")
        stats = cached.cache_stats()
        assert stats.misses == 1
        assert stats.hits == 2
        assert stats.size == 1
        assert stats.evictions == 0
        assert stats.computations == 1
        assert inner.compute_calls == [("A", "B")]
        assert stats.lookups == 3
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_identity_pairs_bypass_the_cache(self):
        cached = CachingRelatedness(CountingMeasure())
        assert cached.relatedness("A", "A") == 1.0
        stats = cached.cache_stats()
        assert stats.hits == 0 and stats.misses == 0 and stats.size == 0

    def test_lru_eviction_order(self):
        cached = CachingRelatedness(CountingMeasure(), maxsize=2)
        cached.relatedness("A", "B")
        cached.relatedness("A", "C")
        cached.relatedness("A", "B")  # refresh (A, B)
        cached.relatedness("A", "D")  # evicts (A, C), the LRU entry
        stats = cached.cache_stats()
        assert stats.evictions == 1
        assert stats.size == 2
        cached.relatedness("A", "B")
        assert cached.cache_stats().hits == 2
        cached.relatedness("A", "C")  # gone: recomputed
        assert cached.cache_stats().misses == 4

    def test_reset_stats_clears_everything(self):
        inner = CountingMeasure()
        cached = CachingRelatedness(inner)
        cached.relatedness("A", "B")
        cached.relatedness("A", "B")
        cached.reset_stats()
        stats = cached.cache_stats()
        assert (stats.hits, stats.misses, stats.size) == (0, 0, 0)
        assert inner.comparisons == 0
        # Recompute after reset: the value is gone from the LRU.
        cached.relatedness("A", "B")
        assert cached.cache_stats().misses == 1

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            CachingRelatedness(CountingMeasure(), maxsize=0)

    def test_name_reflects_inner_measure(self):
        assert CachingRelatedness(CountingMeasure()).name == (
            "cached(counting)"
        )
