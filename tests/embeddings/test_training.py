"""Embedding training: determinism, shapes, corpus, persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embeddings import (
    EmbeddingConfig,
    EmbeddingModel,
    build_corpus,
    shared_model,
    train_embeddings,
)
from repro.errors import ConfigurationError

#: Small-but-real training setup shared across the module; one epoch
#: keeps the session KB's training well under a second.
FAST = EmbeddingConfig(dim=16, epochs=1)


@pytest.fixture(scope="module")
def model(kb):
    return train_embeddings(kb, FAST)


class TestDeterminism:
    def test_same_seed_byte_identical(self, kb, model):
        again = train_embeddings(kb, FAST)
        assert (
            again.word_vectors.tobytes() == model.word_vectors.tobytes()
        )
        assert (
            again.entity_vectors.tobytes()
            == model.entity_vectors.tobytes()
        )
        assert again.fingerprint() == model.fingerprint()

    def test_different_seed_differs(self, kb, model):
        other = train_embeddings(
            kb, EmbeddingConfig(dim=16, epochs=1, seed=FAST.seed + 1)
        )
        assert other.fingerprint() != model.fingerprint()


class TestShapes:
    def test_row_alignment_and_order(self, kb, model):
        assert model.entity_ids == sorted(kb.entity_ids())
        assert model.words == sorted(set(model.words))
        assert model.word_vectors.shape == (len(model.words), 16)
        assert model.entity_vectors.shape == (len(model.entity_ids), 16)
        assert model.word_vectors.dtype == np.float32
        assert model.entity_vectors.dtype == np.float32

    def test_rows_unit_normalized(self, model):
        for matrix in (model.word_vectors, model.entity_vectors):
            norms = np.linalg.norm(matrix, axis=1)
            assert np.allclose(norms, 1.0, atol=1e-5)

    def test_meta_carries_provenance(self, model):
        assert model.meta["config"]["dim"] == 16
        assert model.meta["sentences"] > 0
        assert model.meta["pairs"] > 0


class TestCorpus:
    def test_every_entity_sentenced(self, kb):
        sentences = build_corpus(kb, FAST)
        starts = {
            token[1]
            for sentence in sentences
            for token in sentence
            if token[0] == "e"
        }
        assert starts == set(kb.entity_ids())

    def test_mixed_namespace(self, kb):
        sentences = build_corpus(kb, FAST)
        kinds = {
            token[0] for sentence in sentences for token in sentence
        }
        assert kinds == {"w", "e"}

    def test_link_neighborhood_capped(self, kb):
        capped = EmbeddingConfig(dim=16, epochs=1, max_link_neighbors=2)
        sentences = build_corpus(kb, capped)
        for sentence in sentences:
            entity_tokens = [t for t in sentence if t[0] == "e"]
            # A link sentence is all-entity: the anchor plus neighbors.
            if len(entity_tokens) == len(sentence):
                assert len(sentence) <= 1 + 2

    def test_deterministic(self, kb):
        assert build_corpus(kb, FAST) == build_corpus(kb, FAST)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dim": 0},
            {"window": 0},
            {"negatives": 0},
            {"epochs": 0},
            {"learning_rate": 0.0},
            {"batch_size": 0},
            {"max_phrase_repeats": 0},
            {"max_link_neighbors": -1},
        ],
    )
    def test_bad_knob_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            EmbeddingConfig(**kwargs)


class TestPersistence:
    def test_save_load_roundtrip(self, model, tmp_path):
        path = model.save(str(tmp_path / "model"))
        assert path.endswith(".npz")
        loaded = EmbeddingModel.load(path)
        assert loaded.fingerprint() == model.fingerprint()
        assert loaded.words == model.words
        assert loaded.entity_ids == model.entity_ids
        assert loaded.meta == model.meta

    def test_describe_shape(self, model):
        info = model.describe()
        assert info["dim"] == 16
        assert info["words"] == len(model.words)
        assert info["entities"] == len(model.entity_ids)
        assert set(info["fingerprint"]) == {
            "word_vectors",
            "entity_vectors",
        }


class TestSharedModel:
    def test_memoized_per_kb_and_config(self, kb):
        first = shared_model(kb, FAST)
        assert shared_model(kb, FAST) is first
        other = shared_model(
            kb, EmbeddingConfig(dim=16, epochs=1, seed=FAST.seed + 7)
        )
        assert other is not first
