"""DensePreRanker unit tests over a hand-built embedding space."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embeddings import DensePreRanker, EmbeddingModel
from repro.types import Document, Mention

DIM = 4

#: Axis-aligned words; entities at known angles to the "alpha" axis, so
#: the cosine ranking under an alpha-only context is fully predictable:
#: E1 (1.0) > E2 (0.8) > E3 (0.6) > E4 (0.0) > E5 (-1.0).
WORDS = {"alpha": [1, 0, 0, 0], "beta": [0, 1, 0, 0]}
ENTITIES = {
    "E1": [1.0, 0.0, 0.0, 0.0],
    "E2": [0.8, 0.6, 0.0, 0.0],
    "E3": [0.6, 0.8, 0.0, 0.0],
    "E4": [0.0, 0.0, 1.0, 0.0],
    "E5": [-1.0, 0.0, 0.0, 0.0],
}


@pytest.fixture(scope="module")
def model():
    return EmbeddingModel(
        words=sorted(WORDS),
        entity_ids=sorted(ENTITIES),
        word_vectors=np.array(
            [WORDS[w] for w in sorted(WORDS)], dtype=np.float32
        ),
        entity_vectors=np.array(
            [ENTITIES[e] for e in sorted(ENTITIES)], dtype=np.float32
        ),
    )


def alpha_document():
    return Document(
        doc_id="d",
        tokens=("alpha", "alpha", "Pool"),
        mentions=(Mention(surface="Pool", start=2, end=3),),
    )


class _PriorStub:
    """KB stand-in: only ``prior`` is consulted by protected_sets."""

    def __init__(self, priors):
        self._priors = priors

    def prior(self, surface, entity_id):
        return self._priors.get((surface, entity_id), 0.0)


class TestConstruction:
    def test_topk_must_be_positive(self, model):
        with pytest.raises(ValueError):
            DensePreRanker(model, 0)


class TestPrune:
    def test_pool_within_k_untouched(self, model):
        ranker = DensePreRanker(model, 3)
        pools = {0: ["E1", "E2", "E3"]}
        result, pruned, survived = ranker.prune(
            alpha_document(), pools, {}
        )
        assert result == pools
        assert result[0] is not pools[0]  # a copy, not an alias
        assert (pruned, survived) == (0, 3)

    def test_topk_by_cosine(self, model):
        ranker = DensePreRanker(model, 2)
        pools = {0: ["E1", "E2", "E3", "E4", "E5"]}
        result, pruned, survived = ranker.prune(
            alpha_document(), pools, {}
        )
        assert result[0] == ["E1", "E2"]
        assert (pruned, survived) == (3, 2)

    def test_protected_candidates_survive(self, model):
        ranker = DensePreRanker(model, 2)
        pools = {0: ["E1", "E2", "E3", "E4", "E5"]}
        result, pruned, survived = ranker.prune(
            alpha_document(), pools, {0: {"E5"}}
        )
        assert result[0] == ["E1", "E2", "E5"]
        assert (pruned, survived) == (2, 3)

    def test_protection_limited_to_pool(self, model):
        ranker = DensePreRanker(model, 2)
        pools = {0: ["E1", "E2"], 1: ["E2", "E3", "E4", "E5"]}
        result, _, _ = ranker.prune(
            alpha_document(), pools, {1: {"E9", "E5"}}
        )
        assert result[0] == ["E1", "E2"]  # within K: untouched
        # E9 is protected but not in pool 1 — it must not be invented;
        # E5 is protected and present, so it survives alongside the top-2.
        assert result[1] == ["E2", "E3", "E5"]

    def test_pool_order_preserved(self, model):
        ranker = DensePreRanker(model, 2)
        # Reverse-sorted pool: survivors must keep the input order.
        pools = {0: ["E5", "E4", "E3", "E2", "E1"]}
        result, _, _ = ranker.prune(alpha_document(), pools, {})
        assert result[0] == ["E2", "E1"]

    def test_unknown_entities_rank_last(self, model):
        ranker = DensePreRanker(model, 2)
        pools = {0: ["E1", "E2", "ZZ_unknown", "E4"]}
        result, _, _ = ranker.prune(alpha_document(), pools, {})
        assert result[0] == ["E1", "E2"]

    def test_unknown_context_degrades_to_id_order(self, model):
        ranker = DensePreRanker(model, 2)
        document = Document(doc_id="d", tokens=("zzz", "yyy"))
        pools = {0: ["E3", "E1", "E4"]}
        result, _, _ = ranker.prune(document, pools, {})
        # Every score is 0.0: the (score, id) tie-break keeps low ids,
        # and the output preserves the input pool order.
        assert result[0] == ["E3", "E1"]


class TestProtectedSets:
    def test_prior_top_protected(self):
        kb = _PriorStub(
            {("Pool", "E1"): 0.2, ("Pool", "E2"): 0.7, ("Pool", "E3"): 0.1}
        )
        mentions = [Mention(surface="Pool", start=0, end=1)]
        protected = DensePreRanker.protected_sets(
            kb, mentions, {0: ["E1", "E2", "E3"]}, {}
        )
        assert protected == {0: {"E2"}}

    def test_prior_tie_breaks_by_id(self):
        kb = _PriorStub({("Pool", "E1"): 0.5, ("Pool", "E2"): 0.5})
        mentions = [Mention(surface="Pool", start=0, end=1)]
        protected = DensePreRanker.protected_sets(
            kb, mentions, {0: ["E1", "E2"]}, {}
        )
        assert protected == {0: {"E2"}}

    def test_extra_candidates_protected(self):
        kb = _PriorStub({("Pool", "E1"): 0.9})
        mentions = [Mention(surface="Pool", start=0, end=1)]
        protected = DensePreRanker.protected_sets(
            kb, mentions, {0: ["E1", "E2", "E9"]}, {0: ["E9"]}
        )
        assert protected == {0: {"E1", "E9"}}

    def test_empty_pool_skipped(self):
        kb = _PriorStub({})
        mentions = [Mention(surface="Pool", start=0, end=1)]
        assert DensePreRanker.protected_sets(kb, mentions, {0: []}, {}) == {}
