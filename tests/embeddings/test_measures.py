"""Embedding similarity/relatedness: interface conformance and bounds."""

from __future__ import annotations

import pytest

from repro.embeddings import (
    EmbeddingConfig,
    EmbeddingRelatedness,
    EmbeddingSimilarity,
    shared_model,
)
from repro.relatedness.caching import CachingRelatedness
from repro.similarity.context import DocumentContext
from repro.types import Document


@pytest.fixture(scope="module")
def model(kb):
    return shared_model(kb, EmbeddingConfig(dim=16, epochs=1))


@pytest.fixture(scope="module")
def context(kb, sample_docs):
    return DocumentContext(sample_docs[0].document)


class TestSimilarity:
    def test_simscores_matches_simscore(self, kb, model, context):
        similarity = EmbeddingSimilarity(model)
        candidates = sorted(kb.entity_ids())[:8]
        batch = similarity.simscores(context, candidates)
        assert set(batch) == set(candidates)
        for entity_id in candidates:
            assert batch[entity_id] == pytest.approx(
                similarity.simscore(context, entity_id)
            )

    def test_scores_bounded(self, kb, model, context):
        similarity = EmbeddingSimilarity(model)
        scores = similarity.simscores(context, sorted(kb.entity_ids()))
        assert all(0.0 <= value <= 1.0 + 1e-6 for value in scores.values())

    def test_unknown_entity_scores_zero(self, model, context):
        similarity = EmbeddingSimilarity(model)
        assert similarity.simscore(context, "ZZ_not_in_kb") == 0.0
        assert similarity.simscores(context, ["ZZ_not_in_kb"]) == {
            "ZZ_not_in_kb": 0.0
        }

    def test_query_cached_per_context_identity(self, model, context):
        similarity = EmbeddingSimilarity(model)
        first = similarity._query(context)
        assert similarity._query(context) is first
        other = DocumentContext(
            Document(doc_id="other", tokens=("different", "words"))
        )
        assert similarity._query(other) is not first


class TestRelatedness:
    def test_bounds_and_symmetry(self, kb, model):
        measure = EmbeddingRelatedness(model)
        entities = sorted(kb.entity_ids())[:6]
        for i, a in enumerate(entities):
            for b in entities[i + 1 :]:
                value = measure.relatedness(a, b)
                assert 0.0 <= value <= 1.0
                assert measure.relatedness(b, a) == value

    def test_self_relatedness_is_one(self, kb, model):
        measure = EmbeddingRelatedness(model)
        entity = sorted(kb.entity_ids())[0]
        assert measure.relatedness(entity, entity) == pytest.approx(
            1.0, abs=1e-5
        )

    def test_unknown_entity_is_unrelated(self, kb, model):
        measure = EmbeddingRelatedness(model)
        entity = sorted(kb.entity_ids())[0]
        assert measure.relatedness(entity, "ZZ_not_in_kb") == 0.0

    def test_cacheable_behind_lru(self, kb, model):
        measure = EmbeddingRelatedness(model)
        cached = CachingRelatedness(EmbeddingRelatedness(model))
        entities = sorted(kb.entity_ids())[:5]
        for i, a in enumerate(entities):
            for b in entities[i + 1 :]:
                assert cached.relatedness(a, b) == measure.relatedness(a, b)
        stats = cached.cache_stats()
        # Re-query: every pair must now come from the LRU.
        for i, a in enumerate(entities):
            for b in entities[i + 1 :]:
                cached.relatedness(a, b)
        assert cached.cache_stats().hits > stats.hits

    def test_name_for_telemetry(self, model):
        assert EmbeddingRelatedness(model).name == "EMB"
