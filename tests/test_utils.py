"""Tests for rng, text normalization, and timing utilities."""

import pytest

from repro.utils.rng import SeededRng, derive_seed
from repro.utils.text import (
    is_all_upper,
    ngrams,
    normalize_phrase,
    normalize_token,
    phrase_tokens,
    upper_case_ratio,
)
from repro.utils.timing import Stopwatch, TimingStats


class TestSeededRng:
    def test_determinism(self):
        a = [SeededRng(5).random() for _ in range(3)]
        b = [SeededRng(5).random() for _ in range(3)]
        assert a == b

    def test_fork_independence(self):
        parent = SeededRng(5)
        fork_a = parent.fork("a")
        fork_b = parent.fork("b")
        assert fork_a.random() != fork_b.random()

    def test_fork_is_stable(self):
        assert SeededRng(5).fork("x").seed == SeededRng(5).fork("x").seed

    def test_derive_seed_distinct_labels(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_weighted_choice_respects_weights(self):
        rng = SeededRng(1)
        picks = [
            rng.weighted_choice(["a", "b"], [0.999, 0.001])
            for _ in range(100)
        ]
        assert picks.count("a") > 90

    def test_weighted_choice_length_mismatch(self):
        with pytest.raises(ValueError):
            SeededRng(1).weighted_choice(["a"], [1.0, 2.0])

    def test_zipf_weights(self):
        weights = SeededRng(1).zipf_weights(3, exponent=1.0)
        assert weights == [1.0, 0.5, pytest.approx(1 / 3)]

    def test_zipf_invalid_n(self):
        with pytest.raises(ValueError):
            SeededRng(1).zipf_weights(0)

    def test_sample_caps_at_population(self):
        assert len(SeededRng(1).sample([1, 2], 10)) == 2

    def test_pick_k_weighted_unique(self):
        rng = SeededRng(1)
        picks = rng.pick_k_weighted(
            ["a", "b", "c"], [1.0, 1.0, 1.0], 3
        )
        assert sorted(picks) == ["a", "b", "c"]

    def test_pick_k_weighted_more_than_available(self):
        picks = SeededRng(1).pick_k_weighted(["a"], [1.0], 5)
        assert picks == ["a"]

    def test_shuffled_preserves_elements(self):
        items = list(range(10))
        shuffled = SeededRng(1).shuffled(items)
        assert sorted(shuffled) == items
        assert items == list(range(10))  # original untouched


class TestTextUtils:
    def test_normalize_token(self):
        assert normalize_token("Hello,") == "hello"
        assert normalize_token("(Dylan)") == "dylan"

    def test_normalize_phrase(self):
        assert normalize_phrase("Hard  Rock!") == "hard rock"

    def test_phrase_tokens_drops_empty(self):
        assert phrase_tokens("Led   Zeppelin") == ("led", "zeppelin")

    def test_upper_case_ratio(self):
        assert upper_case_ratio("ABc") == pytest.approx(2 / 3)
        assert upper_case_ratio("123") == 0.0

    def test_is_all_upper(self):
        assert is_all_upper("NASA")
        assert not is_all_upper("NaSA")
        assert not is_all_upper("123")

    def test_ngrams(self):
        spans = ngrams(["a", "b", "c"], max_len=2)
        assert (0, 1) in spans and (0, 2) in spans and (1, 3) in spans
        assert (0, 3) not in spans


class TestTiming:
    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        with watch.measure("phase"):
            pass
        with watch.measure("phase"):
            pass
        assert watch.count("phase") == 2
        assert watch.total("phase") >= 0.0
        assert watch.phases() == ["phase"]

    def test_timing_stats(self):
        stats = TimingStats()
        for value in [1.0, 2.0, 3.0, 4.0]:
            stats.add(value)
        assert stats.mean == pytest.approx(2.5)
        assert stats.stddev == pytest.approx(1.29099, rel=1e-4)
        assert stats.quantile(0.0) == 1.0
        assert stats.quantile(0.99) == 4.0

    def test_timing_stats_empty(self):
        stats = TimingStats()
        assert stats.mean == 0.0
        assert stats.stddev == 0.0
        assert stats.quantile(0.5) == 0.0

    def test_quantile_nearest_rank_ten_samples(self):
        """Nearest-rank regression: rank = ceil(q*n), 1-based.

        With samples 1..10, p90 must pick the 9th smallest (9.0) — the
        old ``int(q * n)`` rounding selected index 9 (the maximum).
        """
        stats = TimingStats()
        for value in range(1, 11):
            stats.add(float(value))
        assert stats.quantile(0.9) == 9.0
        assert stats.quantile(0.5) == 5.0
        assert stats.quantile(0.1) == 1.0
        assert stats.quantile(0.91) == 10.0
        assert stats.quantile(1.0) == 10.0

    def test_quantile_single_sample(self):
        stats = TimingStats()
        stats.add(3.0)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert stats.quantile(q) == 3.0
