"""Tests for the baseline disambiguators."""

import pytest

from repro.baselines.cucerzan import CucerzanDisambiguator
from repro.baselines.kulkarni import KulkarniDisambiguator, KulkarniMode
from repro.baselines.prior_only import PriorOnlyDisambiguator
from repro.baselines.tagme import TagmeDisambiguator
from repro.baselines.threshold_ee import (
    ThresholdEeWrapper,
    tune_threshold,
)
from repro.baselines.wikifier import WikifierDisambiguator
from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.datagen.documents import DocumentSpec
from repro.eval.runner import run_disambiguator
from repro.types import OUT_OF_KB


@pytest.fixture(scope="module")
def corpus(world, doc_generator):
    docs = []
    cluster_ids = sorted(world.clusters)
    for index in range(8):
        spec = DocumentSpec(
            doc_id=f"bl-{index}",
            cluster_ids=[cluster_ids[index % len(cluster_ids)]],
            num_mentions=5,
            context_prob=0.8,
        )
        docs.append(doc_generator.generate(spec))
    return docs


class TestPriorOnly:
    def test_runs_and_scores(self, kb, corpus):
        run = run_disambiguator(PriorOnlyDisambiguator(kb), corpus, kb=kb)
        assert 0.0 < run.micro <= 1.0

    def test_unknown_name_out_of_kb(self, kb):
        from repro.types import Document, Mention

        doc = Document(
            doc_id="x",
            tokens=("Qqqzzz", "spoke"),
            mentions=(Mention(surface="Qqqzzz", start=0, end=1),),
        )
        result = PriorOnlyDisambiguator(kb).disambiguate(doc)
        assert result.assignments[0].entity == OUT_OF_KB

    def test_fixed_hook(self, kb, corpus):
        doc = corpus[0].document
        result = PriorOnlyDisambiguator(kb).disambiguate(
            doc, fixed={0: "Whatever"}
        )
        assert result.assignments[0].entity == "Whatever"


class TestCucerzan:
    def test_runs(self, kb, corpus):
        run = run_disambiguator(CucerzanDisambiguator(kb), corpus, kb=kb)
        assert 0.0 <= run.micro <= 1.0

    def test_candidate_scores_populated(self, kb, corpus):
        result = CucerzanDisambiguator(kb).disambiguate(corpus[0].document)
        scored = [a for a in result.assignments if a.candidate_scores]
        assert scored

    def test_restrict_to(self, kb, corpus):
        doc = corpus[0].document
        result = CucerzanDisambiguator(kb).disambiguate(
            doc, restrict_to=[0]
        )
        assert len(result.assignments) == 1


class TestKulkarni:
    def test_similarity_mode(self, kb, corpus):
        pipeline = KulkarniDisambiguator(kb, mode=KulkarniMode.SIMILARITY)
        run = run_disambiguator(pipeline, corpus, kb=kb)
        assert 0.0 <= run.micro <= 1.0

    def test_collective_beats_or_matches_similarity(self, kb, corpus):
        sim = run_disambiguator(
            KulkarniDisambiguator(kb, mode=KulkarniMode.SIMILARITY),
            corpus,
            kb=kb,
        )
        collective = run_disambiguator(
            KulkarniDisambiguator(kb, mode=KulkarniMode.COLLECTIVE),
            corpus,
            kb=kb,
        )
        # Coherence should stay in the same ballpark on coherent
        # single-cluster documents (the tiny test corpus sits near the
        # ceiling, so a small drop from coherence noise is tolerated).
        assert collective.micro >= sim.micro - 0.10

    def test_deterministic(self, kb, corpus):
        pipeline = KulkarniDisambiguator(kb, mode=KulkarniMode.COLLECTIVE)
        doc = corpus[0].document
        assert (
            pipeline.disambiguate(doc).as_map()
            == pipeline.disambiguate(doc).as_map()
        )


class TestTagme:
    def test_runs(self, kb, corpus):
        run = run_disambiguator(TagmeDisambiguator(kb), corpus, kb=kb)
        assert 0.0 < run.micro <= 1.0


class TestWikifier:
    def test_runs(self, kb, corpus):
        run = run_disambiguator(WikifierDisambiguator(kb), corpus, kb=kb)
        assert 0.0 < run.micro <= 1.0

    def test_linker_score_nonnegative(self, kb, corpus):
        pipeline = WikifierDisambiguator(kb)
        result = pipeline.disambiguate(corpus[0].document)
        for assignment in result.assignments:
            if assignment.candidate_scores:
                assert pipeline.linker_score(assignment) >= 0.0


class TestThresholdWrapper:
    def test_high_threshold_relabels_everything(self, kb, corpus):
        base = AidaDisambiguator(kb, config=AidaConfig.robust_prior_sim())
        wrapper = ThresholdEeWrapper(base, threshold=10.0)
        result = wrapper.disambiguate(corpus[0].document)
        assert all(a.entity == OUT_OF_KB for a in result.assignments)

    def test_zero_threshold_changes_nothing(self, kb, corpus):
        base = AidaDisambiguator(kb, config=AidaConfig.robust_prior_sim())
        wrapper = ThresholdEeWrapper(base, threshold=0.0)
        assert (
            wrapper.disambiguate(corpus[0].document).as_map()
            == base.disambiguate(corpus[0].document).as_map()
        )

    def test_tuned_threshold_in_grid(self, kb, corpus):
        base = AidaDisambiguator(kb, config=AidaConfig.robust_prior_sim())
        threshold = tune_threshold(base, corpus[:4])
        assert 0.0 <= threshold < 1.0
