"""Shared fixtures: a small deterministic world, its encyclopedia and KB.

The fixtures are session-scoped — the world/KB build takes a noticeable
fraction of a second and every suite shares the same seed, so tests are
reproducible and fast.
"""

from __future__ import annotations

import pytest

from repro.datagen.documents import DocumentGenerator, DocumentSpec
from repro.datagen.wikipedia import SyntheticWikipedia, build_world_kb
from repro.datagen.world import World, WorldConfig


SMALL_WORLD_SEED = 7


@pytest.fixture(scope="session")
def world() -> World:
    return World.generate(
        WorldConfig(seed=SMALL_WORLD_SEED, clusters_per_domain=4)
    )


@pytest.fixture(scope="session")
def kb_and_wiki(world):
    return build_world_kb(world, seed=101)


@pytest.fixture(scope="session")
def kb(kb_and_wiki):
    return kb_and_wiki[0]


@pytest.fixture(scope="session")
def wiki(kb_and_wiki) -> SyntheticWikipedia:
    return kb_and_wiki[1]


@pytest.fixture(scope="session")
def doc_generator(world) -> DocumentGenerator:
    return DocumentGenerator(world, seed=55)


@pytest.fixture(scope="session")
def sample_docs(world, doc_generator):
    """Ten annotated single-cluster documents."""
    docs = []
    cluster_ids = sorted(world.clusters)
    for index in range(10):
        spec = DocumentSpec(
            doc_id=f"sample-{index}",
            cluster_ids=[cluster_ids[index % len(cluster_ids)]],
            num_mentions=5,
        )
        docs.append(doc_generator.generate(spec))
    return docs
