"""Tests for the search and analytics applications (Chapter 6)."""

import pytest

from repro.apps.analytics.store import AnalyticsStore
from repro.apps.analytics.trends import TrendAnalyzer
from repro.apps.search.index import EntitySearchIndex
from repro.apps.search.query import Query, execute
from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.datagen.documents import DocumentSpec


@pytest.fixture(scope="module")
def annotated_stream(world, kb, doc_generator):
    """Documents annotated by AIDA, over three 'days'."""
    aida = AidaDisambiguator(kb, config=AidaConfig.robust_prior_sim())
    stream = []
    cluster_ids = sorted(world.clusters)
    for index in range(12):
        spec = DocumentSpec(
            doc_id=f"app-{index}",
            cluster_ids=[cluster_ids[index % 4]],
            num_mentions=5,
            timestamp=index % 3,
            context_prob=0.9,
        )
        annotated = doc_generator.generate(spec)
        result = aida.disambiguate(annotated.document)
        stream.append((annotated.document, result))
    return stream


@pytest.fixture(scope="module")
def index(kb, annotated_stream):
    idx = EntitySearchIndex(kb)
    for document, result in annotated_stream:
        idx.add_document(document, result)
    return idx


@pytest.fixture(scope="module")
def analytics(kb, annotated_stream):
    store = AnalyticsStore()
    for document, result in annotated_stream:
        store.ingest(document, result)
    return store


class TestSearchIndex:
    def test_documents_indexed(self, index, annotated_stream):
        assert len(index) == len(annotated_stream)

    def test_word_lookup(self, index, annotated_stream):
        document, _result = annotated_stream[0]
        some_word = next(
            tok.lower()
            for tok in document.tokens
            if tok.isalpha() and tok.islower()
        )
        assert document.doc_id in index.documents_with_word(some_word)

    def test_entity_lookup(self, index, annotated_stream):
        _document, result = annotated_stream[0]
        linked = [a.entity for a in result.assignments if not a.is_out_of_kb]
        if not linked:
            pytest.skip("no linked entities in first document")
        postings = index.documents_with_entity(linked[0])
        assert annotated_stream[0][0].doc_id in postings

    def test_category_lookup_through_taxonomy(self, kb, index):
        # Any document mentioning a person-entity must match "person".
        postings = index.documents_with_category("person")
        assert postings

    def test_query_execution_entity_and_category(
        self, kb, index, annotated_stream
    ):
        _document, result = annotated_stream[0]
        linked = [a.entity for a in result.assignments if not a.is_out_of_kb]
        if not linked:
            pytest.skip("no linked entities")
        results = execute(index, Query.of(entities=[linked[0]]))
        assert any(
            r.doc_id == annotated_stream[0][0].doc_id for r in results
        )

    def test_empty_query(self, index):
        assert execute(index, Query.of()) == []

    def test_conjunction_narrows(self, kb, index, annotated_stream):
        _document, result = annotated_stream[0]
        linked = [a.entity for a in result.assignments if not a.is_out_of_kb]
        if len(linked) < 2:
            pytest.skip("need two linked entities")
        single = execute(index, Query.of(entities=[linked[0]]), limit=100)
        both = execute(
            index, Query.of(entities=[linked[0], linked[1]]), limit=100
        )
        assert len(both) <= len(single)

    def test_autocomplete(self, kb, index):
        frequencies = index.entity_frequencies()
        if not frequencies:
            pytest.skip("nothing indexed")
        entity_id = sorted(frequencies)[0]
        prefix = kb.entity(entity_id).canonical_name[:3]
        assert entity_id in index.autocomplete_entity(prefix, limit=50)


class TestAnalytics:
    def test_document_count(self, analytics, annotated_stream):
        assert analytics.document_count() == len(annotated_stream)

    def test_days_recorded(self, analytics):
        assert analytics.days() == [0, 1, 2]

    def test_frequency_series_shape(self, analytics):
        entity = next(iter(analytics.entities_on(0)), None)
        if entity is None:
            pytest.skip("no entities on day 0")
        series = analytics.frequency_series(entity, 0, 2)
        assert [day for day, _count in series] == [0, 1, 2]

    def test_co_occurring_excludes_self(self, analytics):
        entity = next(iter(analytics.entities_on(0)), None)
        if entity is None:
            pytest.skip("no entities on day 0")
        for other, _count in analytics.co_occurring(entity):
            assert other != entity


class TestTrendAnalyzer:
    def test_trending_scores_positive(self, kb, analytics):
        analyzer = TrendAnalyzer(analytics, kb)
        trending = analyzer.trending(day=2, baseline_days=2, limit=5)
        assert all(score > 0 for _eid, score in trending)

    def test_category_counts(self, kb, analytics):
        analyzer = TrendAnalyzer(analytics, kb)
        counts = analyzer.category_counts(day=0)
        assert counts
        assert all(isinstance(k, str) for k in counts)

    def test_top_entities_with_category_filter(self, kb, analytics):
        analyzer = TrendAnalyzer(analytics, kb)
        top_people = analyzer.top_entities(0, 2, category="person")
        for entity_id, _count in top_people:
            assert "person" in kb.types_of(entity_id)

    def test_co_occurrence_profile_readable(self, kb, analytics):
        analyzer = TrendAnalyzer(analytics, kb)
        entity = next(iter(analytics.entities_on(0)), None)
        if entity is None:
            pytest.skip("no entities")
        profile = analyzer.co_occurrence_profile(entity)
        for name, count in profile:
            assert isinstance(name, str) and count > 0
