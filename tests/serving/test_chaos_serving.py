"""Chaos serving: injected faults must degrade answers, not drop them.

Mirrors the regimes of ``tests/faults/test_chaos_differential.py`` but
drives the full serving path over loopback HTTP: under transient faults
plus retries every connection still gets its fault-free answer; under a
permanent backend loss every connection still gets *an* answer, with the
ladder rung recorded in the response metadata.
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.core.pipeline import AidaDisambiguator
from repro.datagen.documents import DocumentGenerator, DocumentSpec
from repro.datagen.wikipedia import build_world_kb
from repro.datagen.world import World, WorldConfig
from repro.faults.injector import FaultInjector, FaultSpec, injected
from repro.faults.resilient import RobustnessConfig
from repro.faults.retry import RetryPolicy

from tests.serving.conftest import (
    document_payload,
    drive,
    http_request,
    make_server,
)

SEED = int(os.environ.get("CHAOS_BASE_SEED", "1307")) + 400

#: Capped transient mass — with 12 retries even one document absorbing
#: every fault converges to the fault-free answer.
TRANSIENT_SPECS = [
    FaultSpec(site="kb.lookup", rate=1.0, kind="transient", max_faults=2),
    FaultSpec(site="relatedness", rate=0.3, kind="transient", max_faults=3),
    FaultSpec(site="similarity", rate=0.25, kind="transient", max_faults=3),
]

NO_SLEEP_BACKOFF = RetryPolicy(base_ms=0.0, max_ms=0.0, jitter=0.0)


@pytest.fixture(scope="module")
def chaos_setup():
    world = World.generate(WorldConfig(seed=SEED, clusters_per_domain=2))
    kb, _wiki = build_world_kb(world, seed=SEED + 94)
    generator = DocumentGenerator(world, seed=SEED + 55)
    cluster_ids = sorted(world.clusters)
    documents = [
        generator.generate(
            DocumentSpec(
                doc_id=f"chaos-{index}",
                cluster_ids=[cluster_ids[index % len(cluster_ids)]],
                num_mentions=4,
            )
        ).document
        for index in range(6)
    ]
    pipeline = AidaDisambiguator(kb)
    baseline = {
        doc.doc_id: [
            (a.mention.surface, a.entity)
            for a in pipeline.disambiguate(doc).assignments
        ]
        for doc in documents
    }
    return kb, documents, baseline


async def _post_all(server, documents):
    return await asyncio.gather(
        *(
            http_request(
                server.port, "POST", "/disambiguate", document_payload(doc)
            )
            for doc in documents
        )
    )


def test_transient_faults_degrade_not_drop(chaos_setup):
    """Every connection is answered; retried documents converge to the
    fault-free assignments and report attempts > 1."""
    kb, documents, baseline = chaos_setup
    server = make_server(
        AidaDisambiguator(kb),
        kb=kb,
        robustness=RobustnessConfig(
            retries=12, degrade=True, backoff=NO_SLEEP_BACKOFF
        ),
        max_queue=32,
    )
    injector = FaultInjector(TRANSIENT_SPECS, seed=SEED)

    with injected(injector):
        responses = drive(server, lambda s: _post_all(s, documents))

    assert injector.total_injected > 0
    assert len(responses) == len(documents)  # no dropped connections
    attempts = []
    for doc, (status, body, _headers) in zip(documents, responses):
        assert status == 200
        assert body["doc_id"] == doc.doc_id
        got = [(a["surface"], a["entity"]) for a in body["assignments"]]
        assert got == baseline[doc.doc_id]
        attempts.append(body["attempts"])
    assert any(count > 1 for count in attempts)  # retries really happened


def test_permanent_backend_loss_walks_the_ladder(chaos_setup):
    """A dead relatedness backend degrades every answer to a cheaper
    rung; nothing is dropped, nothing 500s."""
    kb, documents, _baseline = chaos_setup
    server = make_server(
        AidaDisambiguator(kb),
        kb=kb,
        robustness=RobustnessConfig(
            retries=1, degrade=True, backoff=NO_SLEEP_BACKOFF
        ),
        max_queue=32,
    )
    injector = FaultInjector(
        [FaultSpec(site="relatedness", rate=1.0, kind="permanent")],
        seed=SEED,
    )

    with injected(injector):
        responses = drive(server, lambda s: _post_all(s, documents))

    assert len(responses) == len(documents)
    for doc, (status, body, _headers) in zip(documents, responses):
        assert status == 200, body
        assert body["doc_id"] == doc.doc_id
        # Coherence needs relatedness, so "full" cannot have produced
        # the answer on documents whose solve touched the backend; the
        # ladder rung is surfaced per response either way.
        assert body["rung"] in ("full", "no_coherence", "prior_only")
        assert body["assignments"]  # an answer, not an error
    rungs = {body["rung"] for _status, body, _h in responses}
    assert rungs & {"no_coherence", "prior_only"}  # degradation happened


def test_cli_style_inject_spec_round_trip(chaos_setup):
    """The ``--inject`` spec grammar drives the same machinery: a parsed
    transient spec with retries keeps the serving path lossless."""
    from repro.faults.injector import parse_fault_spec

    kb, documents, baseline = chaos_setup
    spec = parse_fault_spec("kb.lookup:1.0:transient:2")
    server = make_server(
        AidaDisambiguator(kb),
        kb=kb,
        robustness=RobustnessConfig(
            retries=6, degrade=True, backoff=NO_SLEEP_BACKOFF
        ),
        max_queue=32,
    )
    injector = FaultInjector([spec], seed=SEED + 1)

    with injected(injector):
        responses = drive(server, lambda s: _post_all(s, documents[:3]))

    for doc, (status, body, _headers) in zip(documents, responses):
        assert status == 200
        got = [(a["surface"], a["entity"]) for a in body["assignments"]]
        assert got == baseline[doc.doc_id]
