"""Micro-batcher unit tests: size trigger, age trigger, lossless close.

The batcher is pure asyncio, so every test drives a real event loop with
a recording flush callback — no server, no pipeline.
"""

from __future__ import annotations

import asyncio
from typing import List

import pytest

from repro.serving.batcher import BatcherClosed, MicroBatcher


class RecordingFlush:
    """Captures every flushed batch; optionally slow or failing."""

    def __init__(self, delay: float = 0.0, fail_batches: int = 0):
        self.batches: List[List[object]] = []
        self.delay = delay
        self.fail_batches = fail_batches

    async def __call__(self, batch):
        if self.delay:
            await asyncio.sleep(self.delay)
        if self.fail_batches > 0:
            self.fail_batches -= 1
            raise RuntimeError("injected flush failure")
        self.batches.append(batch)

    @property
    def items(self) -> List[object]:
        return [item for batch in self.batches for item in batch]


def run(coro):
    return asyncio.run(coro)


def test_flush_on_size_does_not_wait_for_window():
    """A full batch flushes immediately despite a huge age window."""

    async def main():
        flush = RecordingFlush()
        batcher = MicroBatcher(flush, max_batch=3, window_ms=60_000.0)
        batcher.start()
        for item in range(3):
            await batcher.put(item)
        # One cooperative tick is enough: no timer must be involved.
        await asyncio.wait_for(_until(lambda: flush.batches), timeout=1.0)
        assert flush.batches == [[0, 1, 2]]
        assert batcher.flush_counts["size"] == 1
        assert batcher.flush_counts["age"] == 0
        await batcher.close()

    run(main())


def test_flush_on_age_with_partial_batch():
    """A lone item flushes once its window expires."""

    async def main():
        flush = RecordingFlush()
        batcher = MicroBatcher(flush, max_batch=64, window_ms=10.0)
        batcher.start()
        await batcher.put("only")
        await asyncio.wait_for(_until(lambda: flush.batches), timeout=1.0)
        assert flush.batches == [["only"]]
        assert batcher.flush_counts["age"] == 1
        await batcher.close()

    run(main())


def test_zero_window_flushes_each_item_alone():
    """``window_ms=0`` disables batching: every item is its own batch."""

    async def main():
        flush = RecordingFlush()
        batcher = MicroBatcher(flush, max_batch=8, window_ms=0.0)
        batcher.start()
        for item in range(4):
            await batcher.put(item)
        await batcher.close()
        assert flush.items == [0, 1, 2, 3]
        assert all(len(batch) == 1 for batch in flush.batches)

    run(main())


def test_no_item_lost_on_immediate_close():
    """Everything put before close() is flushed — nothing is dropped."""

    async def main():
        flush = RecordingFlush()
        batcher = MicroBatcher(flush, max_batch=4, window_ms=60_000.0)
        batcher.start()
        for item in range(11):
            await batcher.put(item)
        await batcher.close()
        assert flush.items == list(range(11))
        assert batcher.items_flushed == 11
        # Closing flushed whatever had not already left via the size
        # trigger, in max_batch chunks.
        assert all(len(batch) <= 4 for batch in flush.batches)

    run(main())


def test_fifo_order_is_preserved_across_batches():
    """Concatenated flushes equal the put order (FIFO within and across
    batches — the admission queue's ordering guarantee)."""

    async def main():
        flush = RecordingFlush()
        batcher = MicroBatcher(flush, max_batch=3, window_ms=5.0)
        batcher.start()
        for item in range(10):
            await batcher.put(item)
            if item % 4 == 3:
                await asyncio.sleep(0.01)  # let age flushes interleave
        await batcher.close()
        assert flush.items == list(range(10))

    run(main())


def test_put_after_close_raises():
    async def main():
        flush = RecordingFlush()
        batcher = MicroBatcher(flush, max_batch=4, window_ms=1.0)
        batcher.start()
        await batcher.close()
        with pytest.raises(BatcherClosed):
            await batcher.put("late")

    run(main())


def test_close_is_idempotent():
    async def main():
        flush = RecordingFlush()
        batcher = MicroBatcher(flush, max_batch=4, window_ms=1.0)
        batcher.start()
        await batcher.put("x")
        await batcher.close()
        await batcher.close()
        assert flush.items == ["x"]

    run(main())


def test_failing_flush_does_not_kill_the_flusher():
    """A flush exception is logged and the next batch still flushes."""

    async def main():
        flush = RecordingFlush(fail_batches=1)
        batcher = MicroBatcher(flush, max_batch=2, window_ms=5.0)
        batcher.start()
        await batcher.put("lost-a")
        await batcher.put("lost-b")
        await asyncio.sleep(0.02)
        await batcher.put("kept")
        await batcher.close()
        assert flush.items == ["kept"]
        assert batcher.items_flushed == 3

    run(main())


def test_invalid_geometry_rejected():
    flush = RecordingFlush()
    with pytest.raises(ValueError):
        MicroBatcher(flush, max_batch=0)
    with pytest.raises(ValueError):
        MicroBatcher(flush, max_batch=1, window_ms=-1.0)


async def _until(predicate, interval: float = 0.002):
    while not predicate():
        await asyncio.sleep(interval)
