"""Shared serving-test plumbing: pipelines, servers, HTTP clients.

Everything runs on loopback and ephemeral ports; the session-scoped KB
fixtures come from the repository-root ``conftest``.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional, Tuple

import pytest

from repro.core.pipeline import AidaDisambiguator
from repro.faults.resilient import RobustnessConfig
from repro.serving import DisambiguationServer, ServingConfig


@pytest.fixture(scope="module")
def serving_pipeline(kb):
    """One shared full-config pipeline over the session KB."""
    return AidaDisambiguator(kb)


@pytest.fixture(scope="module")
def plain_documents(sample_docs):
    """The bare documents (mentions attached) of the annotated samples."""
    return [annotated.document for annotated in sample_docs]


def make_server(
    pipeline,
    kb=None,
    robustness: Optional[RobustnessConfig] = None,
    **overrides,
) -> DisambiguationServer:
    """A server with test-friendly defaults (ephemeral port, tiny window).

    The default robustness enables degradation but arms no deadline, so
    differential assertions cannot be perturbed by slow CI machines.
    """
    defaults = dict(
        port=0, batch_window_ms=5.0, batch_max_docs=4, workers=2
    )
    defaults.update(overrides)
    if robustness is None:
        robustness = RobustnessConfig(degrade=True)
    return DisambiguationServer(
        pipeline,
        ServingConfig(**defaults),
        kb=kb,
        robustness=robustness,
    )


def drive(server: DisambiguationServer, driver, listen: bool = True):
    """Start *server*, run the async *driver(server)*, always stop."""

    async def main():
        await server.start(listen=listen)
        try:
            return await driver(server)
        finally:
            await server.stop()

    return asyncio.run(main())


async def http_request(
    port: int,
    method: str,
    path: str,
    payload: Optional[Dict] = None,
    host: str = "127.0.0.1",
) -> Tuple[int, Dict, Dict[str, str]]:
    """One HTTP exchange against the loopback server.

    Returns ``(status, json_body, headers)``.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass
    head_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    lines = head_blob.decode("latin-1").splitlines()
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, json.loads(body_blob), headers


def document_payload(document) -> Dict:
    """The explicit-mentions request payload for *document*."""
    return {
        "doc_id": document.doc_id,
        "tokens": list(document.tokens),
        "mentions": [
            {
                "surface": mention.surface,
                "start": mention.start,
                "end": mention.end,
            }
            for mention in document.mentions
        ],
    }


def comparable(result) -> List:
    """Everything order- and value-relevant, minus the timing stats."""
    return [
        (
            assignment.mention,
            assignment.entity,
            assignment.score,
            sorted(assignment.candidate_scores.items()),
        )
        for assignment in result.assignments
    ]
