"""End-to-end serving telemetry: trace trees, scrapes, SLO accounting.

The acceptance path of the observability layer: a request entering
through a real loopback socket and executing on a **process-pool**
``BatchRunner`` must come back as one connected span tree under a single
``trace_id``, exported to the JSONL sink and digestible by
``repro obs report``.  The rest of the file covers the scrape surface
(``/metrics`` under concurrent recording, Prometheus exposition
validity), request ids on every error status, and the traced ≡ untraced
differential.
"""

from __future__ import annotations

import asyncio
import io
import json
import threading

import pytest

from repro.cli import main as cli_main
from repro.core.pipeline import AidaDisambiguator
from repro.datagen.wikipedia import build_world_kb
from repro.datagen.world import World, WorldConfig
from repro.faults.resilient import RobustnessConfig
from repro.obs import (
    MetricsRegistry,
    Tracer,
    set_metrics,
    set_tracer,
    validate_exposition,
)
from repro.obs.report import build_report, group_traces, load_spans
from repro.serving import DisambiguationServer, ServingConfig

from tests.serving.conftest import (
    comparable,
    document_payload,
    drive,
    http_request,
    make_server,
)

#: Pipeline stage spans only workers record (the batch executor side of
#: the tree); any one of them proves the tree crosses the executor.
STAGE_SPANS = {
    "candidate_retrieval",
    "feature_computation",
    "coherence_test",
    "graph_build",
    "solve",
    "post_process",
}


def _small_world_pipeline():
    """Module-level factory: picklable for process-pool workers, which
    rebuild the conftest world/KB from the same seeds."""
    world = World.generate(WorldConfig(seed=7, clusters_per_domain=4))
    kb, _wiki = build_world_kb(world, seed=101)
    return AidaDisambiguator(kb)


@pytest.fixture
def live_obs():
    """A real tracer + registry installed for the duration of a test."""
    tracer = Tracer()
    registry = MetricsRegistry()
    previous_tracer = set_tracer(tracer)
    previous_metrics = set_metrics(registry)
    try:
        yield tracer, registry
    finally:
        set_tracer(previous_tracer)
        set_metrics(previous_metrics)


async def raw_http_request(port, method, path):
    """Like ``http_request`` but returns the body as text (scrapes)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            "Host: 127.0.0.1\r\n"
            "Content-Length: 0\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass
    head_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    status = int(head_blob.decode("latin-1").splitlines()[0].split()[1])
    return status, body_blob.decode("utf-8")


class TestProcessPoolTraceTree:
    def test_http_request_yields_one_connected_tree(
        self, serving_pipeline, kb, sample_docs, live_obs, tmp_path,
        capsys,
    ):
        """The acceptance path: HTTP loopback -> admission -> micro-batch
        -> process pool -> pipeline stages, one span tree per request."""
        tracer, registry = live_obs
        trace_path = str(tmp_path / "traces.jsonl")
        documents = [a.document for a in sample_docs[:4]]
        server = DisambiguationServer(
            serving_pipeline,
            ServingConfig(
                port=0,
                slo_ms=60_000.0,
                batch_window_ms=200.0,
                batch_max_docs=4,
                workers=2,
                executor="process",
                trace_export=trace_path,
            ),
            kb=kb,
            robustness=RobustnessConfig(degrade=True),
            pipeline_factory=_small_world_pipeline,
        )

        async def driver(server):
            return await asyncio.gather(
                *(
                    http_request(
                        server.port,
                        "POST",
                        "/disambiguate",
                        document_payload(document),
                    )
                    for document in documents
                )
            )

        responses = drive(server, driver)
        trace_ids = set()
        for status, body, _headers in responses:
            assert status == 200
            assert body["request_id"].startswith("req-")
            assert len(body["trace_id"]) == 32
            assert body["assignments"]
            trace_ids.add(body["trace_id"])
        assert len(trace_ids) == len(documents)

        spans = load_spans([trace_path])
        traces = group_traces(spans)
        assert set(traces) == trace_ids
        saw_pool_batch = False
        saw_worker_span = False
        for trace_id, trace in traces.items():
            ids = {span["span_id"] for span in trace}
            roots = [
                span for span in trace
                if span.get("parent_id") not in ids
            ]
            # One connected tree: a single root, the request span.
            assert [root["name"] for root in roots] == ["request"]
            assert all(
                span.get("trace_id") == trace_id for span in trace
            )
            names = {span["name"] for span in trace}
            assert {
                "request", "admission", "queue.wait", "batch.exec"
            } <= names
            assert any(name.startswith("rung.") for name in names)
            assert names & STAGE_SPANS
            for span in trace:
                if span["name"] == "batch.exec":
                    if span["args"]["batch_size"] >= 2:
                        saw_pool_batch = True
                # Worker spans live in a pid-offset id space.
                if span["span_id"] > 0xFFFFFFFF:
                    saw_worker_span = True
        # The micro-batch window coalesced concurrent requests, so the
        # process pool (not the serial fallback) ran at least once and
        # shipped its spans across the pickle wall.
        assert saw_pool_batch
        assert saw_worker_span

        # Satellite: the admission p99 gauge is live after completions.
        gauges = registry.snapshot()["gauges"]
        assert gauges["serving.latency.p99_ms"] > 0.0

        # The exported file feeds the CLI report.
        capsys.readouterr()
        assert cli_main(["obs", "report", trace_path]) == 0
        out = capsys.readouterr().out
        assert f"traces: {len(documents)}" in out
        assert "request" in out
        assert "share" in out

    def test_tail_sampling_keeps_breaching_traces_only(
        self, serving_pipeline, kb, sample_docs, live_obs, tmp_path
    ):
        """With a zero head-sample rate, healthy traces are discarded;
        an SLO-breaching request's tree is still exported."""
        trace_path = str(tmp_path / "tail.jsonl")
        document = sample_docs[0].document
        server = make_server(
            serving_pipeline,
            kb=kb,
            slo_ms=60_000.0,
            trace_sample_rate=0.0,
            trace_export=trace_path,
        )

        async def driver(server):
            return await server.submit(document)

        drive(server, driver)
        assert server._trace_sink.stats()["traces_written"] == 0

        slow = make_server(
            serving_pipeline,
            kb=kb,
            slo_ms=0.001,  # everything breaches
            trace_sample_rate=0.0,
            trace_export=trace_path,
        )
        drive(slow, driver)
        spans = load_spans([trace_path])
        assert spans
        assert {span["name"] for span in spans} >= {"request"}


class TestScrapeSurface:
    def test_metrics_and_stats_under_concurrent_recording(
        self, serving_pipeline, kb, sample_docs, live_obs
    ):
        """Eight writer threads hammer the registry while the scrape
        endpoints snapshot it; every response stays well-formed."""
        tracer, registry = live_obs
        server = make_server(serving_pipeline, kb=kb)
        stop = threading.Event()

        def writer(index):
            counter = registry.windowed_counter(f"load.{index}")
            histogram = registry.windowed_histogram("load.seconds")
            plain = registry.counter("load.total")
            while not stop.is_set():
                counter.inc()
                histogram.observe(0.01 * index)
                plain.inc()

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(8)
        ]

        async def driver(server):
            await server.submit(sample_docs[0].document)
            scrapes = []
            for _ in range(5):
                scrapes.append(
                    await raw_http_request(
                        server.port, "GET", "/metrics?format=prometheus"
                    )
                )
                scrapes.append(
                    await http_request(server.port, "GET", "/metrics")
                )
                scrapes.append(
                    await http_request(server.port, "GET", "/stats")
                )
            return scrapes

        for thread in threads:
            thread.start()
        try:
            scrapes = drive(server, driver)
        finally:
            stop.set()
            for thread in threads:
                thread.join()

        for index, scrape in enumerate(scrapes):
            kind = index % 3
            if kind == 0:
                status, text = scrape
                assert status == 200
                assert validate_exposition(text) == []
                assert "serving_requests_total" in text
            elif kind == 1:
                status, body, _headers = scrape
                assert status == 200
                assert body["enabled"] is True
                assert "windows" in body
            else:
                status, body, _headers = scrape
                assert status == 200
                assert body["slo"]["objective"] == pytest.approx(0.99)
                assert body["telemetry"]["tracing"] is True
                assert body["telemetry"]["dropped_spans"] == 0

    def test_prometheus_scrape_disabled_metrics_is_empty(
        self, serving_pipeline, kb
    ):
        set_metrics(None)
        set_tracer(None)
        server = make_server(serving_pipeline, kb=kb)

        async def driver(server):
            return await raw_http_request(
                server.port, "GET", "/metrics?format=prometheus"
            )

        status, text = drive(server, driver)
        assert status == 200
        assert text == ""


class TestErrorRequestIds:
    def test_400_and_429_and_500_carry_request_ids(
        self, serving_pipeline, kb, sample_docs
    ):
        class BoomPipeline(AidaDisambiguator):
            """Fails at every rung, so the request 500s."""

            def disambiguate(self, document, **kwargs):
                raise ValueError("boom")

        payload = document_payload(sample_docs[0].document)
        server = make_server(BoomPipeline(kb), kb=kb, max_queue=1)

        async def driver(server):
            bad_json = await http_request(
                server.port, "POST", "/disambiguate", None
            )
            bad_doc = await http_request(
                server.port,
                "POST",
                "/disambiguate",
                {"doc_id": "x", "mentions": []},
            )
            failed = await http_request(
                server.port, "POST", "/disambiguate", payload
            )
            server.admission.admit()  # fill the queue: next is a 429
            try:
                rejected = await http_request(
                    server.port, "POST", "/disambiguate", payload
                )
            finally:
                server.admission.complete()
            return bad_json, bad_doc, failed, rejected

        bad_json, bad_doc, failed, rejected = drive(server, driver)
        assert bad_json[0] == 400
        assert bad_doc[0] == 400
        assert failed[0] == 500
        assert rejected[0] == 429
        for status, body, _headers in (
            bad_json, bad_doc, failed, rejected,
        ):
            assert body["request_id"].startswith("req-"), status
        assert failed[1]["doc_id"] == payload["doc_id"]
        assert rejected[1]["max_queue"] == 1

    def test_jsonl_error_rows_carry_request_ids(
        self, serving_pipeline, kb
    ):
        server = make_server(serving_pipeline, kb=kb)
        in_stream = io.StringIO('{"doc_id": "bad", "mentions": []}\n')
        out_stream = io.StringIO()

        async def driver(server):
            return await server.run_jsonl(in_stream, out_stream)

        served = drive(server, driver, listen=False)
        assert served == 1
        row = json.loads(out_stream.getvalue())
        assert "error" in row
        assert row["request_id"].startswith("req-")


class TestTracedUntracedDifferential:
    def test_bit_identical_over_loopback(
        self, serving_pipeline, kb, sample_docs, tmp_path
    ):
        """Full telemetry on or off, the HTTP responses carry exactly
        the same assignments — observability is pure measurement."""
        documents = [a.document for a in sample_docs[:4]]

        async def driver(server):
            return await asyncio.gather(
                *(
                    http_request(
                        server.port,
                        "POST",
                        "/disambiguate",
                        document_payload(document),
                    )
                    for document in documents
                )
            )

        def assignments(responses):
            out = {}
            for status, body, _headers in responses:
                assert status == 200
                out[body["doc_id"]] = body["assignments"]
            return out

        set_tracer(None)
        set_metrics(None)
        untraced = assignments(
            drive(make_server(serving_pipeline, kb=kb), driver)
        )

        previous_tracer = set_tracer(Tracer())
        previous_metrics = set_metrics(MetricsRegistry())
        try:
            traced_server = make_server(
                serving_pipeline,
                kb=kb,
                trace_export=str(tmp_path / "diff.jsonl"),
            )
            traced = assignments(drive(traced_server, driver))
        finally:
            set_tracer(previous_tracer)
            set_metrics(previous_metrics)

        assert traced == untraced

    def test_submit_path_matches_direct_pipeline(
        self, serving_pipeline, kb, sample_docs
    ):
        """Traced serving responses equal the bare pipeline's output."""
        document = sample_docs[0].document
        direct = comparable(serving_pipeline.disambiguate(document))

        previous_tracer = set_tracer(Tracer())
        previous_metrics = set_metrics(MetricsRegistry())
        try:
            server = make_server(serving_pipeline, kb=kb)

            async def driver(server):
                return await server.submit(document)

            response = drive(server, driver)
        finally:
            set_tracer(previous_tracer)
            set_metrics(previous_metrics)
        assert comparable(response.result) == direct
