"""End-to-end loopback tests: real sockets, concurrent clients.

The server binds an ephemeral port on 127.0.0.1; clients are plain
asyncio stream connections speaking the minimal HTTP/1.1 the server
implements.  Every test asserts input↔output correspondence and the
per-request rung/attempts metadata the protocol promises.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.pipeline import AidaDisambiguator
from repro.serving.admission import SHED_LADDER

from tests.serving.conftest import (
    comparable,
    document_payload,
    drive,
    http_request,
    make_server,
)


def test_single_request_round_trip(serving_pipeline, kb, sample_docs):
    annotated = sample_docs[0]
    payload = document_payload(annotated.document)
    server = make_server(serving_pipeline, kb=kb)

    async def driver(server):
        return await http_request(
            server.port, "POST", "/disambiguate", payload
        )

    status, body, headers = drive(server, driver)
    assert status == 200
    assert headers["connection"] == "close"
    assert body["doc_id"] == annotated.document.doc_id
    assert body["admitted_rung"] == "full"
    assert body["rung"] in SHED_LADDER[:3]
    assert body["attempts"] >= 1
    assert body["latency_ms"] >= 0.0
    assert len(body["assignments"]) == len(annotated.document.mentions)
    for assignment, mention in zip(
        body["assignments"], annotated.document.mentions
    ):
        assert assignment["surface"] == mention.surface
        assert assignment["start"] == mention.start
        assert assignment["end"] == mention.end
        assert isinstance(assignment["entity"], (str, type(None)))


def test_concurrent_clients_get_their_own_documents(
    serving_pipeline, kb, sample_docs
):
    """N concurrent clients each send a distinct document; every client
    gets back exactly the answer for the document it sent."""
    documents = [annotated.document for annotated in sample_docs[:6]]
    expected = {
        doc.doc_id: comparable(serving_pipeline.disambiguate(doc))
        for doc in documents
    }
    server = make_server(serving_pipeline, kb=kb, max_queue=32)

    async def driver(server):
        return await asyncio.gather(
            *(
                http_request(
                    server.port,
                    "POST",
                    "/disambiguate",
                    document_payload(doc),
                )
                for doc in documents
            )
        )

    responses = drive(server, driver)
    assert len(responses) == len(documents)
    for doc, (status, body, _headers) in zip(documents, responses):
        assert status == 200
        assert body["doc_id"] == doc.doc_id
        got = [
            (a["surface"], a["entity"]) for a in body["assignments"]
        ]
        want = [
            (mention.surface, entity)
            for mention, entity, _score, _cands in expected[doc.doc_id]
        ]
        assert got == want
        assert body["attempts"] >= 1
        assert body["admitted_rung"] in SHED_LADDER[:3]


def test_text_payload_runs_ner(serving_pipeline, kb, sample_docs):
    """A payload with raw tokens and no mention spans goes through the
    server-side recognizer."""
    annotated = sample_docs[0]
    payload = {
        "doc_id": "text-mode",
        "tokens": list(annotated.document.tokens),
    }
    server = make_server(serving_pipeline, kb=kb)

    async def driver(server):
        return await http_request(
            server.port, "POST", "/disambiguate", payload
        )

    status, body, _headers = drive(server, driver)
    assert status == 200
    assert body["doc_id"] == "text-mode"
    # The recognizer found at least the mentions the generator planted.
    assert len(body["assignments"]) >= 1


def test_healthz_stats_and_metrics_endpoints(serving_pipeline, kb):
    server = make_server(serving_pipeline, kb=kb)

    async def driver(server):
        return (
            await http_request(server.port, "GET", "/healthz"),
            await http_request(server.port, "GET", "/stats"),
            await http_request(server.port, "GET", "/metrics"),
        )

    health, stats, metrics = drive(server, driver)
    assert health[0] == 200
    assert health[1]["status"] == "ok"
    assert health[1]["queue_depth"] == 0
    assert stats[0] == 200
    for key in ("admitted", "rejected", "shed", "depth", "p99_ms"):
        assert key in stats[1]
    assert metrics[0] == 200
    assert "enabled" in metrics[1]


def test_error_statuses(serving_pipeline, kb):
    server = make_server(serving_pipeline, kb=kb)

    async def driver(server):
        bad_json = await http_request(
            server.port, "POST", "/disambiguate", None
        )
        bad_doc = await http_request(
            server.port,
            "POST",
            "/disambiguate",
            {"doc_id": "x", "mentions": []},  # no tokens, no text
        )
        missing = await http_request(server.port, "GET", "/nowhere")
        wrong_method = await http_request(
            server.port, "GET", "/disambiguate"
        )
        return bad_json, bad_doc, missing, wrong_method

    bad_json, bad_doc, missing, wrong_method = drive(server, driver)
    assert bad_json[0] == 400
    assert bad_doc[0] == 400
    assert "error" in bad_doc[1]
    assert missing[0] == 404
    assert wrong_method[0] == 405


def test_overload_returns_429_with_retry_after(kb, sample_docs):
    """With a tiny queue and a slow pipeline, concurrent clients beyond
    the bound get 429 + Retry-After while admitted ones complete."""
    import time

    class SlowPipeline(AidaDisambiguator):
        """Same constructor signature, so degraded rungs rebuild fine."""

        def disambiguate(self, document, **kwargs):
            time.sleep(0.05)
            return super().disambiguate(document, **kwargs)

    pipeline = SlowPipeline(kb)
    document = sample_docs[0].document
    server = make_server(
        pipeline,
        kb=kb,
        max_queue=2,
        batch_max_docs=1,
        batch_window_ms=0.0,
        workers=1,
        executor="serial",
    )

    async def driver(server):
        return await asyncio.gather(
            *(
                http_request(
                    server.port,
                    "POST",
                    "/disambiguate",
                    document_payload(document),
                )
                for _ in range(10)
            )
        )

    responses = drive(server, driver)
    statuses = sorted(status for status, _body, _headers in responses)
    assert statuses.count(200) >= 2  # admitted work completes
    assert 429 in statuses  # the bound rejected the rest
    assert set(statuses) <= {200, 429}
    for status, body, headers in responses:
        if status == 429:
            assert headers["retry-after"] == "1"
            assert body["max_queue"] == 2
            assert body["queue_depth"] >= body["max_queue"]


def test_jsonl_mode_preserves_input_order(serving_pipeline, kb, sample_docs):
    """The stdin-JSONL pump answers every line, in order, no sockets."""
    import io
    import json

    documents = [annotated.document for annotated in sample_docs[:5]]
    in_stream = io.StringIO(
        "".join(
            json.dumps(document_payload(doc)) + "\n" for doc in documents
        )
    )
    out_stream = io.StringIO()
    server = make_server(serving_pipeline, kb=kb)

    async def driver(server):
        return await server.run_jsonl(in_stream, out_stream)

    served = drive(server, driver, listen=False)
    assert served == len(documents)
    lines = out_stream.getvalue().strip().splitlines()
    assert len(lines) == len(documents)
    for doc, line in zip(documents, lines):
        body = json.loads(line)
        assert body["doc_id"] == doc.doc_id
        assert body["attempts"] >= 1


def test_shutdown_answers_all_inflight_requests(
    serving_pipeline, kb, sample_docs
):
    """stop() drains the batcher: requests submitted before shutdown all
    resolve, none hang or error."""
    documents = [annotated.document for annotated in sample_docs[:4]]
    server = make_server(
        serving_pipeline, kb=kb, batch_window_ms=60_000.0, batch_max_docs=64
    )

    async def main():
        await server.start(listen=False)
        tasks = [
            asyncio.ensure_future(server.submit(doc)) for doc in documents
        ]
        await asyncio.sleep(0)  # let submits enter the batcher
        await server.stop()
        return await asyncio.gather(*tasks)

    responses = asyncio.run(main())
    assert [r.result.doc_id for r in responses] == [
        doc.doc_id for doc in documents
    ]
    assert server.admission.depth == 0
