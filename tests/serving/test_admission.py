"""Admission-control invariants and the monotone-shed property.

The policy is a pure function, so most of this suite needs no server:
bounded depth, shed thresholds, reject-only-at-the-bound, and the
Hypothesis property that rising load can never yield a more capable
rung than an earlier-admitted request got.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.resilient import DEGRADATION_LADDER
from repro.serving.admission import (
    REJECT,
    SHED_LADDER,
    AdmissionController,
    AdmissionRejected,
    LatencyWindow,
    ShedPolicy,
)

RUNG_INDEX = {rung: index for index, rung in enumerate(SHED_LADDER)}


# ----------------------------------------------------------------------
# ShedPolicy: the pure mapping
# ----------------------------------------------------------------------
def test_policy_tiers_by_depth():
    policy = ShedPolicy(depth_fractions=(0.5, 0.75))
    assert policy.rung_for(0.0, 0.0) == "full"
    assert policy.rung_for(0.49, 0.0) == "full"
    assert policy.rung_for(0.5, 0.0) == "no_coherence"
    assert policy.rung_for(0.75, 0.0) == "prior_only"
    assert policy.rung_for(0.99, 0.0) == "prior_only"
    assert policy.rung_for(1.0, 0.0) == REJECT


def test_policy_tiers_by_latency():
    policy = ShedPolicy(latency_ratios=(1.0, 2.0))
    assert policy.rung_for(0.0, 0.5) == "full"
    assert policy.rung_for(0.0, 1.0) == "full"
    assert policy.rung_for(0.0, 1.5) == "no_coherence"
    assert policy.rung_for(0.0, 2.5) == "prior_only"


def test_latency_alone_never_rejects():
    """429 only when the shed ladder is exhausted — i.e. the queue is
    literally full.  However blown the SLO is, a non-full queue admits
    at prior_only."""
    policy = ShedPolicy()
    for ratio in (1.0, 2.0, 10.0, 1e9):
        assert policy.rung_for(0.99, ratio) != REJECT


def test_worse_signal_wins():
    policy = ShedPolicy()
    assert policy.rung_for(0.6, 5.0) == "prior_only"
    assert policy.rung_for(0.8, 0.0) == "prior_only"
    assert policy.rung_for(0.6, 1.5) == "no_coherence"


@settings(max_examples=300, deadline=None)
@given(
    f1=st.floats(0.0, 2.0),
    f2=st.floats(0.0, 2.0),
    r1=st.floats(0.0, 10.0),
    r2=st.floats(0.0, 10.0),
)
def test_policy_monotone_componentwise(f1, f2, r1, r2):
    """More load never yields a more capable rung (either signal)."""
    lo_f, hi_f = sorted((f1, f2))
    lo_r, hi_r = sorted((r1, r2))
    policy = ShedPolicy()
    relaxed = policy.rung_for(lo_f, lo_r)
    loaded = policy.rung_for(hi_f, hi_r)
    assert RUNG_INDEX[loaded] >= RUNG_INDEX[relaxed]


@settings(max_examples=200, deadline=None)
@given(
    arrivals=st.integers(min_value=1, max_value=40),
    max_queue=st.integers(min_value=1, max_value=32),
    seed_latency=st.floats(0.0, 5000.0),
)
def test_shed_ladder_monotone_under_rising_load(
    arrivals, max_queue, seed_latency
):
    """For any seeded arrival pattern with no completions (load only
    rises), each admitted request's rung is no better than any
    earlier-admitted one, and the first reject ends admission for good.
    """
    controller = AdmissionController(max_queue=max_queue, slo_ms=1000.0)
    controller.latencies.observe(seed_latency)
    indices = []
    rejected_at = None
    for arrival in range(arrivals):
        try:
            rung = controller.admit()
        except AdmissionRejected:
            rejected_at = arrival
            break
        indices.append(RUNG_INDEX[rung])
    assert indices == sorted(indices)
    if rejected_at is not None:
        assert rejected_at == max_queue  # exactly at the bound
        assert controller.depth == max_queue


# ----------------------------------------------------------------------
# AdmissionController: bounded depth and slot accounting
# ----------------------------------------------------------------------
def test_depth_is_bounded_and_reject_only_at_bound():
    controller = AdmissionController(max_queue=4, slo_ms=1000.0)
    rungs = [controller.admit() for _ in range(4)]
    assert controller.depth == 4
    assert all(rung in DEGRADATION_LADDER for rung in rungs)
    with pytest.raises(AdmissionRejected):
        controller.admit()
    assert controller.depth == 4  # a reject charges no slot
    controller.complete(latency_ms=10.0)
    assert controller.depth == 3
    assert controller.admit() in DEGRADATION_LADDER  # slot freed


def test_admission_sheds_before_rejecting():
    """Crossing the depth thresholds degrades the granted rung before
    anything is rejected."""
    controller = AdmissionController(max_queue=8, slo_ms=1000.0)
    rungs = [controller.admit() for _ in range(8)]
    assert rungs[:4] == ["full"] * 4  # below 0.5
    assert rungs[4:6] == ["no_coherence"] * 2  # [0.5, 0.75)
    assert rungs[6:] == ["prior_only"] * 2  # [0.75, 1.0)
    stats = controller.stats()
    assert stats["shed"] == 4
    assert stats["rejected"] == 0


def test_latency_pressure_degrades_admission():
    controller = AdmissionController(
        max_queue=100, slo_ms=100.0, latency_window=8
    )
    assert controller.admit() == "full"
    for _ in range(8):
        controller.latencies.observe(150.0)  # p99 = 1.5x SLO
    assert controller.admit() == "no_coherence"
    for _ in range(8):
        controller.latencies.observe(500.0)  # p99 = 5x SLO
    assert controller.admit() == "prior_only"


def test_complete_without_admit_raises():
    controller = AdmissionController(max_queue=2, slo_ms=100.0)
    with pytest.raises(Exception):
        controller.complete()


def test_stats_and_rung_mix_accounting():
    controller = AdmissionController(max_queue=4, slo_ms=1000.0)
    for _ in range(4):
        controller.admit()
    with pytest.raises(AdmissionRejected):
        controller.admit()
    for _ in range(4):
        controller.complete(latency_ms=5.0)
    stats = controller.stats()
    assert stats["completed"] == 4
    assert stats["rejected"] == 1
    assert stats["depth"] == 0
    mix = dict(controller.rung_mix)
    assert sum(mix.values()) == 4
    assert mix["full"] == 2


# ----------------------------------------------------------------------
# LatencyWindow
# ----------------------------------------------------------------------
def test_latency_window_quantiles():
    window = LatencyWindow(size=100)
    assert window.p99() == 0.0
    for value in range(1, 101):
        window.observe(float(value))
    assert window.p99() == 99.0
    assert window.quantile(0.5) == 50.0
    assert len(window) == 100


def test_latency_window_slides():
    window = LatencyWindow(size=4)
    for value in (1.0, 2.0, 3.0, 4.0, 100.0):
        window.observe(value)
    # The 1.0 sample fell out of the window.
    assert window.quantile(0.0) >= 2.0 or window.quantile(0.25) >= 2.0
    assert window.p99() == 100.0


def test_invalid_construction():
    with pytest.raises(ValueError):
        AdmissionController(max_queue=0, slo_ms=100.0)
    with pytest.raises(ValueError):
        AdmissionController(max_queue=1, slo_ms=0.0)
    with pytest.raises(ValueError):
        LatencyWindow(size=0)
