"""Additional coverage: generic world domains, analytics edge cases,
corpus composition, and evaluation internals."""

import pytest

from repro.apps.analytics.store import AnalyticsStore
from repro.apps.analytics.trends import TrendAnalyzer
from repro.datagen.conll import ConllConfig, generate_conll
from repro.datagen.world import World, WorldConfig
from repro.eval.measures import (
    DocumentOutcome,
    mean_average_precision,
    precision_recall_points,
)
from repro.types import (
    DisambiguationResult,
    Document,
    Mention,
    MentionAssignment,
)


class TestGenericDomainWorld:
    """Domains without a dedicated cluster builder fall back to the
    generic person-cluster shape."""

    @pytest.fixture(scope="class")
    def custom_world(self):
        return World.generate(
            WorldConfig(
                seed=19,
                clusters_per_domain=2,
                domains=("music", "folklore"),
            )
        )

    def test_custom_domain_clusters_built(self, custom_world):
        folklore = [
            c
            for c in custom_world.clusters.values()
            if c.domain == "folklore"
        ]
        assert len(folklore) == 2
        for cluster in folklore:
            assert cluster.members

    def test_generic_members_are_persons(self, custom_world):
        folklore = [
            c
            for c in custom_world.clusters.values()
            if c.domain == "folklore"
        ][0]
        for member in folklore.members:
            assert custom_world.entity(member).types == ("person",)

    def test_kb_builds_over_custom_world(self, custom_world):
        from repro.datagen.wikipedia import build_world_kb

        kb, _wiki = build_world_kb(custom_world, seed=5)
        assert len(kb) > 0


class TestAnalyticsEdgeCases:
    def _result(self, doc_id, entities):
        mentions = [
            Mention(surface=f"m{i}", start=i, end=i + 1)
            for i in range(len(entities))
        ]
        return DisambiguationResult(
            doc_id=doc_id,
            assignments=[
                MentionAssignment(mention=m, entity=e)
                for m, e in zip(mentions, entities)
            ],
        )

    def test_empty_store(self, kb):
        store = AnalyticsStore()
        analyzer = TrendAnalyzer(store, kb)
        assert store.days() == []
        assert analyzer.trending(day=0) == []
        assert analyzer.category_counts(day=0) == {}
        assert analyzer.top_entities(0, 10) == []

    def test_out_of_kb_assignments_ignored(self, kb):
        from repro.types import OUT_OF_KB

        store = AnalyticsStore()
        doc = Document(doc_id="d", tokens=("a",), timestamp=0)
        store.ingest(doc, self._result("d", [OUT_OF_KB]))
        assert store.entities_on(0) == {}

    def test_same_entity_once_per_document(self, kb):
        store = AnalyticsStore()
        doc = Document(doc_id="d", tokens=("a", "b"), timestamp=0)
        store.ingest(doc, self._result("d", ["E1", "E1"]))
        assert store.count_on("E1", 0) == 1

    def test_frequency_series_covers_gaps(self, kb):
        store = AnalyticsStore()
        doc = Document(doc_id="d", tokens=("a",), timestamp=2)
        store.ingest(doc, self._result("d", ["E1"]))
        series = store.frequency_series("E1", 0, 3)
        assert series == [(0, 0), (1, 0), (2, 1), (3, 0)]

    def test_trending_unknown_entities_tolerated(self, kb):
        # Entities not in the KB must not break category roll-ups.
        store = AnalyticsStore()
        doc = Document(doc_id="d", tokens=("a",), timestamp=0)
        store.ingest(doc, self._result("d", ["Ghost_Entity"]))
        analyzer = TrendAnalyzer(store, kb)
        assert analyzer.category_counts(0) == {}


class TestCorpusComposition:
    def test_heterogeneous_fraction_zero(self, world):
        corpus = generate_conll(
            world,
            ConllConfig(seed=11, scale=0.02, heterogeneous_fraction=0.0),
        )
        # Every document draws from exactly one cluster: all in-KB gold
        # entities of a doc share a cluster (modulo distractors, disabled
        # implicitly by checking majority).
        for annotated in corpus.testb:
            clusters = [
                world.entity(ann.entity).cluster_id
                for ann in annotated.in_kb_gold()
            ]
            if len(clusters) >= 3:
                majority = max(set(clusters), key=clusters.count)
                assert clusters.count(majority) >= len(clusters) - 1

    def test_split_document_ids_unique(self, world):
        corpus = generate_conll(world, ConllConfig(seed=11, scale=0.02))
        ids = [d.doc_id for d in corpus.all_documents()]
        assert len(ids) == len(set(ids))


class TestEvalInternals:
    def test_map_steps_parameter(self):
        outcomes = [
            DocumentOutcome(
                doc_id="a",
                pairs=[("E", "E", 0.9), ("F", "F", 0.5), ("G", "X", 0.1)],
            )
        ]
        coarse = mean_average_precision(outcomes, steps=2)
        fine = mean_average_precision(outcomes, steps=200)
        assert 0.0 <= coarse <= 1.0
        assert 0.0 <= fine <= 1.0

    def test_pr_points_final_recall_is_one(self):
        outcomes = [
            DocumentOutcome(
                doc_id="a", pairs=[("E", "E", 0.9), ("F", "X", 0.1)]
            )
        ]
        points = precision_recall_points(outcomes)
        assert points[-1][0] == pytest.approx(1.0)

    def test_missing_confidence_ranks_last(self):
        outcomes = [
            DocumentOutcome(
                doc_id="a",
                pairs=[("E", "E", None), ("F", "F", 0.9)],
            )
        ]
        points = precision_recall_points(outcomes)
        # The confident pair comes first in the ranking.
        assert points[0][1] == 1.0
