"""Tests for the evaluation measures."""

import pytest

from repro.eval.ee_measures import EeDocumentOutcome, EeResult
from repro.eval.measures import (
    DocumentOutcome,
    EvaluationResult,
    document_accuracy,
    macro_average_accuracy,
    mean_average_precision,
    micro_average_accuracy,
    precision_at_confidence,
    precision_recall_points,
)
from repro.eval.ranking import (
    cumulative_accuracy_by_links,
    link_averaged_accuracy,
    precision_recall_curve,
    spearman,
)
from repro.types import OUT_OF_KB


def _outcome(doc_id, pairs):
    return DocumentOutcome(doc_id=doc_id, pairs=list(pairs))


class TestAccuracy:
    def test_micro_pools_mentions(self):
        outcomes = [
            _outcome("a", [("E1", "E1", None), ("E2", "E3", None)]),
            _outcome("b", [("E1", "E1", None)]),
        ]
        assert micro_average_accuracy(outcomes) == pytest.approx(2 / 3)

    def test_macro_averages_documents(self):
        outcomes = [
            _outcome("a", [("E1", "E1", None), ("E2", "E3", None)]),
            _outcome("b", [("E1", "E1", None)]),
        ]
        assert macro_average_accuracy(outcomes) == pytest.approx(0.75)

    def test_document_accuracy(self):
        outcome = _outcome("a", [("E1", "E1", None), ("E2", None, None)])
        assert document_accuracy(outcome) == pytest.approx(0.5)

    def test_empty_outcomes(self):
        assert micro_average_accuracy([]) == 0.0
        assert macro_average_accuracy([]) == 0.0

    def test_empty_document_skipped_in_macro(self):
        outcomes = [_outcome("a", []), _outcome("b", [("E", "E", None)])]
        assert macro_average_accuracy(outcomes) == 1.0


class TestMap:
    def test_perfect_ranking(self):
        outcomes = [
            _outcome(
                "a",
                [("E1", "E1", 0.9), ("E2", "E2", 0.8), ("E3", "X", 0.1)],
            )
        ]
        # Correct answers ranked above the wrong one: MAP close to 1 until
        # the last recall levels.
        value = mean_average_precision(outcomes)
        assert value > 0.85

    def test_inverted_ranking_lower(self):
        good = [_outcome("a", [("E", "E", 0.9), ("F", "X", 0.1)])]
        bad = [_outcome("a", [("E", "E", 0.1), ("F", "X", 0.9)])]
        assert mean_average_precision(good) > mean_average_precision(bad)

    def test_empty(self):
        assert mean_average_precision([]) == 0.0

    def test_pr_points_monotone_recall(self):
        outcomes = [
            _outcome("a", [("E", "E", 0.9), ("F", "X", 0.5), ("G", "G", 0.1)])
        ]
        points = precision_recall_points(outcomes)
        recalls = [r for r, _p in points]
        assert recalls == sorted(recalls)


class TestPrecisionAtConfidence:
    def test_cutoff_filters(self):
        outcomes = [
            _outcome(
                "a",
                [("E1", "E1", 0.96), ("E2", "X", 0.5), ("E3", "E3", 0.97)],
            )
        ]
        precision, count = precision_at_confidence(outcomes, 0.95)
        assert precision == 1.0
        assert count == 2

    def test_no_qualifying(self):
        outcomes = [_outcome("a", [("E1", "E1", 0.5)])]
        assert precision_at_confidence(outcomes, 0.95) == (0.0, 0)


class TestEeMeasures:
    def _outcome(self, pairs):
        return EeDocumentOutcome(doc_id="d", pairs=list(pairs))

    def test_precision_recall(self):
        outcome = self._outcome(
            [
                (OUT_OF_KB, OUT_OF_KB),  # true EE found
                ("E1", OUT_OF_KB),       # false EE
                (OUT_OF_KB, "E2"),       # missed EE
                ("E3", "E3"),            # correct in-KB
            ]
        )
        assert outcome.precision == pytest.approx(0.5)
        assert outcome.recall == pytest.approx(0.5)
        assert outcome.f1 == pytest.approx(0.5)

    def test_undefined_when_no_ee(self):
        outcome = self._outcome([("E1", "E1")])
        assert outcome.precision is None
        assert outcome.recall is None

    def test_result_averages_skip_undefined(self):
        result = EeResult(
            outcomes=[
                self._outcome([(OUT_OF_KB, OUT_OF_KB)]),
                self._outcome([("E1", "E1")]),  # no EE at all
            ]
        )
        assert result.precision == 1.0
        assert result.recall == 1.0

    def test_micro_macro_accuracy(self):
        result = EeResult(
            outcomes=[
                self._outcome([("E1", "E1"), ("E2", "X")]),
                self._outcome([(OUT_OF_KB, OUT_OF_KB)]),
            ]
        )
        assert result.micro_accuracy == pytest.approx(2 / 3)
        assert result.macro_accuracy == pytest.approx(0.75)

    def test_f1_zero_when_all_wrong(self):
        outcome = self._outcome([(OUT_OF_KB, "E1"), ("E2", OUT_OF_KB)])
        assert outcome.f1 == 0.0


class TestRanking:
    def test_spearman_perfect(self):
        assert spearman(["a", "b", "c"], ["a", "b", "c"]) == 1.0

    def test_spearman_reversed(self):
        assert spearman(["a", "b", "c"], ["c", "b", "a"]) == -1.0

    def test_spearman_requires_same_items(self):
        with pytest.raises(ValueError):
            spearman(["a"], ["b"])

    def test_spearman_single_item(self):
        assert spearman(["a"], ["a"]) == 1.0

    def test_pr_curve_downsampled(self):
        points = [(i / 100, 1.0) for i in range(1, 101)]
        sampled = precision_recall_curve(points, num_points=10)
        assert len(sampled) == 10

    def test_pr_curve_short_input(self):
        points = [(0.5, 1.0)]
        assert precision_recall_curve(points, num_points=10) == points

    def test_cumulative_accuracy(self):
        records = [(1, True), (1, False), (5, True), (10, False)]
        curve = cumulative_accuracy_by_links(records)
        assert curve[0] == (1, 0.5)
        assert curve[1] == (5, pytest.approx(2 / 3))

    def test_cumulative_accuracy_max_links(self):
        records = [(1, True), (500, False)]
        curve = cumulative_accuracy_by_links(records, max_links=100)
        assert curve == [(1, 1.0)]

    def test_link_averaged_accuracy(self):
        records = [(1, True), (1, True), (5, False)]
        # Groups: links=1 -> 1.0; links=5 -> 0.0; average = 0.5.
        assert link_averaged_accuracy(records) == pytest.approx(0.5)

    def test_link_averaged_empty(self):
        assert link_averaged_accuracy([]) == 0.0
