"""Tests for the confidence assessors (Section 5.4)."""

import pytest

from repro.confidence.combined import ConfAssessor
from repro.confidence.normalization import (
    normalization_confidence,
    normalized_scores,
)
from repro.confidence.perturb_entities import EntityPerturbationConfidence
from repro.confidence.perturb_mentions import MentionPerturbationConfidence
from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.datagen.documents import DocumentSpec
from repro.types import Mention, MentionAssignment


class TestNormalization:
    def test_distribution_sums_to_one(self):
        scores = normalized_scores({"A": 3.0, "B": 1.0})
        assert sum(scores.values()) == pytest.approx(1.0)
        assert scores["A"] == pytest.approx(0.75)

    def test_negative_scores_shifted(self):
        scores = normalized_scores({"A": -1.0, "B": 1.0})
        assert scores["A"] == 0.0
        assert scores["B"] == 1.0

    def test_all_zero_uniform(self):
        scores = normalized_scores({"A": 0.0, "B": 0.0})
        assert scores["A"] == pytest.approx(0.5)

    def test_empty(self):
        assert normalized_scores({}) == {}

    def test_assignment_confidence(self):
        mention = Mention(surface="x", start=0, end=1)
        assignment = MentionAssignment(
            mention=mention,
            entity="A",
            candidate_scores={"A": 4.0, "B": 1.0},
        )
        assert normalization_confidence(assignment) == pytest.approx(0.8)

    def test_confidence_of_unscored_assignment(self):
        mention = Mention(surface="x", start=0, end=1)
        assignment = MentionAssignment(mention=mention, entity="A")
        assert normalization_confidence(assignment) == 0.0


@pytest.fixture(scope="module")
def pipeline(kb):
    return AidaDisambiguator(kb, config=AidaConfig.robust_prior_sim())


@pytest.fixture(scope="module")
def clear_doc(world, doc_generator):
    """A document with strong context for every mention."""
    spec = DocumentSpec(
        doc_id="conf-clear",
        cluster_ids=[0],
        num_mentions=5,
        context_prob=1.0,
        ambiguous_prob=0.4,
    )
    return doc_generator.generate(spec).document


class TestMentionPerturbation:
    def test_confidences_in_unit_interval(self, pipeline, clear_doc):
        assessor = MentionPerturbationConfidence(pipeline, rounds=6, seed=1)
        confidences = assessor.assess(clear_doc)
        assert set(confidences) == set(clear_doc.mentions)
        for value in confidences.values():
            assert 0.0 <= value <= 1.0

    def test_deterministic(self, pipeline, clear_doc):
        a = MentionPerturbationConfidence(pipeline, rounds=4, seed=9)
        b = MentionPerturbationConfidence(pipeline, rounds=4, seed=9)
        assert a.assess(clear_doc) == b.assess(clear_doc)

    def test_invalid_params(self, pipeline):
        with pytest.raises(ValueError):
            MentionPerturbationConfidence(pipeline, rounds=0)
        with pytest.raises(ValueError):
            MentionPerturbationConfidence(pipeline, keep_probability=0.0)

    def test_empty_document(self, pipeline):
        from repro.types import Document

        doc = Document(doc_id="empty", tokens=("nothing",), mentions=())
        assessor = MentionPerturbationConfidence(pipeline, rounds=2)
        assert assessor.assess(doc) == {}


class TestEntityPerturbation:
    def test_confidences_in_unit_interval(self, pipeline, clear_doc):
        assessor = EntityPerturbationConfidence(pipeline, rounds=6, seed=2)
        confidences = assessor.assess(clear_doc)
        for value in confidences.values():
            assert 0.0 <= value <= 1.0

    def test_strong_context_high_confidence(self, pipeline, clear_doc):
        assessor = EntityPerturbationConfidence(pipeline, rounds=8, seed=2)
        confidences = assessor.assess(clear_doc)
        # With own context for every mention, most should be stable.
        stable = sum(1 for v in confidences.values() if v >= 0.5)
        assert stable >= len(confidences) / 2

    def test_invalid_params(self, pipeline):
        with pytest.raises(ValueError):
            EntityPerturbationConfidence(pipeline, rounds=0)
        with pytest.raises(ValueError):
            EntityPerturbationConfidence(pipeline, flip_probability=1.0)


class TestConfAssessor:
    def test_confidence_attached_to_result(self, pipeline, clear_doc):
        assessor = ConfAssessor(pipeline, rounds=4, seed=3)
        result = assessor.disambiguate_with_confidence(clear_doc)
        for assignment in result.assignments:
            assert assignment.confidence is not None
            assert 0.0 <= assignment.confidence <= 1.0

    def test_assess_view(self, pipeline, clear_doc):
        assessor = ConfAssessor(pipeline, rounds=4, seed=3)
        confidences = assessor.assess(clear_doc)
        assert set(confidences) == set(clear_doc.mentions)

    def test_norm_weight_extremes(self, pipeline, clear_doc):
        norm_only = ConfAssessor(
            pipeline, rounds=2, norm_weight=1.0, seed=3
        )
        result = norm_only.disambiguate_with_confidence(clear_doc)
        for assignment in result.assignments:
            expected = normalization_confidence(assignment)
            assert assignment.confidence == pytest.approx(expected)

    def test_invalid_norm_weight(self, pipeline):
        with pytest.raises(ValueError):
            ConfAssessor(pipeline, norm_weight=1.5)
