"""Tests for the AIDA pipeline on a hand-built Page/Kashmir scenario.

The fixture reproduces the paper's running example: "Page" is dominated by
the executive in the prior but the guitarist fits rock contexts; "Kashmir"
is dominated by the region but coherence with the guitarist identifies the
song.
"""

import pytest

from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.kb.entity import Entity
from repro.kb.knowledge_base import KnowledgeBase
from repro.types import Document, Mention, OUT_OF_KB


def _build_kb() -> KnowledgeBase:
    kb = KnowledgeBase()
    entities = [
        ("Jimmy_Page", "Jimmy Page", ("guitarist",)),
        ("Larry_Page", "Larry Page", ("executive",)),
        ("Kashmir_Song", "Kashmir (song)", ("song",)),
        ("Kashmir_Region", "Kashmir (region)", ("region",)),
        ("Led_Zeppelin", "Led Zeppelin", ("band",)),
        ("Search_Co", "Search Co", ("company",)),
    ]
    for entity_id, name, types in entities:
        kb.add_entity(
            Entity(entity_id=entity_id, canonical_name=name, types=types)
        )
    d = kb.dictionary
    d.add_name("Page", "Larry_Page", source="anchor", anchor_count=70)
    d.add_name("Page", "Jimmy_Page", source="anchor", anchor_count=30)
    d.add_name("Kashmir", "Kashmir_Region", source="anchor", anchor_count=91)
    d.add_name("Kashmir", "Kashmir_Song", source="anchor", anchor_count=9)
    d.add_name("Zeppelin", "Led_Zeppelin", source="anchor", anchor_count=10)
    kp = kb.keyphrases
    kp.add_keyphrase("Jimmy_Page", ("gibson", "guitar"), 3)
    kp.add_keyphrase("Jimmy_Page", ("hard", "rock"), 2)
    kp.add_keyphrase("Jimmy_Page", ("led", "zeppelin"), 2)
    kp.add_keyphrase("Larry_Page", ("search", "engine"), 3)
    kp.add_keyphrase("Larry_Page", ("internet", "company"), 2)
    kp.add_keyphrase("Kashmir_Song", ("led", "zeppelin"), 2)
    kp.add_keyphrase("Kashmir_Song", ("hard", "rock"), 1)
    kp.add_keyphrase("Kashmir_Song", ("unusual", "chords"), 1)
    kp.add_keyphrase("Kashmir_Region", ("himalaya", "mountains"), 3)
    kp.add_keyphrase("Kashmir_Region", ("border", "conflict"), 2)
    kp.add_keyphrase("Led_Zeppelin", ("hard", "rock"), 2)
    kp.add_keyphrase("Led_Zeppelin", ("english", "band"), 2)
    kp.add_keyphrase("Search_Co", ("search", "engine"), 2)
    kp.add_keyphrase("Search_Co", ("web", "index"), 1)
    # Link structure: rock entities share inlinkers; so do tech entities.
    for linker in ("Led_Zeppelin", "Search_Co"):
        pass
    kb.links.add_link("Led_Zeppelin", "Jimmy_Page")
    kb.links.add_link("Led_Zeppelin", "Kashmir_Song")
    kb.links.add_link("Kashmir_Song", "Jimmy_Page")
    kb.links.add_link("Jimmy_Page", "Kashmir_Song")
    kb.links.add_link("Jimmy_Page", "Led_Zeppelin")
    kb.links.add_link("Search_Co", "Larry_Page")
    kb.links.add_link("Larry_Page", "Search_Co")
    return kb


def _doc(tokens, surfaces):
    """Build a document whose mentions are the given (surface, position)
    pairs; positions are token offsets of single-token mentions."""
    mentions = tuple(
        Mention(surface=surface, start=pos, end=pos + 1)
        for surface, pos in surfaces
    )
    return Document(doc_id="t", tokens=tuple(tokens), mentions=mentions)


@pytest.fixture(scope="module")
def kb():
    return _build_kb()


class TestSimilarityOnly:
    def test_context_resolves_page(self, kb):
        aida = AidaDisambiguator(kb, config=AidaConfig.sim_only())
        doc = _doc(
            ["Page", "played", "unusual", "chords", "on", "his",
             "gibson", "guitar", "."],
            [("Page", 0)],
        )
        result = aida.disambiguate(doc)
        assert result.assignments[0].entity == "Jimmy_Page"

    def test_tech_context_resolves_other_page(self, kb):
        aida = AidaDisambiguator(kb, config=AidaConfig.sim_only())
        doc = _doc(
            ["Page", "built", "a", "search", "engine", "for", "the",
             "internet", "company", "."],
            [("Page", 0)],
        )
        result = aida.disambiguate(doc)
        assert result.assignments[0].entity == "Larry_Page"


class TestPriorModes:
    def test_prior_only_follows_popularity(self, kb):
        aida = AidaDisambiguator(kb, config=AidaConfig.prior_only())
        doc = _doc(
            ["Kashmir", "has", "hard", "rock", "chords", "."],
            [("Kashmir", 0)],
        )
        result = aida.disambiguate(doc)
        assert result.assignments[0].entity == "Kashmir_Region"

    def test_prior_test_blocks_misleading_prior(self, kb):
        # "Page" has a 70/30 prior (< rho = 0.9): the prior is disregarded
        # and context wins.
        aida = AidaDisambiguator(kb, config=AidaConfig.robust_prior_sim())
        doc = _doc(
            ["Page", "played", "hard", "rock", "on", "a", "gibson",
             "guitar", "."],
            [("Page", 0)],
        )
        result = aida.disambiguate(doc)
        assert result.assignments[0].entity == "Jimmy_Page"

    def test_prior_test_keeps_dominant_prior(self, kb):
        # "Kashmir" has a 91/9 prior (>= rho): with no context at all the
        # prior-backed region wins.
        aida = AidaDisambiguator(kb, config=AidaConfig.robust_prior_sim())
        doc = _doc(
            ["Kashmir", "was", "mentioned", "."],
            [("Kashmir", 0)],
        )
        result = aida.disambiguate(doc)
        assert result.assignments[0].entity == "Kashmir_Region"


class TestCoherence:
    def test_joint_disambiguation_example(self, kb):
        # The paper's example: "They performed Kashmir, written by Page."
        # Kashmir alone would go to the region; coherence with Jimmy Page
        # (identified by his guitar context) pulls it to the song.
        aida = AidaDisambiguator(kb, config=AidaConfig.full())
        doc = _doc(
            ["They", "performed", "Kashmir", "written", "by", "Page", ".",
             "Page", "played", "unusual", "chords", "on", "his", "gibson",
             "guitar", "and", "hard", "rock", "with", "led", "zeppelin",
             "."],
            [("Kashmir", 2), ("Page", 5)],
        )
        result = aida.disambiguate(doc)
        as_map = {a.mention.surface: a.entity for a in result.assignments}
        assert as_map["Page"] == "Jimmy_Page"
        assert as_map["Kashmir"] == "Kashmir_Song"

    def test_candidate_scores_populated(self, kb):
        aida = AidaDisambiguator(kb, config=AidaConfig.full())
        doc = _doc(
            ["Page", "played", "gibson", "guitar", "."], [("Page", 0)]
        )
        result = aida.disambiguate(doc)
        scores = result.assignments[0].candidate_scores
        assert set(scores) == {"Jimmy_Page", "Larry_Page"}


class TestHooks:
    def test_out_of_kb_for_unknown_name(self, kb):
        aida = AidaDisambiguator(kb)
        doc = _doc(["Snowden", "spoke", "."], [("Snowden", 0)])
        result = aida.disambiguate(doc)
        assert result.assignments[0].entity == OUT_OF_KB

    def test_restrict_to_subset(self, kb):
        aida = AidaDisambiguator(kb)
        doc = _doc(
            ["Kashmir", "and", "Page", "met", "."],
            [("Kashmir", 0), ("Page", 2)],
        )
        result = aida.disambiguate(doc, restrict_to=[1])
        assert len(result.assignments) == 1
        assert result.assignments[0].mention.surface == "Page"

    def test_fixed_pins_entity(self, kb):
        aida = AidaDisambiguator(kb)
        doc = _doc(["Page", "did", "things", "."], [("Page", 0)])
        result = aida.disambiguate(doc, fixed={0: "Larry_Page"})
        assert result.assignments[0].entity == "Larry_Page"

    def test_extra_candidates_join_pool(self, kb):
        aida = AidaDisambiguator(kb, config=AidaConfig.sim_only())
        doc = _doc(["Page", "spoke", "."], [("Page", 0)])
        result = aida.disambiguate(
            doc, extra_candidates={0: ["Custom_Entity"]}
        )
        assert "Custom_Entity" in result.assignments[0].candidate_scores

    def test_entity_edge_factor_dampens(self, kb):
        # Disable the coherence test so the mention is not pre-fixed
        # before the damping factor can act on the graph.
        aida = AidaDisambiguator(
            kb, config=AidaConfig.robust_prior_sim_coherence()
        )
        # Strong guitarist context plus a trace of executive context, so
        # both candidates carry weight and damping one flips the outcome.
        doc = _doc(
            ["Page", "played", "gibson", "guitar", "hard", "rock",
             "near", "a", "search", "engine", "."],
            [("Page", 0)],
        )
        baseline = aida.disambiguate(doc)
        dampened = aida.disambiguate(
            doc, entity_edge_factor={"Jimmy_Page": 0.0}
        )
        assert baseline.assignments[0].entity == "Jimmy_Page"
        assert dampened.assignments[0].entity == "Larry_Page"

    def test_deterministic(self, kb):
        aida = AidaDisambiguator(kb, config=AidaConfig.full())
        doc = _doc(
            ["Kashmir", "played", "by", "Page", "on", "gibson", "guitar",
             "."],
            [("Kashmir", 0), ("Page", 3)],
        )
        first = aida.disambiguate(doc).as_map()
        second = aida.disambiguate(doc).as_map()
        assert first == second


class TestPipelineStats:
    def test_stats_attached_with_coherence(self, kb):
        aida = AidaDisambiguator(kb, config=AidaConfig.full())
        doc = _doc(
            ["Kashmir", "played", "by", "Page", "on", "gibson", "guitar",
             "."],
            [("Kashmir", 0), ("Page", 3)],
        )
        result = aida.disambiguate(doc)
        stats = result.stats
        assert stats is not None
        assert aida.last_stats is stats
        for phase in (
            "candidate_retrieval",
            "feature_computation",
            "graph_build",
            "solve",
            "post_process",
        ):
            assert stats.phase_seconds[phase] >= 0.0
        assert stats.counters["mentions"] == 2
        assert stats.counters["candidates"] >= 2
        assert stats.counters["graph_entities"] >= 2
        assert stats.counters["solver_iterations"] >= 0
        assert stats.counters["solver_heap_pops"] >= 0
        assert stats.total_seconds == pytest.approx(
            sum(stats.phase_seconds.values())
        )
        assert set(stats.as_dict()) == {
            "phase_seconds",
            "total_seconds",
            "counters",
        }

    def test_stats_without_coherence(self, kb):
        aida = AidaDisambiguator(kb, config=AidaConfig.sim_only())
        doc = _doc(
            ["Page", "played", "gibson", "guitar", "."],
            [("Page", 0)],
        )
        result = aida.disambiguate(doc)
        stats = result.stats
        assert stats is not None
        assert "solve" in stats.phase_seconds
        assert "graph_build" not in stats.phase_seconds
        assert "solver_iterations" not in stats.counters
