"""The selectable coherence backend (``AidaConfig.relatedness_backend``).

End-to-end wiring of the KORE_LSH production path: config validation, the
backend factory, KB-wide sketch precomputation at pipeline construction,
compiled-model attachment through the wrapper chain, and the
``relatedness.lsh.*`` observability counters.
"""

import pytest

from repro.core.config import RELATEDNESS_BACKENDS, AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, set_metrics
from repro.relatedness import (
    CachingRelatedness,
    KoreLshRelatedness,
    KoreRelatedness,
    MilneWittenRelatedness,
)


class TestConfigValidation:
    def test_default_is_milne_witten(self):
        assert AidaConfig().relatedness_backend == "mw"

    @pytest.mark.parametrize("backend", RELATEDNESS_BACKENDS)
    def test_known_backends_accepted(self, backend):
        config = AidaConfig(relatedness_backend=backend)
        assert config.relatedness_backend == backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            AidaConfig(relatedness_backend="bogus")


class TestBackendFactory:
    def test_mw(self, kb):
        measure = AidaDisambiguator.build_relatedness(kb, AidaConfig())
        assert isinstance(measure, MilneWittenRelatedness)

    def test_kore(self, kb):
        measure = AidaDisambiguator.build_relatedness(
            kb, AidaConfig(relatedness_backend="kore")
        )
        assert isinstance(measure, KoreRelatedness)

    @pytest.mark.parametrize(
        "backend,name,rows",
        [("kore_lsh_g", "KORE_LSH-G", 1), ("kore_lsh_f", "KORE_LSH-F", 2)],
    )
    def test_lsh_parameterizations(self, kb, backend, name, rows):
        measure = AidaDisambiguator.build_relatedness(
            kb, AidaConfig(relatedness_backend=backend)
        )
        assert isinstance(measure, KoreLshRelatedness)
        assert measure.name == name
        assert measure.settings.entity_rows == rows

    def test_sketches_passed_through(self, kb):
        config = AidaConfig(relatedness_backend="kore_lsh_g")
        donor = AidaDisambiguator.build_relatedness(kb, config)
        donor.precompute()
        receiver = AidaDisambiguator.build_relatedness(
            kb, config, sketches=donor.export_sketches()
        )
        assert (
            receiver.export_sketches() == donor.export_sketches()
        )


class TestPipelineWiring:
    def test_sketches_precomputed_kb_wide(self, kb):
        pipeline = AidaDisambiguator(
            kb, config=AidaConfig(relatedness_backend="kore_lsh_g")
        )
        measure = pipeline.relatedness
        assert isinstance(measure, KoreLshRelatedness)
        sketched = set(measure.export_sketches())
        assert sketched >= set(kb.keyphrases.entity_ids())

    def test_compiled_attached_through_chain(self, kb):
        pipeline = AidaDisambiguator(
            kb, config=AidaConfig(relatedness_backend="kore_lsh_g")
        )
        assert pipeline.compiled is not None
        assert pipeline.relatedness.inner.compiled is pipeline.compiled

    def test_compiled_attached_through_cache_wrapper(self, kb):
        config = AidaConfig(relatedness_backend="kore_lsh_g")
        wrapped = CachingRelatedness(
            AidaDisambiguator.build_relatedness(kb, config)
        )
        pipeline = AidaDisambiguator(kb, relatedness=wrapped, config=config)
        assert wrapped.inner.inner.compiled is pipeline.compiled

    def test_lsh_disambiguation_runs(self, kb, sample_docs):
        pipeline = AidaDisambiguator(
            kb, config=AidaConfig(relatedness_backend="kore_lsh_g")
        )
        result = pipeline.disambiguate(sample_docs[0].document)
        assert result.assignments
        measure = pipeline.relatedness
        assert measure.prepared_tasks == 1
        assert measure.pruned_pairs + measure.survived_pairs > 0

    def test_lsh_computes_no_more_than_exact_kore(self, kb, sample_docs):
        exact = AidaDisambiguator(
            kb, config=AidaConfig(relatedness_backend="kore")
        )
        pruned = AidaDisambiguator(
            kb, config=AidaConfig(relatedness_backend="kore_lsh_g")
        )
        for annotated in sample_docs[:3]:
            exact.disambiguate(annotated.document)
            pruned.disambiguate(annotated.document)
        assert (
            pruned.relatedness.comparisons <= exact.relatedness.comparisons
        )

    def test_lsh_counters_published(self, kb, sample_docs):
        previous = set_metrics(MetricsRegistry())
        try:
            pipeline = AidaDisambiguator(
                kb, config=AidaConfig(relatedness_backend="kore_lsh_f")
            )
            pipeline.disambiguate(sample_docs[0].document)
            snapshot = set_metrics(previous).snapshot()
        except BaseException:
            set_metrics(previous)
            raise
        counters = snapshot["counters"]
        assert "relatedness.lsh.pruned" in counters
        assert "relatedness.lsh.survived" in counters
        assert (
            counters["relatedness.lsh.pruned"]
            + counters["relatedness.lsh.survived"]
            > 0
        )
        histograms = snapshot["histograms"]
        assert histograms["relatedness.lsh.prepare_ms"]["count"] >= 1
