"""Tests for AIDA configuration and the robustness tests."""

import pytest

from repro.core.config import AidaConfig, PriorMode
from repro.core.robustness import (
    coherence_robustness_distance,
    passes_prior_test,
    should_fix_mention,
)
from repro.errors import ConfigurationError


class TestConfig:
    def test_defaults_match_paper(self):
        config = AidaConfig()
        assert config.prior_threshold == pytest.approx(0.9)
        assert config.coherence_threshold == pytest.approx(0.9)
        assert config.gamma == pytest.approx(0.40)
        assert config.prior_mix == pytest.approx(0.566)

    def test_named_variants(self):
        assert AidaConfig.prior_only().prior_mode is PriorMode.ONLY
        assert AidaConfig.sim_only().prior_mode is PriorMode.NEVER
        assert AidaConfig.prior_sim().prior_mode is PriorMode.ALWAYS
        assert not AidaConfig.robust_prior_sim().use_coherence
        coh = AidaConfig.robust_prior_sim_coherence()
        assert coh.use_coherence and not coh.use_coherence_test
        full = AidaConfig.full()
        assert full.use_coherence and full.use_coherence_test

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"prior_threshold": 1.5},
            {"coherence_threshold": -0.1},
            {"gamma": 2.0},
            {"prior_mix": -0.2},
            {"max_keyphrases": -1},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            AidaConfig(**kwargs)


class TestPriorTest:
    def test_dominant_prior_passes(self):
        assert passes_prior_test({"A": 0.95, "B": 0.05}, threshold=0.9)

    def test_split_prior_fails(self):
        assert not passes_prior_test({"A": 0.6, "B": 0.4}, threshold=0.9)

    def test_empty_distribution_fails(self):
        assert not passes_prior_test({}, threshold=0.9)


class TestCoherenceTest:
    def test_agreeing_distributions_have_small_distance(self):
        prior = {"A": 0.8, "B": 0.2}
        sims = {"A": 0.8, "B": 0.2}
        assert coherence_robustness_distance(prior, sims) == pytest.approx(
            0.0
        )

    def test_disagreeing_distributions_have_large_distance(self):
        prior = {"A": 1.0, "B": 0.0}
        sims = {"A": 0.0, "B": 1.0}
        assert coherence_robustness_distance(prior, sims) == pytest.approx(
            2.0
        )

    def test_distance_bounded(self):
        prior = {"A": 0.7, "B": 0.3}
        sims = {"A": 0.1, "B": 0.9}
        distance = coherence_robustness_distance(prior, sims)
        assert 0.0 <= distance <= 2.0

    def test_unnormalized_sims_are_normalized(self):
        prior = {"A": 0.5, "B": 0.5}
        sims = {"A": 10.0, "B": 10.0}
        assert coherence_robustness_distance(prior, sims) == pytest.approx(
            0.0
        )

    def test_fix_on_agreement(self):
        prior = {"A": 0.9, "B": 0.1}
        sims = {"A": 0.85, "B": 0.15}
        assert should_fix_mention(prior, sims, threshold=0.9)

    def test_no_fix_on_disagreement(self):
        prior = {"A": 0.95, "B": 0.05}
        sims = {"A": 0.05, "B": 0.95}
        assert not should_fix_mention(prior, sims, threshold=0.9)

    def test_single_candidate_always_fixed(self):
        assert should_fix_mention({"A": 1.0}, {"A": 0.0}, threshold=0.9)
