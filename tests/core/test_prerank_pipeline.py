"""Pre-ranker wired into the pipeline: stages, counters, exactness."""

from __future__ import annotations

import pytest

from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.embeddings import (
    EmbeddingConfig,
    EmbeddingRelatedness,
    EmbeddingSimilarity,
    shared_model,
)
from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, set_metrics

HUGE_K = 10 ** 6


def _config(**kwargs) -> AidaConfig:
    config = AidaConfig.full()
    for key, value in kwargs.items():
        setattr(config, key, value)
    config.validate()
    return config


def _comparable(result):
    return [
        (a.mention, a.entity, a.score) for a in result.assignments
    ]


@pytest.fixture(scope="module")
def model(kb):
    return shared_model(kb, EmbeddingConfig(dim=16, epochs=1))


class TestConfig:
    def test_prerank_topk_validated(self):
        with pytest.raises(ConfigurationError):
            AidaConfig(prerank_topk=0)

    def test_similarity_backend_validated(self):
        with pytest.raises(ConfigurationError):
            AidaConfig(similarity_backend="cosine-ish")

    def test_needs_embeddings(self):
        assert not AidaConfig.full().needs_embeddings
        assert AidaConfig(prerank_topk=4).needs_embeddings
        assert AidaConfig(similarity_backend="embedding").needs_embeddings
        assert AidaConfig(relatedness_backend="embedding").needs_embeddings


class TestStageAndCounters:
    def test_prerank_stage_absent_when_off(self, kb, sample_docs):
        pipeline = AidaDisambiguator(kb, config=_config())
        result = pipeline.disambiguate(sample_docs[0].document)
        assert "prerank" not in result.stats.phase_seconds
        assert "prerank_pruned" not in result.stats.counters

    def test_prerank_stage_present_when_on(
        self, kb, sample_docs, model
    ):
        pipeline = AidaDisambiguator(
            kb, config=_config(prerank_topk=1), embedding_model=model
        )
        result = pipeline.disambiguate(sample_docs[0].document)
        assert "prerank" in result.stats.phase_seconds
        counters = result.stats.counters
        assert counters["prerank_pruned"] >= 0
        assert counters["prerank_survived"] >= 1

    def test_k1_prunes_on_ambiguous_docs(self, kb, sample_docs, model):
        pipeline = AidaDisambiguator(
            kb, config=_config(prerank_topk=1), embedding_model=model
        )
        pruned = sum(
            pipeline.disambiguate(doc.document).stats.counters[
                "prerank_pruned"
            ]
            for doc in sample_docs
        )
        assert pruned > 0

    def test_metrics_published_only_when_active(
        self, kb, sample_docs, model
    ):
        previous = set_metrics(MetricsRegistry())
        try:
            pipeline = AidaDisambiguator(
                kb, config=_config(prerank_topk=1), embedding_model=model
            )
            pipeline.disambiguate(sample_docs[0].document)
            snapshot = set_metrics(MetricsRegistry()).snapshot()
            assert "pipeline.prerank.pruned" in snapshot["counters"]
            assert "pipeline.prerank.survived" in snapshot["counters"]
            assert (
                "pipeline.stage.prerank.seconds" in snapshot["histograms"]
            )

            AidaDisambiguator(kb, config=_config()).disambiguate(
                sample_docs[0].document
            )
            snapshot = set_metrics(previous).snapshot()
            assert "pipeline.prerank.pruned" not in snapshot["counters"]
            assert (
                "pipeline.stage.prerank.seconds"
                not in snapshot["histograms"]
            )
        finally:
            set_metrics(previous)


class TestExactness:
    def test_huge_k_bit_identical(self, kb, sample_docs, model):
        baseline = AidaDisambiguator(kb, config=_config())
        pruned = AidaDisambiguator(
            kb,
            config=_config(prerank_topk=HUGE_K),
            embedding_model=model,
        )
        for doc in sample_docs:
            assert _comparable(
                pruned.disambiguate(doc.document)
            ) == _comparable(baseline.disambiguate(doc.document))

    def test_fixed_mentions_respected_under_pruning(
        self, kb, sample_docs, model
    ):
        pipeline = AidaDisambiguator(
            kb, config=_config(prerank_topk=1), embedding_model=model
        )
        document = sample_docs[0].document
        gold = sample_docs[0].gold
        fixed = {0: gold[0].entity}
        result = pipeline.disambiguate(document, fixed=fixed)
        by_mention = {a.mention: a.entity for a in result.assignments}
        assert by_mention[gold[0].mention] == gold[0].entity


class TestEmbeddingBackends:
    def test_embedding_similarity_pipeline(self, kb, sample_docs, model):
        pipeline = AidaDisambiguator(
            kb,
            config=_config(similarity_backend="embedding"),
            embedding_model=model,
        )
        assert isinstance(pipeline.similarity, EmbeddingSimilarity)
        result = pipeline.disambiguate(sample_docs[0].document)
        assert result.assignments

    def test_embedding_relatedness_pipeline(self, kb, sample_docs, model):
        pipeline = AidaDisambiguator(
            kb,
            config=_config(relatedness_backend="embedding"),
            embedding_model=model,
        )
        assert isinstance(pipeline.relatedness, EmbeddingRelatedness)
        result = pipeline.disambiguate(sample_docs[0].document)
        assert result.assignments

    def test_pure_embedding_config_skips_compiled_build(self, kb, model):
        pipeline = AidaDisambiguator(
            kb,
            config=_config(
                similarity_backend="embedding",
                relatedness_backend="embedding",
            ),
            embedding_model=model,
        )
        assert pipeline.compiled is None

    def test_explicit_model_used_verbatim(self, kb, model):
        pipeline = AidaDisambiguator(
            kb, config=_config(prerank_topk=4), embedding_model=model
        )
        assert pipeline.embeddings is model
        assert pipeline.preranker.model is model

    def test_shared_model_reused_across_pipelines(self, kb):
        first = AidaDisambiguator(kb, config=_config(prerank_topk=4))
        second = AidaDisambiguator(kb, config=_config(prerank_topk=2))
        assert first.embeddings is second.embeddings

    def test_build_relatedness_embedding_backend(self, kb, model):
        measure = AidaDisambiguator.build_relatedness(
            kb, _config(relatedness_backend="embedding"), embeddings=model
        )
        assert isinstance(measure, EmbeddingRelatedness)
        assert measure.model is model
