"""Unit tests for the batch execution layer (:mod:`repro.core.batch`).

These tests exercise the runner's contracts in isolation with toy
pipelines: deterministic input-order results whatever the completion
order, per-document error isolation, executor selection/degradation, and
the back-pressure window.  The end-to-end equivalence against the serial
evaluation path lives in ``tests/test_differential_batch.py``.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.batch import (
    BatchConfig,
    BatchError,
    BatchOutcome,
    BatchRunner,
    DocumentFailure,
)
from repro.obs import MetricsRegistry, get_metrics, set_metrics
from repro.utils.timing import PipelineStats
from repro.types import (
    DisambiguationResult,
    Document,
    Mention,
    MentionAssignment,
)


def _doc(index: int) -> Document:
    return Document(doc_id=f"doc-{index}", tokens=("tok", str(index)))


def _result_for(document: Document) -> DisambiguationResult:
    mention = Mention(surface=document.tokens[1], start=1, end=2)
    return DisambiguationResult(
        doc_id=document.doc_id,
        assignments=[
            MentionAssignment(
                mention=mention, entity=f"E_{document.doc_id}", score=1.0
            )
        ],
    )


class EchoPipeline:
    """Deterministic toy pipeline; picklable for process pools."""

    def disambiguate(self, document: Document) -> DisambiguationResult:
        return _result_for(document)


class ReversedLatencyPipeline(EchoPipeline):
    """Earlier documents take *longer*, forcing out-of-order completion."""

    def __init__(self, total: int):
        self.total = total

    def disambiguate(self, document: Document) -> DisambiguationResult:
        index = int(document.doc_id.split("-")[1])
        time.sleep(0.002 * (self.total - index))
        return super().disambiguate(document)


class FlakyPipeline(EchoPipeline):
    """Raises for configured doc ids; picklable for process pools."""

    def __init__(self, bad_ids):
        self.bad_ids = set(bad_ids)

    def disambiguate(self, document: Document) -> DisambiguationResult:
        if document.doc_id in self.bad_ids:
            raise RuntimeError(f"boom on {document.doc_id}")
        return super().disambiguate(document)


class StatsPipeline(EchoPipeline):
    """Attaches per-document PipelineStats; picklable for process pools."""

    def disambiguate(self, document: Document) -> DisambiguationResult:
        index = int(document.doc_id.split("-")[1])
        result = _result_for(document)
        result.stats = PipelineStats(
            phase_seconds={"solve": 0.25, "graph_build": 0.5},
            counters={
                "mentions": 2,
                "relatedness_cache_hits": 10 * (index + 1),
                "post_process": "keep",
            },
        )
        return result


class MeteredPipeline(EchoPipeline):
    """Records to whatever registry is live in its (worker) process."""

    def disambiguate(self, document: Document) -> DisambiguationResult:
        metrics = get_metrics()
        metrics.counter("toy.documents").inc()
        metrics.histogram("toy.seconds").observe(0.001)
        return super().disambiguate(document)


def _make_flaky_for_process():
    return FlakyPipeline({"doc-2"})


def _make_echo_for_process():
    return EchoPipeline()


def _make_stats_for_process():
    return StatsPipeline()


def _make_metered_for_process():
    return MeteredPipeline()


class TestBatchConfig:
    def test_defaults_are_serial_single_worker(self):
        config = BatchConfig()
        assert config.workers == 1
        assert config.effective_workers == 1

    def test_rejects_bad_values(self):
        with pytest.raises(BatchError):
            BatchConfig(workers=0)
        with pytest.raises(BatchError):
            BatchConfig(executor="fibers")
        with pytest.raises(BatchError):
            BatchConfig(max_pending=0)

    def test_serial_executor_caps_effective_workers(self):
        config = BatchConfig(workers=8, executor="serial")
        assert config.effective_workers == 1


class TestRunnerConstruction:
    def test_requires_some_pipeline(self):
        with pytest.raises(BatchError):
            BatchRunner()

    def test_process_requires_factory(self):
        with pytest.raises(BatchError):
            BatchRunner(
                pipeline=EchoPipeline(),
                config=BatchConfig(workers=2, executor="process"),
            )


class TestDeterministicOrdering:
    def test_results_in_input_order_despite_completion_order(self):
        documents = [_doc(i) for i in range(8)]
        runner = BatchRunner(
            pipeline=ReversedLatencyPipeline(len(documents)),
            config=BatchConfig(workers=4, executor="thread"),
        )
        outcome = runner.run(documents)
        assert outcome.ok
        assert [r.doc_id for r in outcome.results] == [
            d.doc_id for d in documents
        ]

    @pytest.mark.parametrize("workers", [1, 2, 5])
    def test_thread_results_match_serial(self, workers):
        documents = [_doc(i) for i in range(10)]
        serial = BatchRunner(pipeline=EchoPipeline()).run(documents)
        threaded = BatchRunner(
            pipeline=EchoPipeline(),
            config=BatchConfig(workers=workers, executor="thread"),
        ).run(documents)
        assert [r.assignments for r in serial.results] == [
            r.assignments for r in threaded.results
        ]

    def test_empty_corpus(self):
        outcome = BatchRunner(pipeline=EchoPipeline()).run([])
        assert outcome.ok
        assert outcome.results == []
        assert outcome.wall_seconds >= 0.0


class TestErrorIsolation:
    @pytest.mark.parametrize(
        "config",
        [
            BatchConfig(),
            BatchConfig(workers=3, executor="thread"),
        ],
    )
    def test_failures_recorded_not_raised(self, config):
        documents = [_doc(i) for i in range(6)]
        runner = BatchRunner(
            pipeline=FlakyPipeline({"doc-1", "doc-4"}), config=config
        )
        outcome = runner.run(documents)
        assert not outcome.ok
        assert [f.index for f in outcome.failures] == [1, 4]
        assert [f.doc_id for f in outcome.failures] == ["doc-1", "doc-4"]
        for failure in outcome.failures:
            assert "RuntimeError: boom" in failure.error
            assert "RuntimeError" in failure.traceback
        # Result slots line up: None exactly at the failed indexes.
        assert [i for i, r in enumerate(outcome.results) if r is None] == [
            1,
            4,
        ]
        assert len(outcome.successes) == 4

    def test_raise_on_failure(self):
        outcome = BatchOutcome(
            results=[None],
            failures=[
                DocumentFailure(index=0, doc_id="d", error="E: nope")
            ],
        )
        with pytest.raises(BatchError, match="d: E: nope"):
            outcome.raise_on_failure()
        BatchOutcome(results=[]).raise_on_failure()  # no-op when ok


class TestFactoriesAndSharing:
    def test_thread_factory_builds_one_pipeline_per_worker(self):
        built = []
        lock = threading.Lock()

        def factory():
            pipeline = EchoPipeline()
            with lock:
                built.append(pipeline)
            return pipeline

        runner = BatchRunner(
            pipeline_factory=factory,
            config=BatchConfig(workers=3, executor="thread"),
        )
        documents = [_doc(i) for i in range(12)]
        outcome = runner.run(documents)
        assert outcome.ok
        # Lazily built: at most one pipeline per worker thread, and the
        # pool reuses them across documents.
        assert 1 <= len(built) <= 3

    def test_max_pending_backpressure_still_complete_and_ordered(self):
        documents = [_doc(i) for i in range(9)]
        runner = BatchRunner(
            pipeline=ReversedLatencyPipeline(len(documents)),
            config=BatchConfig(
                workers=3, executor="thread", max_pending=2
            ),
        )
        outcome = runner.run(documents)
        assert outcome.ok
        assert [r.doc_id for r in outcome.results] == [
            d.doc_id for d in documents
        ]


class TestMergedStats:
    @pytest.mark.parametrize(
        "config,factory",
        [
            (BatchConfig(), None),
            (BatchConfig(workers=3, executor="thread"), None),
            (
                BatchConfig(workers=2, executor="process"),
                _make_stats_for_process,
            ),
        ],
        ids=["serial", "thread", "process"],
    )
    def test_outcome_carries_corpus_totals(self, config, factory):
        documents = [_doc(i) for i in range(6)]
        runner = BatchRunner(
            pipeline=None if factory else StatsPipeline(),
            pipeline_factory=factory,
            config=config,
        )
        outcome = runner.run(documents)
        assert outcome.ok
        merged = outcome.stats
        assert merged is not None
        assert merged.phase_seconds["solve"] == pytest.approx(6 * 0.25)
        assert merged.phase_seconds["graph_build"] == pytest.approx(3.0)
        assert merged.counters["mentions"] == 12
        # Cache counters are cumulative snapshots: max, not sum.
        assert merged.counters["relatedness_cache_hits"] == 60
        # Non-numeric counters are dropped from corpus totals.
        assert "post_process" not in merged.counters

    def test_stats_skip_failed_and_statless_documents(self):
        outcome = BatchRunner(
            pipeline=FlakyPipeline({"doc-1"}),
        ).run([_doc(i) for i in range(3)])
        assert outcome.stats is not None
        assert outcome.stats.phase_seconds == {}
        assert outcome.stats.counters == {}


class TestProcessMetricsMerge:
    @pytest.fixture
    def live_registry(self):
        registry = MetricsRegistry()
        set_metrics(registry)
        yield registry
        set_metrics(None)

    def test_worker_deltas_merge_into_parent(self, live_registry):
        documents = [_doc(i) for i in range(8)]
        outcome = BatchRunner(
            pipeline_factory=_make_metered_for_process,
            config=BatchConfig(workers=2, executor="process"),
        ).run(documents)
        assert outcome.ok
        assert live_registry.counter("toy.documents").value == 8
        assert live_registry.histogram("toy.seconds").count == 8
        assert live_registry.counter("batch.documents").value == 8
        assert live_registry.gauge("batch.queue_depth").value == 0

    def test_disabled_metrics_stay_disabled(self):
        assert not get_metrics().enabled
        outcome = BatchRunner(
            pipeline_factory=_make_metered_for_process,
            config=BatchConfig(workers=2, executor="process"),
        ).run([_doc(i) for i in range(3)])
        assert outcome.ok
        assert not get_metrics().enabled


class TestProcessExecutor:
    def test_process_results_ordered(self):
        documents = [_doc(i) for i in range(5)]
        runner = BatchRunner(
            pipeline_factory=_make_echo_for_process,
            config=BatchConfig(workers=2, executor="process"),
        )
        outcome = runner.run(documents)
        assert outcome.ok
        assert [r.doc_id for r in outcome.results] == [
            d.doc_id for d in documents
        ]
        assert outcome.results[3].assignments[0].entity == "E_doc-3"

    def test_process_error_isolation(self):
        documents = [_doc(i) for i in range(4)]
        runner = BatchRunner(
            pipeline_factory=_make_flaky_for_process,
            config=BatchConfig(workers=2, executor="process"),
        )
        outcome = runner.run(documents)
        assert [f.doc_id for f in outcome.failures] == ["doc-2"]
        assert outcome.results[2] is None
        assert len(outcome.successes) == 3
