"""Differential: compiled scorers versus reference over seeded worlds.

Twenty seeded synthetic worlds (override the base seed with
``COMPILED_DIFF_BASE_SEED``): for each, every (mention context,
candidate) simscore and every candidate-pair KORE relatedness is
computed by both the reference string/dict path and the compiled
integer-array path, and the values must agree within 1e-9.  The golden
fixture corpus gets the same treatment against the session KB, plus a
full-pipeline replay check (compiled on vs off) on its frozen documents.
"""

from __future__ import annotations

import os

import pytest

from repro.compiled import CompiledKeyphrases
from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.datagen.documents import DocumentGenerator, DocumentSpec
from repro.datagen.io import load_corpus
from repro.datagen.wikipedia import build_world_kb
from repro.datagen.world import World, WorldConfig
from repro.relatedness.kore import KoreRelatedness
from repro.similarity.context import DocumentContext
from repro.similarity.keyphrase_match import KeyphraseSimilarity
from repro.weights.model import WeightModel

BASE_SEED = int(os.environ.get("COMPILED_DIFF_BASE_SEED", "2203"))
WORLD_SEEDS = [BASE_SEED + i for i in range(20)]

DOCS_PER_WORLD = 2
MENTIONS_PER_DOC = 4

TOLERANCE = 1e-9

GOLDEN_CORPUS = os.path.join(
    os.path.dirname(__file__), "fixtures", "golden", "corpus.jsonl"
)


def _mention_contexts(kb, documents):
    """Yield (context, candidate ids) for every mention of the corpus."""
    for document in documents:
        for mention in document.mentions:
            candidates = sorted(kb.candidates(mention.surface))
            if not candidates:
                continue
            yield (
                DocumentContext(document, exclude_mention=mention),
                candidates,
            )


def _assert_scorers_agree(kb, documents):
    """Reference and compiled simscore + KORE agree within 1e-9."""
    store = kb.keyphrases
    weights = WeightModel(store, kb.links)
    compiled = CompiledKeyphrases(store, weights)
    reference_sim = KeyphraseSimilarity(store, weights)
    compiled_sim = KeyphraseSimilarity(store, weights, compiled=compiled)
    reference_kore = KoreRelatedness(store, weights)
    compiled_kore = KoreRelatedness(store, weights, compiled=compiled)
    entities = set()
    checked = 0
    for context, candidates in _mention_contexts(kb, documents):
        entities.update(candidates)
        reference = reference_sim.simscores(context, candidates)
        fast = compiled_sim.simscores(context, candidates)
        for entity_id in candidates:
            assert fast[entity_id] == pytest.approx(
                reference[entity_id], abs=TOLERANCE
            ), f"simscore diverged for {entity_id}"
            checked += 1
    assert checked > 0, "corpus produced no scoreable mention"
    ordered = sorted(entities)
    pairs = [
        (a, b)
        for i, a in enumerate(ordered)
        for b in ordered[i + 1 :]
    ][:60]
    assert pairs, "corpus produced no candidate pair"
    for a, b in pairs:
        assert compiled_kore.relatedness(a, b) == pytest.approx(
            reference_kore.relatedness(a, b), abs=TOLERANCE
        ), f"KORE diverged for ({a}, {b})"


@pytest.fixture(scope="module", params=WORLD_SEEDS)
def seeded_world(request):
    seed = request.param
    world = World.generate(WorldConfig(seed=seed, clusters_per_domain=2))
    kb, _wiki = build_world_kb(world, seed=seed + 94)
    generator = DocumentGenerator(world, seed=seed + 55)
    cluster_ids = sorted(world.clusters)
    documents = [
        generator.generate(
            DocumentSpec(
                doc_id=f"w{seed}-d{index}",
                cluster_ids=[cluster_ids[index % len(cluster_ids)]],
                num_mentions=MENTIONS_PER_DOC,
            )
        ).document
        for index in range(DOCS_PER_WORLD)
    ]
    return kb, documents


def test_world_scorers_agree(seeded_world):
    kb, documents = seeded_world
    _assert_scorers_agree(kb, documents)


def test_golden_scorers_agree(kb):
    documents = [item.document for item in load_corpus(GOLDEN_CORPUS)]
    _assert_scorers_agree(kb, documents)


def test_golden_pipeline_replay_compiled_vs_reference(kb):
    """Full pipeline on the golden corpus: compiled on == compiled off."""
    documents = [item.document for item in load_corpus(GOLDEN_CORPUS)]
    on = AidaDisambiguator(kb, config=AidaConfig.full())
    off_config = AidaConfig.full()
    off_config.use_compiled = False
    off = AidaDisambiguator(kb, config=off_config)
    assert on.compiled is not None and off.compiled is None
    for document in documents:
        got = on.disambiguate(document)
        want = off.disambiguate(document)
        for fast, slow in zip(got.assignments, want.assignments):
            assert fast.mention == slow.mention
            assert fast.entity == slow.entity
            assert fast.score == pytest.approx(
                slow.score, abs=TOLERANCE
            )
