"""Tests for the keyphrase store."""

import pytest

from repro.kb.keyphrases import KeyphraseStore


@pytest.fixture
def store():
    s = KeyphraseStore()
    s.add_keyphrase("E1", ("hard", "rock"), count=3)
    s.add_keyphrase("E1", ("guitar",))
    s.add_keyphrase("E2", ("hard", "rock"))
    s.add_keyphrase("E2", ("folk", "song"), count=2)
    return s


class TestCounts:
    def test_entity_count(self, store):
        assert store.entity_count == 2

    def test_keyphrases_sorted(self, store):
        assert store.keyphrases("E1") == [("guitar",), ("hard", "rock")]

    def test_keyphrase_counts(self, store):
        assert store.keyphrase_counts("E1")[("hard", "rock")] == 3

    def test_keywords_derived(self, store):
        assert store.keywords("E1") == ["guitar", "hard", "rock"]

    def test_keyword_counts_accumulate(self, store):
        store.add_keyphrase("E1", ("rock", "anthem"))
        assert store.keyword_counts("E1")["rock"] == 4  # 3 + 1

    def test_empty_phrase_ignored(self, store):
        store.add_keyphrase("E1", ())
        assert len(store.keyphrases("E1")) == 2

    def test_zero_count_ignored(self, store):
        store.add_keyphrase("E1", ("new",), count=0)
        assert ("new",) not in store.keyphrase_counts("E1")


class TestDocumentFrequencies:
    def test_phrase_df(self, store):
        assert store.phrase_df(("hard", "rock")) == 2
        assert store.phrase_df(("guitar",)) == 1
        assert store.phrase_df(("missing",)) == 0

    def test_word_df(self, store):
        assert store.word_df("rock") == 2
        assert store.word_df("folk") == 1

    def test_df_counts_entities_not_occurrences(self, store):
        # E1 already has "rock"; another phrase with "rock" must not bump df.
        store.add_keyphrase("E1", ("rock", "band"))
        assert store.word_df("rock") == 2

    def test_entities_with_word(self, store):
        assert store.entities_with_word("rock") == frozenset({"E1", "E2"})

    def test_entities_with_phrase(self, store):
        assert store.entities_with_phrase(("folk", "song")) == frozenset(
            {"E2"}
        )


class TestViews:
    def test_copy_is_independent(self, store):
        clone = store.copy()
        clone.add_keyphrase("E1", ("new", "phrase"))
        assert ("new", "phrase") not in store.keyphrases("E1")
        assert ("new", "phrase") in clone.keyphrases("E1")

    def test_copy_preserves_counts(self, store):
        clone = store.copy()
        assert clone.keyphrase_counts("E1") == store.keyphrase_counts("E1")
        assert clone.word_df("rock") == store.word_df("rock")

    def test_restricted_to(self, store):
        restricted = store.restricted_to(["E1"])
        assert restricted.entity_count == 1
        assert restricted.word_df("folk") == 0

    def test_top_keyphrases_ordering(self, store):
        top = store.top_keyphrases("E1", limit=1)
        assert top == [("hard", "rock")]  # count 3 beats count 1

    def test_top_keyphrases_unlimited(self, store):
        assert len(store.top_keyphrases("E1")) == 2

    def test_ensure_entity_registers_empty(self, store):
        store.ensure_entity("E3")
        assert "E3" in store
        assert store.keyphrases("E3") == []

    def test_vocabulary(self, store):
        assert "rock" in store.vocabulary()
        assert "folk" in store.vocabulary()
