"""Tests for the KB builder (article dump ingestion)."""

import pytest

from repro.kb.builder import (
    ArticleRecord,
    KnowledgeBaseBuilder,
    build_knowledge_base,
)
from repro.kb.entity import Entity


def _records():
    band = ArticleRecord(
        entity=Entity(
            entity_id="Led_Zeppelin",
            canonical_name="Led Zeppelin",
            types=("band",),
        ),
        anchors={
            ("Page", "Jimmy_Page"): 5,
            ("Kashmir", "Kashmir_Song"): 3,
        },
        categories=["english rock band"],
        citations=["hard rock pioneers"],
    )
    page = ArticleRecord(
        entity=Entity(
            entity_id="Jimmy_Page",
            canonical_name="Jimmy Page",
            types=("guitarist",),
        ),
        redirects=["James Page"],
        disambiguation_names=["Page"],
        anchors={("Led Zeppelin", "Led_Zeppelin"): 4},
        citations=["gibson guitar"],
    )
    song = ArticleRecord(
        entity=Entity(
            entity_id="Kashmir_Song",
            canonical_name="Kashmir",
            types=("song",),
        ),
        anchors={("Led Zeppelin", "Led_Zeppelin"): 2},
        facts=[("released_in", "1975")],
    )
    return [band, page, song]


@pytest.fixture
def kb():
    return build_knowledge_base(_records())


class TestEntities:
    def test_all_entities_registered(self, kb):
        assert len(kb) == 3

    def test_titles_in_dictionary(self, kb):
        assert "Led_Zeppelin" in kb.candidates("Led Zeppelin")

    def test_redirects_registered(self, kb):
        assert kb.candidates("James Page") == ["Jimmy_Page"]

    def test_disambiguation_names_registered(self, kb):
        assert "Jimmy_Page" in kb.candidates("Page")


class TestLinksAndAnchors:
    def test_links_from_anchors(self, kb):
        assert kb.links.has_link("Led_Zeppelin", "Jimmy_Page")
        assert kb.links.has_link("Jimmy_Page", "Led_Zeppelin")

    def test_anchor_counts_feed_prior(self, kb):
        assert kb.prior("Page", "Jimmy_Page") == pytest.approx(1.0)

    def test_anchor_to_unknown_target_skipped(self):
        record = ArticleRecord(
            entity=Entity(entity_id="A", canonical_name="A"),
            anchors={("Ghost", "Ghost_Entity"): 1},
        )
        kb = build_knowledge_base([record])
        assert kb.candidates("Ghost") == []
        assert kb.links.edge_count == 0


class TestKeyphrases:
    def test_anchor_texts_become_keyphrases(self, kb):
        assert ("kashmir",) in kb.entity_keyphrases("Led_Zeppelin")

    def test_categories_become_keyphrases(self, kb):
        assert ("english", "rock", "band") in kb.entity_keyphrases(
            "Led_Zeppelin"
        )

    def test_citations_become_keyphrases(self, kb):
        assert ("gibson", "guitar") in kb.entity_keyphrases("Jimmy_Page")

    def test_linking_titles_become_keyphrases(self, kb):
        # Led Zeppelin links to Kashmir_Song, so the band's title is a
        # keyphrase of the song.
        assert ("led", "zeppelin") in kb.entity_keyphrases("Kashmir_Song")


class TestFacts:
    def test_categories_recorded_as_triples(self, kb):
        assert kb.triples.objects("Led_Zeppelin", "category") == [
            "english rock band"
        ]

    def test_extra_facts_recorded(self, kb):
        assert kb.triples.objects("Kashmir_Song", "released_in") == ["1975"]


class TestBuilderApi:
    def test_article_count(self):
        builder = KnowledgeBaseBuilder()
        builder.add_articles(_records())
        assert builder.article_count == 3

    def test_re_adding_same_entity_overwrites(self):
        builder = KnowledgeBaseBuilder()
        records = _records()
        builder.add_articles(records)
        builder.add_article(records[0])
        assert builder.article_count == 3
