"""Concurrent snapshot readers during atomic swap: no torn reads, flat RSS.

One image path is concurrently mapped by 8 reader threads and 4 reader
processes while the main thread keeps swapping a second image in via the
documented recipe (write a temp file in the same directory, then
``os.replace``).  Every reader load must verify cleanly (every checksum
is re-checked on load, so a torn image cannot go unnoticed) and must
observe exactly one of the two valid fingerprints — never a mix.  A
second test pins the zero-copy claim: each extra process mapping the
image adds only a ~flat sliver of anonymous memory, far below the image
size, because the mapped pages are file-backed and shared.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import threading

import pytest

from repro.datagen.stress import StressConfig, generate_stress_kb
from repro.kb.snapshot import SnapshotError, build_snapshot, load_snapshot

THREAD_READERS = 8
PROCESS_READERS = 4
READS_PER_THREAD = 6
READS_PER_PROCESS = 3
SWAPS = 40

FINGERPRINTS = ("image-a", "image-b")


@pytest.fixture(scope="module")
def images(tmp_path_factory):
    """The live path plus the two master images that alternate onto it."""
    directory = tmp_path_factory.mktemp("snapswap")
    kb = generate_stress_kb(StressConfig(entities=2_000))
    masters = []
    for fingerprint in FINGERPRINTS:
        master = str(directory / f"{fingerprint}.snap")
        build_snapshot(kb, master, source_fingerprint=fingerprint)
        masters.append(master)
    live = str(directory / "live.snap")
    shutil.copy(masters[0], live)
    return live, masters


def _read_once(path: str) -> str:
    """One full-verify load; returns the fingerprint the reader saw."""
    snapshot = load_snapshot(path)  # verify=True re-checks every CRC
    try:
        fingerprint = snapshot.manifest["source_fingerprint"]
        assert snapshot.kb.entity_count == 2_000
        assert snapshot.store.entity_ids()
        return fingerprint
    finally:
        snapshot.close()


def _reader_process(path: str, rounds: int, queue) -> None:
    try:
        queue.put(("ok", [_read_once(path) for _ in range(rounds)]))
    except (SnapshotError, AssertionError) as exc:
        queue.put(("error", repr(exc)))


def _swap_forever(live: str, masters, stop: threading.Event) -> None:
    """Atomic-swap loop: temp copy in the same directory + os.replace."""
    index = 0
    while not stop.is_set():
        index += 1
        source = masters[index % len(masters)]
        temp = f"{live}.next"
        shutil.copy(source, temp)
        os.replace(temp, live)


def test_no_reader_observes_a_torn_image(images):
    live, masters = images
    stop = threading.Event()
    swapper = threading.Thread(
        target=_swap_forever, args=(live, masters, stop), daemon=True
    )
    outcomes = []
    lock = threading.Lock()

    def read_loop():
        try:
            seen = [_read_once(live) for _ in range(READS_PER_THREAD)]
            with lock:
                outcomes.append(("ok", seen))
        except (SnapshotError, AssertionError) as exc:
            with lock:
                outcomes.append(("error", repr(exc)))

    ctx = multiprocessing.get_context()
    queue = ctx.Queue()
    processes = [
        ctx.Process(
            target=_reader_process, args=(live, READS_PER_PROCESS, queue)
        )
        for _ in range(PROCESS_READERS)
    ]
    threads = [
        threading.Thread(target=read_loop) for _ in range(THREAD_READERS)
    ]
    swapper.start()
    for worker in processes + threads:
        worker.start()
    for thread in threads:
        thread.join()
    for _ in processes:
        outcomes.append(queue.get())
    for process in processes:
        process.join()
    stop.set()
    swapper.join()

    assert len(outcomes) == THREAD_READERS + PROCESS_READERS
    torn = [detail for kind, detail in outcomes if kind != "ok"]
    assert not torn, f"readers hit corrupt/torn images: {torn}"
    for _kind, seen in outcomes:
        assert set(seen) <= set(FINGERPRINTS)


def _memory_probe(path: str, conn) -> None:
    snapshot = load_snapshot(path)
    # Touch a spread of the data so lazy pages actually map in.
    assert snapshot.kb.entity_count == 2_000
    ids = snapshot.store.entity_ids()
    for entity_id in ids[:: max(1, len(ids) // 50)]:
        snapshot.store.keyphrases(entity_id)
    anonymous = 0
    with open("/proc/self/smaps_rollup", "r", encoding="ascii") as handle:
        for line in handle:
            if line.startswith("Anonymous:"):
                anonymous = int(line.split()[1])
    snapshot.close()
    conn.send(anonymous)
    conn.close()


@pytest.mark.skipif(
    not os.path.exists("/proc/self/smaps_rollup"),
    reason="needs /proc smaps_rollup",
)
def test_extra_workers_add_flat_anonymous_memory(images):
    """Each extra mapping worker costs a ~flat anonymous-memory sliver
    (interpreter + lazy facades), not another copy of the image."""
    live, _masters = images
    image_kb = os.path.getsize(live) // 1024
    ctx = multiprocessing.get_context("spawn")
    measurements = []
    for _ in range(PROCESS_READERS):
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_memory_probe, args=(live, child_conn)
        )
        process.start()
        child_conn.close()
        measurements.append(parent_conn.recv())
        process.join()
    spread_kb = max(measurements) - min(measurements)
    assert spread_kb < 16 * 1024, (
        f"per-worker anonymous memory is not flat: {measurements} KiB"
    )
    # Zero-copy: the workers' anonymous spread stays far below the image
    # itself — nothing re-materializes the arrays on the heap.
    assert spread_kb < image_kb, (
        f"spread {spread_kb} KiB vs image {image_kb} KiB"
    )
