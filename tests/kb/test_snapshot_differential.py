"""Differential: snapshot-backed pipelines are bit-identical to in-memory.

Twenty seeded synthetic worlds (override the base seed with
``SNAPSHOT_DIFF_BASE_SEED``): each is compiled into an mmap snapshot
image, and the snapshot-backed pipeline must reproduce the in-memory
pipeline exactly — same entities, same scores, same candidate score
tables.  A three-world subset crosses every relatedness backend (mw,
kore, kore_lsh_g, kore_lsh_f); the golden fixture corpus then runs the
full executor × backend grid (serial, thread pool, process pool) against
the session KB's snapshot.
"""

from __future__ import annotations

import os

import pytest

from repro.core.batch import BatchConfig, BatchRunner
from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.datagen.documents import DocumentGenerator, DocumentSpec
from repro.datagen.io import load_corpus
from repro.datagen.wikipedia import build_world_kb
from repro.datagen.world import World, WorldConfig
from repro.eval.runner import run_disambiguator
from repro.kb.snapshot import (
    SnapshotPipelineFactory,
    build_snapshot,
    load_snapshot,
)

BASE_SEED = int(os.environ.get("SNAPSHOT_DIFF_BASE_SEED", "3100"))
WORLD_SEEDS = [BASE_SEED + i for i in range(20)]
CROSS_BACKEND_SEEDS = WORLD_SEEDS[:3]
BACKENDS = ("mw", "kore", "kore_lsh_g", "kore_lsh_f")

DOCS_PER_WORLD = 2
MENTIONS_PER_DOC = 4

GOLDEN_CORPUS = os.path.join(
    os.path.dirname(__file__),
    os.pardir,
    "fixtures",
    "golden",
    "corpus.jsonl",
)


def _comparable(result):
    """Everything order- and value-relevant, minus the timing stats."""
    return [
        (
            assignment.mention,
            assignment.entity,
            assignment.score,
            sorted(assignment.candidate_scores.items()),
        )
        for assignment in result.assignments
    ]


def _config(backend: str) -> AidaConfig:
    config = AidaConfig.full()
    config.relatedness_backend = backend
    return config


class SnapWorld:
    """One seeded world, its documents, and its snapshot image."""

    def __init__(self, seed: int, directory: str):
        self.seed = seed
        world = World.generate(
            WorldConfig(seed=seed, clusters_per_domain=2)
        )
        self.kb, _wiki = build_world_kb(world, seed=seed + 94)
        generator = DocumentGenerator(world, seed=seed + 55)
        cluster_ids = sorted(world.clusters)
        self.documents = [
            generator.generate(
                DocumentSpec(
                    doc_id=f"w{seed}-d{index}",
                    cluster_ids=[cluster_ids[index % len(cluster_ids)]],
                    num_mentions=MENTIONS_PER_DOC,
                )
            ).document
            for index in range(DOCS_PER_WORLD)
        ]
        self.path = os.path.join(directory, f"w{seed}.snap")
        build_snapshot(self.kb, self.path)
        self.snapshot = load_snapshot(self.path)


_WORLDS = {}


def _snap_world(seed: int, tmp_path_factory) -> SnapWorld:
    if seed not in _WORLDS:
        directory = str(tmp_path_factory.mktemp(f"snapdiff-{seed}"))
        _WORLDS[seed] = SnapWorld(seed, directory)
    return _WORLDS[seed]


@pytest.fixture(params=WORLD_SEEDS)
def snap_world(request, tmp_path_factory) -> SnapWorld:
    return _snap_world(request.param, tmp_path_factory)


@pytest.fixture(params=CROSS_BACKEND_SEEDS)
def cross_world(request, tmp_path_factory) -> SnapWorld:
    return _snap_world(request.param, tmp_path_factory)


def test_snapshot_bit_identical_per_world(snap_world):
    """Snapshot pipeline equals in-memory on every seeded world."""
    config = _config("mw")
    memory = AidaDisambiguator(snap_world.kb, config=_config("mw"))
    mapped = snap_world.snapshot.pipeline(config)
    for document in snap_world.documents:
        assert _comparable(mapped.disambiguate(document)) == _comparable(
            memory.disambiguate(document)
        )


@pytest.mark.parametrize("backend", BACKENDS)
def test_snapshot_bit_identical_across_backends(cross_world, backend):
    """Every relatedness backend agrees on the cross-check worlds."""
    memory = AidaDisambiguator(cross_world.kb, config=_config(backend))
    mapped = cross_world.snapshot.pipeline(_config(backend))
    for document in cross_world.documents:
        assert _comparable(mapped.disambiguate(document)) == _comparable(
            memory.disambiguate(document)
        )


# ----------------------------------------------------------------------
# Golden corpus × executors × backends (session KB)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def session_snapshot(kb, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("snapdiff-golden") / "kb.snap")
    build_snapshot(kb, path)
    snapshot = load_snapshot(path)
    yield snapshot, path
    snapshot.close()


@pytest.fixture(scope="module")
def golden_docs():
    return load_corpus(GOLDEN_CORPUS)


_BASELINES = {}


def _golden_baseline(kb, documents, backend):
    if backend not in _BASELINES:
        pipeline = AidaDisambiguator(kb, config=_config(backend))
        run = run_disambiguator(pipeline, documents, kb=kb)
        assert not run.failures
        _BASELINES[backend] = run
    return _BASELINES[backend]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("executor", ("serial", "thread", "process"))
def test_snapshot_golden_corpus_executor_grid(
    kb, golden_docs, session_snapshot, executor, backend
):
    """Golden corpus: every executor × backend equals the in-memory
    serial baseline, assignment for assignment."""
    snapshot, path = session_snapshot
    baseline = _golden_baseline(kb, golden_docs, backend)
    config = _config(backend)
    pipeline = snapshot.pipeline(config)
    if executor == "serial":
        run = run_disambiguator(
            pipeline, golden_docs, kb=snapshot.kb
        )
    elif executor == "thread":
        run = run_disambiguator(
            pipeline, golden_docs, kb=snapshot.kb, workers=4
        )
    else:
        runner = BatchRunner(
            pipeline_factory=SnapshotPipelineFactory(path, config=config),
            config=BatchConfig(workers=2, executor="process"),
        )
        run = run_disambiguator(
            pipeline, golden_docs, kb=snapshot.kb, batch=runner
        )
    assert not run.failures
    assert len(run.results) == len(baseline.results)
    for mapped_result, memory_result in zip(
        run.results, baseline.results
    ):
        assert mapped_result.doc_id == memory_result.doc_id
        assert _comparable(mapped_result) == _comparable(memory_result)
    assert run.micro == baseline.micro
    assert run.macro == baseline.macro
    assert run.map == baseline.map
