"""Tests for KB TSV serialization (round-trip fidelity)."""

import os

import pytest

from repro.errors import KnowledgeBaseError
from repro.kb.io import load_knowledge_base, save_knowledge_base


@pytest.fixture
def kb_dir(kb, tmp_path):
    directory = str(tmp_path / "kb")
    save_knowledge_base(kb, directory)
    return directory


class TestSave:
    def test_all_files_written(self, kb_dir):
        for filename in (
            "entities.tsv",
            "names.tsv",
            "links.tsv",
            "keyphrases.tsv",
            "triples.tsv",
            "taxonomy.tsv",
        ):
            assert os.path.exists(os.path.join(kb_dir, filename))

    def test_files_nonempty(self, kb_dir):
        assert os.path.getsize(os.path.join(kb_dir, "entities.tsv")) > 0
        assert os.path.getsize(os.path.join(kb_dir, "keyphrases.tsv")) > 0


class TestRoundTrip:
    @pytest.fixture
    def loaded(self, kb_dir):
        return load_knowledge_base(kb_dir)

    def test_entity_count(self, kb, loaded):
        assert len(loaded) == len(kb)

    def test_entity_fields(self, kb, loaded):
        for entity_id in kb.entity_ids()[:20]:
            original = kb.entity(entity_id)
            restored = loaded.entity(entity_id)
            assert restored.canonical_name == original.canonical_name
            assert restored.types == original.types
            assert restored.domain == original.domain
            assert restored.popularity == pytest.approx(
                original.popularity
            )

    def test_dictionary_candidates(self, kb, loaded):
        for name in kb.dictionary.all_names()[:40]:
            assert loaded.candidates(name) == kb.candidates(name)

    def test_priors_preserved(self, kb, loaded):
        for name in kb.dictionary.all_names()[:40]:
            for entity_id in kb.candidates(name):
                assert loaded.prior(name, entity_id) == pytest.approx(
                    kb.prior(name, entity_id)
                )

    def test_links_preserved(self, kb, loaded):
        assert loaded.links.edge_count == kb.links.edge_count
        for entity_id in kb.entity_ids()[:20]:
            assert loaded.inlinks(entity_id) == kb.inlinks(entity_id)

    def test_keyphrases_preserved(self, kb, loaded):
        for entity_id in kb.entity_ids()[:20]:
            assert loaded.keyphrases.keyphrase_counts(
                entity_id
            ) == kb.keyphrases.keyphrase_counts(entity_id)

    def test_triples_preserved(self, kb, loaded):
        assert len(loaded.triples) == len(kb.triples)

    def test_taxonomy_preserved(self, kb, loaded):
        assert set(loaded.taxonomy.types) == set(kb.taxonomy.types)
        assert loaded.taxonomy.ancestors("singer") == kb.taxonomy.ancestors(
            "singer"
        )

    def test_disambiguation_equivalent(self, kb, loaded, sample_docs):
        from repro.core.config import AidaConfig
        from repro.core.pipeline import AidaDisambiguator

        original = AidaDisambiguator(
            kb, config=AidaConfig.robust_prior_sim()
        )
        restored = AidaDisambiguator(
            loaded, config=AidaConfig.robust_prior_sim()
        )
        document = sample_docs[0].document
        assert (
            original.disambiguate(document).as_map()
            == restored.disambiguate(document).as_map()
        )


class TestErrors:
    def test_missing_file_rejected(self, kb_dir):
        os.remove(os.path.join(kb_dir, "links.tsv"))
        with pytest.raises(KnowledgeBaseError):
            load_knowledge_base(kb_dir)

    def test_malformed_row_rejected(self, kb_dir):
        path = os.path.join(kb_dir, "links.tsv")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("only_one_column\n")
        with pytest.raises(KnowledgeBaseError):
            load_knowledge_base(kb_dir)

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(KnowledgeBaseError):
            load_knowledge_base(str(tmp_path / "nothing"))
