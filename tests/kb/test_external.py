"""Tests for out-of-encyclopedia entity import (the Nick Cave scenario)."""

import pytest

from repro.errors import KnowledgeBaseError
from repro.kb.entity import Entity
from repro.kb.external import ExternalDescription, ExternalEntityImporter
from repro.kb.knowledge_base import KnowledgeBase
from repro.relatedness.kore import KoreRelatedness
from repro.relatedness.milne_witten import MilneWittenRelatedness
from repro.weights.model import WeightModel


@pytest.fixture
def base_kb():
    kb = KnowledgeBase()
    kb.add_entity(
        Entity(
            entity_id="Nick_Cave",
            canonical_name="Nick Cave",
            types=("singer",),
        )
    )
    kb.add_entity(
        Entity(
            entity_id="Hallelujah_Chorus",
            canonical_name="Hallelujah Chorus",
            types=("song",),
        )
    )
    kb.keyphrases.add_keyphrase("Nick_Cave", ("australian", "singer"), 3)
    kb.keyphrases.add_keyphrase("Nick_Cave", ("bad", "seeds"), 2)
    kb.keyphrases.add_keyphrase(
        "Hallelujah_Chorus", ("baroque", "oratorio"), 2
    )
    kb.dictionary.add_name(
        "Hallelujah", "Hallelujah_Chorus", source="anchor", anchor_count=9
    )
    return kb


@pytest.fixture
def cave_song():
    # The last.fm-style description of Section 4.1: the song has no
    # encyclopedia article, only a community page.
    return ExternalDescription(
        entity_id="Hallelujah_Cave_Song",
        canonical_name="Hallelujah",
        text=(
            "A haunting song by the australian singer Nick Cave , from "
            "the album No More Shall We Part , featuring an eerie cello "
            "and the Bad Seeds ."
        ),
        types=("song",),
        aliases=("Hallelujah (Cave song)",),
        extra_phrases=("bad seeds",),
    )


class TestImporter:
    def test_view_contains_imported_entity(self, base_kb, cave_song):
        importer = ExternalEntityImporter(base_kb)
        importer.add(cave_song)
        view = importer.build_view()
        assert "Hallelujah_Cave_Song" in view
        assert "Hallelujah_Cave_Song" not in base_kb

    def test_dictionary_gains_names(self, base_kb, cave_song):
        importer = ExternalEntityImporter(base_kb)
        importer.add(cave_song)
        view = importer.build_view()
        candidates = view.candidates("Hallelujah")
        assert "Hallelujah_Cave_Song" in candidates
        assert "Hallelujah_Chorus" in candidates
        # The base KB's dictionary is untouched.
        assert base_kb.candidates("Hallelujah") == ["Hallelujah_Chorus"]

    def test_keyphrases_extracted(self, base_kb, cave_song):
        importer = ExternalEntityImporter(base_kb)
        phrases = importer.extract_phrases(cave_song)
        assert ("australian", "singer") in phrases
        assert ("bad", "seeds") in phrases
        # Proper-name phrases from the text are captured too.
        assert any("nick" in phrase for phrase in phrases)

    def test_own_name_excluded_from_phrases(self, base_kb, cave_song):
        importer = ExternalEntityImporter(base_kb)
        phrases = importer.extract_phrases(cave_song)
        assert ("hallelujah",) not in phrases

    def test_kore_works_for_imported_entity(self, base_kb, cave_song):
        importer = ExternalEntityImporter(base_kb)
        importer.add(cave_song)
        view = importer.build_view()
        weights = WeightModel(view.keyphrases, view.links)
        kore = KoreRelatedness(view.keyphrases, weights)
        related = kore.relatedness("Hallelujah_Cave_Song", "Nick_Cave")
        unrelated = kore.relatedness(
            "Hallelujah_Cave_Song", "Hallelujah_Chorus"
        )
        assert related > unrelated

    def test_mw_is_blind_to_imported_entity(self, base_kb, cave_song):
        # The contrast of Section 4.1: link-based relatedness has no
        # chance on an out-of-encyclopedia entity.
        importer = ExternalEntityImporter(base_kb)
        importer.add(cave_song)
        view = importer.build_view()
        mw = MilneWittenRelatedness(view.links, max(view.entity_count, 2))
        assert mw.relatedness("Hallelujah_Cave_Song", "Nick_Cave") == 0.0

    def test_type_triples_added_to_view_only(self, base_kb, cave_song):
        importer = ExternalEntityImporter(base_kb)
        importer.add(cave_song)
        view = importer.build_view()
        assert view.triples.objects("Hallelujah_Cave_Song", "type") == [
            "song"
        ]
        assert base_kb.triples.objects("Hallelujah_Cave_Song", "type") == []

    def test_duplicate_import_rejected(self, base_kb, cave_song):
        importer = ExternalEntityImporter(base_kb)
        importer.add(cave_song)
        with pytest.raises(KnowledgeBaseError):
            importer.add(cave_song)

    def test_existing_entity_id_rejected(self, base_kb):
        importer = ExternalEntityImporter(base_kb)
        with pytest.raises(KnowledgeBaseError):
            importer.add(
                ExternalDescription(
                    entity_id="Nick_Cave",
                    canonical_name="Nick Cave",
                    text="whatever",
                )
            )

    def test_invalid_min_phrase_count(self, base_kb):
        with pytest.raises(KnowledgeBaseError):
            ExternalEntityImporter(base_kb, min_phrase_count=0)

    def test_pending_count(self, base_kb, cave_song):
        importer = ExternalEntityImporter(base_kb)
        assert importer.pending_count == 0
        importer.add(cave_song)
        assert importer.pending_count == 1
