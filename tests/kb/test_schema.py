"""Tests for the type taxonomy."""

import pytest

from repro.errors import KnowledgeBaseError
from repro.kb.schema import DEFAULT_TYPE_HIERARCHY, ROOT_TYPE, Taxonomy


@pytest.fixture(scope="module")
def taxonomy():
    return Taxonomy()


class TestStructure:
    def test_default_hierarchy_loads(self, taxonomy):
        assert len(taxonomy) == len(DEFAULT_TYPE_HIERARCHY) + 1  # + root

    def test_contains(self, taxonomy):
        assert "musician" in taxonomy
        assert "nonexistent" not in taxonomy

    def test_parents(self, taxonomy):
        assert taxonomy.parents("singer") == ("musician",)
        assert taxonomy.parents(ROOT_TYPE) == ()

    def test_children(self, taxonomy):
        assert "singer" in taxonomy.children("musician")
        assert "guitarist" in taxonomy.children("musician")

    def test_unknown_type_raises(self, taxonomy):
        with pytest.raises(KnowledgeBaseError):
            taxonomy.parents("nope")

    def test_unknown_super_type_rejected(self):
        with pytest.raises(KnowledgeBaseError):
            Taxonomy({"a": ("missing",)})

    def test_cycle_rejected(self):
        with pytest.raises(KnowledgeBaseError):
            Taxonomy({"a": ("b",), "b": ("a",)})


class TestClosure:
    def test_ancestors_transitive(self, taxonomy):
        ancestors = taxonomy.ancestors("singer")
        assert {"musician", "person", ROOT_TYPE} <= ancestors
        assert "singer" not in ancestors

    def test_descendants_transitive(self, taxonomy):
        descendants = taxonomy.descendants("person")
        assert "singer" in descendants
        assert "footballer" in descendants
        assert "city" not in descendants

    def test_is_subtype_reflexive(self, taxonomy):
        assert taxonomy.is_subtype("singer", "singer")

    def test_is_subtype_transitive(self, taxonomy):
        assert taxonomy.is_subtype("singer", "person")
        assert not taxonomy.is_subtype("person", "singer")

    def test_expand_includes_self_and_ancestors(self, taxonomy):
        expanded = taxonomy.expand(["footballer"])
        assert {"footballer", "athlete", "person", ROOT_TYPE} <= expanded

    def test_expand_multiple_leaves(self, taxonomy):
        expanded = taxonomy.expand(["singer", "city"])
        assert "musician" in expanded
        assert "location" in expanded


class TestCoarseClass:
    def test_leaf_maps_to_coarse(self, taxonomy):
        assert taxonomy.coarse_class("singer") == "person"
        assert taxonomy.coarse_class("football_club") == "organization"
        assert taxonomy.coarse_class("stadium") == "location"

    def test_coarse_of_root(self, taxonomy):
        assert taxonomy.coarse_class(ROOT_TYPE) == ROOT_TYPE

    def test_coarse_of_direct_child(self, taxonomy):
        assert taxonomy.coarse_class("person") == "person"
