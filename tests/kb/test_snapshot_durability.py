"""Snapshot corruption and durability: fail loudly, never answer wrongly.

Every way an image can go bad on disk — truncation, a flipped byte, a
foreign magic, a future format version, a crash mid-write — must raise
:class:`SnapshotError` (classified :class:`PermanentError`) with a
message naming the file and the problem, and must never leave a torn
image at the destination path.  A Hypothesis property then pins the
format's determinism: build → load → rebuild is byte-stable for
arbitrary seeded worlds.
"""

from __future__ import annotations

import os
import struct
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.datagen.wikipedia import build_world_kb
from repro.datagen.world import World, WorldConfig
from repro.errors import PermanentError
from repro.faults import FaultInjector, FaultSpec, injected
from repro.kb.snapshot import (
    _HEADER,
    FORMAT_VERSION,
    HEADER_SIZE,
    MAGIC,
    SnapshotError,
    build_snapshot,
    load_snapshot,
)


@pytest.fixture(scope="module")
def small_kb():
    world = World.generate(WorldConfig(seed=41, clusters_per_domain=2))
    kb, _wiki = build_world_kb(world, seed=135)
    return kb


@pytest.fixture()
def image(small_kb, tmp_path):
    path = str(tmp_path / "kb.snap")
    build_snapshot(small_kb, path)
    return path


def _assert_rejected(path: str):
    """Loading must raise a SnapshotError that is a PermanentError and
    names the offending file."""
    with pytest.raises(SnapshotError) as excinfo:
        snapshot = load_snapshot(path)
        snapshot.close()
    assert isinstance(excinfo.value, PermanentError)
    assert os.path.basename(path) in str(excinfo.value)
    return excinfo.value


def test_missing_file_is_permanent(tmp_path):
    _assert_rejected(str(tmp_path / "absent.snap"))


@pytest.mark.parametrize("keep", [0, 17, HEADER_SIZE - 1])
def test_truncated_below_header(image, keep):
    with open(image, "r+b") as handle:
        handle.truncate(keep)
    _assert_rejected(image)


@pytest.mark.parametrize("fraction", [0.3, 0.7, 0.999])
def test_truncated_body(image, fraction):
    """Cutting anywhere in the body loses the TOC or a section."""
    size = os.path.getsize(image)
    with open(image, "r+b") as handle:
        handle.truncate(max(HEADER_SIZE, int(size * fraction)))
    _assert_rejected(image)


@pytest.mark.parametrize("fraction", [0.1, 0.4, 0.8])
def test_flipped_byte_is_caught_by_checksum(image, fraction):
    size = os.path.getsize(image)
    offset = int(size * fraction)
    with open(image, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))
    _assert_rejected(image)


def test_wrong_magic(image):
    with open(image, "r+b") as handle:
        handle.write(b"NOTASNAP")
    error = _assert_rejected(image)
    assert "magic" in str(error)


def test_wrong_version(image):
    """A future format version is rejected *as a version problem* — the
    header checksum is re-sealed so the check under test is reached."""
    with open(image, "r+b") as handle:
        header = bytearray(handle.read(HEADER_SIZE))
        struct.pack_into("<I", header, len(MAGIC), 999)
        crc = zlib.crc32(bytes(header[: _HEADER.size - 4])) & 0xFFFFFFFF
        struct.pack_into("<I", header, _HEADER.size - 4, crc)
        handle.seek(0)
        handle.write(header)
    error = _assert_rejected(image)
    assert "version" in str(error)


def test_corrupt_header_checksum(image):
    with open(image, "r+b") as handle:
        handle.seek(len(MAGIC))  # version field, CRC left stale
        handle.write(struct.pack("<I", FORMAT_VERSION + 1))
    _assert_rejected(image)


def test_partial_write_never_touches_destination(small_kb, tmp_path):
    """A fault mid-write (injected at ``snapshot.write``) aborts the
    build, removes the temp file, and leaves a pre-existing destination
    image byte-identical and loadable."""
    path = str(tmp_path / "kb.snap")
    build_snapshot(small_kb, path)
    with open(path, "rb") as handle:
        before = handle.read()
    injector = FaultInjector(
        [
            FaultSpec(
                site="snapshot.write",
                kind="permanent",
                max_faults=1,
                # Let a few sections through so the crash lands mid-image.
                rate=0.25,
            )
        ],
        seed=5,
    )
    with injected(injector):
        with pytest.raises(PermanentError):
            build_snapshot(small_kb, path)
    assert injector.total_injected == 1
    assert [
        name
        for name in os.listdir(tmp_path)
        if name.startswith(".")
    ] == [], "temp file must not survive the aborted build"
    with open(path, "rb") as handle:
        assert handle.read() == before
    snapshot = load_snapshot(path)
    assert snapshot.kb.entity_count == small_kb.entity_count
    snapshot.close()


def test_fresh_build_fault_leaves_nothing(small_kb, tmp_path):
    """Faulting the very first build leaves no destination at all."""
    path = str(tmp_path / "kb.snap")
    injector = FaultInjector(
        [FaultSpec(site="snapshot.write", kind="permanent", max_faults=1)]
    )
    with injected(injector):
        with pytest.raises(PermanentError):
            build_snapshot(small_kb, path)
    assert os.listdir(tmp_path) == []


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    clusters=st.integers(min_value=1, max_value=2),
)
def test_rebuild_is_byte_stable(tmp_path_factory, seed, clusters):
    """build → load → rebuild produces the identical byte image."""
    directory = tmp_path_factory.mktemp("snapstable")
    world = World.generate(
        WorldConfig(seed=seed, clusters_per_domain=clusters)
    )
    kb, _wiki = build_world_kb(world, seed=seed + 94)
    first = str(directory / "first.snap")
    second = str(directory / "second.snap")
    third = str(directory / "third.snap")
    build_snapshot(kb, first)
    build_snapshot(kb, second)
    snapshot = load_snapshot(first)
    build_snapshot(snapshot.kb.materialize(), third)
    snapshot.close()
    with open(first, "rb") as handle:
        reference = handle.read()
    with open(second, "rb") as handle:
        assert handle.read() == reference, "same KB, different bytes"
    with open(third, "rb") as handle:
        assert handle.read() == reference, "round-trip changed the bytes"
