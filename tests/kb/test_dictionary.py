"""Tests for the name dictionary and AIDA's matching rules."""

import pytest

from repro.errors import DictionaryError
from repro.kb.dictionary import (
    CASE_SENSITIVE_MAX_LEN,
    Dictionary,
    match_key,
)


@pytest.fixture
def dictionary():
    d = Dictionary()
    d.add_name("Apple Inc", "Apple_Inc", source="title")
    d.add_name("Apple", "Apple_Inc", source="anchor", anchor_count=90)
    d.add_name("Apple", "Apple_Records", source="anchor", anchor_count=10)
    d.add_name("US", "United_States", source="anchor", anchor_count=5)
    d.add_name("Kashmir", "Kashmir_Region", source="anchor", anchor_count=91)
    d.add_name("Kashmir", "Kashmir_Song", source="anchor", anchor_count=9)
    return d


class TestMatchKey:
    def test_short_names_case_sensitive(self):
        assert match_key("US") == "US"
        assert match_key("us") == "us"
        assert match_key("US") != match_key("us")

    def test_long_names_upper_cased(self):
        assert match_key("Apple") == match_key("APPLE") == "APPLE"

    def test_boundary_length(self):
        boundary = "a" * CASE_SENSITIVE_MAX_LEN
        assert match_key(boundary) == boundary
        longer = "a" * (CASE_SENSITIVE_MAX_LEN + 1)
        assert match_key(longer) == longer.upper()


class TestCandidates:
    def test_exact_match(self, dictionary):
        assert dictionary.candidates("Apple") == [
            "Apple_Inc",
            "Apple_Records",
        ]

    def test_all_caps_mention_matches(self, dictionary):
        # Section 3.3.2: "APPLE" must retrieve Apple Inc.
        assert "Apple_Inc" in dictionary.candidates("APPLE")

    def test_short_name_case_matters(self, dictionary):
        assert dictionary.candidates("US") == ["United_States"]
        assert dictionary.candidates("us") == []

    def test_unknown_name_gives_empty(self, dictionary):
        assert dictionary.candidates("Unknown Thing") == []

    def test_ambiguity_count(self, dictionary):
        assert dictionary.ambiguity("Apple") == 2
        assert dictionary.ambiguity("US") == 1


class TestPrior:
    def test_prior_from_anchor_counts(self, dictionary):
        assert dictionary.prior("Kashmir", "Kashmir_Region") == pytest.approx(
            0.91
        )
        assert dictionary.prior("Kashmir", "Kashmir_Song") == pytest.approx(
            0.09
        )

    def test_prior_distribution_sums_to_one(self, dictionary):
        dist = dictionary.prior_distribution("Apple")
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_prior_without_anchors_is_uniform(self):
        d = Dictionary()
        d.add_name("Thing", "E1", source="title")
        d.add_name("Thing", "E2", source="disambiguation")
        assert d.prior("Thing", "E1") == pytest.approx(0.5)

    def test_prior_of_unknown_name(self, dictionary):
        assert dictionary.prior("Nothing", "E1") == 0.0


class TestValidation:
    def test_unknown_source_rejected(self):
        with pytest.raises(DictionaryError):
            Dictionary().add_name("A", "E1", source="guess")

    def test_empty_name_rejected(self):
        with pytest.raises(DictionaryError):
            Dictionary().add_name("  ", "E1", source="title")

    def test_negative_anchor_count_rejected(self):
        with pytest.raises(DictionaryError):
            Dictionary().add_name(
                "A", "E1", source="anchor", anchor_count=-1
            )


class TestReverseLookup:
    def test_names_of_entity(self, dictionary):
        assert dictionary.names_of("Apple_Inc") == ["Apple", "Apple Inc"]

    def test_merge_counts(self, dictionary):
        dictionary.merge_counts({("Apple", "Apple_Inc"): 10})
        # 100 total before merge, now 110 with 100 for Apple_Inc.
        assert dictionary.prior("Apple", "Apple_Inc") == pytest.approx(
            100 / 110
        )

    def test_all_names_sorted(self, dictionary):
        names = dictionary.all_names()
        assert names == sorted(names)
