"""Tests for the SPO triple store."""

import pytest

from repro.errors import KnowledgeBaseError
from repro.kb.triples import ANY, Triple, TripleStore


@pytest.fixture
def store():
    s = TripleStore()
    s.add("Bob_Dylan", "created", "Desire")
    s.add("Bob_Dylan", "type", "musician")
    s.add("Desire", "type", "album")
    s.add("Jimmy_Page", "type", "musician")
    return s


class TestInsertion:
    def test_add_and_len(self, store):
        assert len(store) == 4

    def test_idempotent_add(self, store):
        assert not store.add("Bob_Dylan", "created", "Desire")
        assert len(store) == 4

    def test_contains(self, store):
        assert Triple("Bob_Dylan", "created", "Desire") in store
        assert Triple("Bob_Dylan", "created", "Nothing") not in store

    def test_empty_component_rejected(self):
        with pytest.raises(KnowledgeBaseError):
            Triple("", "p", "o")

    def test_remove(self, store):
        assert store.remove("Bob_Dylan", "created", "Desire")
        assert Triple("Bob_Dylan", "created", "Desire") not in store
        assert len(store) == 3

    def test_remove_missing_returns_false(self, store):
        assert not store.remove("a", "b", "c")


class TestPatternQueries:
    def test_fully_bound(self, store):
        matches = list(store.match("Bob_Dylan", "created", "Desire"))
        assert len(matches) == 1

    def test_subject_bound(self, store):
        matches = list(store.match("Bob_Dylan", ANY, ANY))
        assert len(matches) == 2

    def test_predicate_bound(self, store):
        matches = list(store.match(ANY, "type", ANY))
        assert len(matches) == 3

    def test_object_bound(self, store):
        matches = list(store.match(ANY, ANY, "musician"))
        assert {m.subject for m in matches} == {"Bob_Dylan", "Jimmy_Page"}

    def test_unbound_returns_everything(self, store):
        assert len(list(store.match())) == 4

    def test_no_match(self, store):
        assert list(store.match("Nobody", ANY, ANY)) == []

    def test_results_are_sorted(self, store):
        matches = list(store.match(ANY, "type", ANY))
        assert matches == sorted(matches, key=lambda t: t.as_tuple())


class TestConvenience:
    def test_objects(self, store):
        assert store.objects("Bob_Dylan", "type") == ["musician"]

    def test_subjects(self, store):
        assert store.subjects("type", "musician") == [
            "Bob_Dylan",
            "Jimmy_Page",
        ]

    def test_predicates_of(self, store):
        assert store.predicates_of("Bob_Dylan") == ["created", "type"]
