"""Tests for Entity and the KnowledgeBase facade."""

import pytest

from repro.errors import UnknownEntityError
from repro.kb.entity import Entity, EntitySet
from repro.kb.knowledge_base import KnowledgeBase


def _kb():
    kb = KnowledgeBase()
    kb.add_entity(
        Entity(
            entity_id="Bob_Dylan",
            canonical_name="Bob Dylan",
            types=("singer",),
            popularity=100.0,
        )
    )
    kb.add_entity(
        Entity(
            entity_id="Dylan_Thomas",
            canonical_name="Dylan Thomas",
            types=("writer",),
            popularity=10.0,
        )
    )
    kb.dictionary.add_name(
        "Dylan", "Bob_Dylan", source="anchor", anchor_count=80
    )
    kb.dictionary.add_name(
        "Dylan", "Dylan_Thomas", source="anchor", anchor_count=20
    )
    return kb


class TestEntity:
    def test_valid_entity(self):
        e = Entity(entity_id="X", canonical_name="X", types=("person",))
        assert e.has_type("person")
        assert not e.has_type("city")

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            Entity(entity_id="", canonical_name="X")

    def test_non_positive_popularity_rejected(self):
        with pytest.raises(ValueError):
            Entity(entity_id="X", canonical_name="X", popularity=0.0)


class TestEntitySet:
    def test_membership_and_iteration(self):
        s = EntitySet.of("B", "A")
        assert "A" in s
        assert list(s) == ["A", "B"]

    def test_union_intersection(self):
        a = EntitySet.of("A", "B")
        b = EntitySet.of("B", "C")
        assert set(a.union(b)) == {"A", "B", "C"}
        assert set(a.intersection(b)) == {"B"}


class TestKnowledgeBase:
    def test_entity_lookup(self):
        kb = _kb()
        assert kb.entity("Bob_Dylan").canonical_name == "Bob Dylan"

    def test_unknown_entity_raises(self):
        with pytest.raises(UnknownEntityError):
            _kb().entity("Nobody")

    def test_maybe_entity(self):
        kb = _kb()
        assert kb.maybe_entity("Nobody") is None
        assert kb.maybe_entity("Bob_Dylan") is not None

    def test_canonical_name_in_dictionary(self):
        kb = _kb()
        assert "Bob_Dylan" in kb.candidates("Bob Dylan")

    def test_candidates_for_shared_name(self):
        kb = _kb()
        assert kb.candidates("Dylan") == ["Bob_Dylan", "Dylan_Thomas"]

    def test_prior(self):
        kb = _kb()
        assert kb.prior("Dylan", "Bob_Dylan") == pytest.approx(0.8)

    def test_types_expanded_through_taxonomy(self):
        kb = _kb()
        types = kb.types_of("Bob_Dylan")
        assert {"singer", "musician", "person"} <= types

    def test_entities_of_type(self):
        kb = _kb()
        assert kb.entities_of_type("person") == [
            "Bob_Dylan",
            "Dylan_Thomas",
        ]
        assert kb.entities_of_type("musician") == ["Bob_Dylan"]

    def test_coarse_class(self):
        kb = _kb()
        assert kb.coarse_class("Bob_Dylan") == "person"

    def test_type_triples_recorded(self):
        kb = _kb()
        assert kb.triples.objects("Bob_Dylan", "type") == ["singer"]

    def test_with_keyphrases_view_shares_entities(self):
        kb = _kb()
        other_store = kb.keyphrases.copy()
        other_store.add_keyphrase("Bob_Dylan", ("extra", "phrase"))
        view = kb.with_keyphrases(other_store)
        assert view.entity("Bob_Dylan") is kb.entity("Bob_Dylan")
        assert ("extra", "phrase") in view.entity_keyphrases("Bob_Dylan")
        assert ("extra", "phrase") not in kb.entity_keyphrases("Bob_Dylan")

    def test_describe(self):
        stats = _kb().describe()
        assert stats["entities"] == 2
        assert stats["triples"] >= 2
