"""Snapshot embedding sections: v2 roundtrip and v1 compatibility."""

from __future__ import annotations

import pytest

import repro.kb.snapshot as snap
from repro.core.config import AidaConfig
from repro.embeddings import EmbeddingConfig, train_embeddings
from repro.kb.snapshot import (
    SnapshotError,
    build_snapshot,
    inspect_snapshot,
    load_snapshot,
)

FAST = EmbeddingConfig(dim=16, epochs=1)


@pytest.fixture(scope="module")
def model(kb):
    return train_embeddings(kb, FAST)


@pytest.fixture(scope="module")
def snapshot_with_embeddings(kb, model, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("snap-emb") / "kb.snap")
    manifest = build_snapshot(kb, path, embeddings=model)
    snapshot = load_snapshot(path)
    yield snapshot, manifest, path
    snapshot.close()


class TestRoundtrip:
    def test_manifest_records_shape(self, snapshot_with_embeddings, model):
        _, manifest, _ = snapshot_with_embeddings
        assert manifest["embeddings"] == {
            "dim": model.dim,
            "words": len(model.words),
            "entities": len(model.entity_ids),
        }

    def test_matrices_byte_identical(self, snapshot_with_embeddings, model):
        snapshot, _, _ = snapshot_with_embeddings
        assert snapshot.has_embeddings
        mapped = snapshot.embeddings
        assert mapped.fingerprint() == model.fingerprint()
        assert mapped.words == model.words
        assert mapped.entity_ids == model.entity_ids

    def test_inspect_lists_embedding_sections(
        self, snapshot_with_embeddings
    ):
        _, _, path = snapshot_with_embeddings
        info = inspect_snapshot(path)
        names = {section["name"] for section in info["sections"]}
        assert "emb/meta" in names
        assert "emb/word_vecs" in names
        assert "emb/ent_vecs" in names

    def test_pipeline_uses_mapped_model(self, snapshot_with_embeddings):
        snapshot, _, _ = snapshot_with_embeddings
        config = AidaConfig.full()
        config.prerank_topk = 4
        pipeline = snapshot.pipeline(config)
        assert pipeline.embeddings is snapshot.embeddings


class TestWithoutEmbeddings:
    @pytest.fixture(scope="class")
    def plain_snapshot(self, kb, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("snap-plain") / "kb.snap")
        manifest = build_snapshot(kb, path)
        snapshot = load_snapshot(path)
        yield snapshot, manifest
        snapshot.close()

    def test_manifest_and_flag(self, plain_snapshot):
        snapshot, manifest = plain_snapshot
        assert manifest["embeddings"] is None
        assert not snapshot.has_embeddings

    def test_embeddings_access_fails_cleanly(self, plain_snapshot):
        snapshot, _ = plain_snapshot
        with pytest.raises(SnapshotError):
            snapshot.embeddings

    def test_prerank_pipeline_trains_on_demand(
        self, plain_snapshot, sample_docs
    ):
        snapshot, _ = plain_snapshot
        config = AidaConfig.full()
        config.prerank_topk = 2
        pipeline = snapshot.pipeline(config)
        assert pipeline.preranker is not None
        result = pipeline.disambiguate(sample_docs[0].document)
        assert result.assignments


class TestVersionOneCompatibility:
    """Version-1 images (pre-embeddings) must keep loading and serving."""

    @pytest.fixture(scope="class")
    def v1_path(self, kb, tmp_path_factory, request):
        path = str(tmp_path_factory.mktemp("snap-v1") / "kb.snap")
        # Build a genuine version-1 image: the writer stamps the module
        # global into both the header and the manifest at call time.
        original = snap.FORMAT_VERSION
        snap.FORMAT_VERSION = 1
        try:
            build_snapshot(kb, path)
        finally:
            snap.FORMAT_VERSION = original
        return path

    def test_v1_loads_under_v2_reader(self, v1_path):
        snapshot = load_snapshot(v1_path)
        try:
            assert snapshot.manifest["format"] == 1
            assert not snapshot.has_embeddings
        finally:
            snapshot.close()

    def test_v1_inspects_clean(self, v1_path):
        info = inspect_snapshot(v1_path)
        assert info["manifest"]["format"] == 1

    def test_v1_serves_default_config(self, v1_path, sample_docs):
        snapshot = load_snapshot(v1_path)
        try:
            pipeline = snapshot.pipeline(AidaConfig.full())
            result = pipeline.disambiguate(sample_docs[0].document)
            assert result.assignments
        finally:
            snapshot.close()

    def test_v1_serves_prerank_via_on_demand_training(
        self, v1_path, sample_docs
    ):
        snapshot = load_snapshot(v1_path)
        try:
            config = AidaConfig.full()
            config.prerank_topk = 2
            pipeline = snapshot.pipeline(config)
            assert pipeline.preranker is not None
            result = pipeline.disambiguate(sample_docs[0].document)
            assert result.assignments
            assert "prerank" in result.stats.phase_seconds
        finally:
            snapshot.close()

    def test_future_version_rejected(self, kb, tmp_path):
        path = str(tmp_path / "future.snap")
        original = snap.FORMAT_VERSION
        snap.FORMAT_VERSION = original + 1
        try:
            build_snapshot(kb, path)
        finally:
            snap.FORMAT_VERSION = original
        with pytest.raises(SnapshotError):
            load_snapshot(path)
