"""Tests for the entity link graph."""

import pytest

from repro.kb.links import LinkGraph


@pytest.fixture
def graph():
    g = LinkGraph()
    g.add_links(
        [
            ("A", "B"),
            ("A", "C"),
            ("B", "C"),
            ("D", "C"),
            ("D", "B"),
        ]
    )
    return g


class TestConstruction:
    def test_edge_count(self, graph):
        assert graph.edge_count == 5

    def test_duplicate_edges_ignored(self, graph):
        assert not graph.add_link("A", "B")
        assert graph.edge_count == 5

    def test_self_links_ignored(self, graph):
        assert not graph.add_link("A", "A")

    def test_node_count(self, graph):
        assert graph.node_count() == 4


class TestLookups:
    def test_outlinks(self, graph):
        assert graph.outlinks("A") == frozenset({"B", "C"})

    def test_inlinks(self, graph):
        assert graph.inlinks("C") == frozenset({"A", "B", "D"})

    def test_inlink_count(self, graph):
        assert graph.inlink_count("C") == 3
        assert graph.inlink_count("A") == 0

    def test_has_link_directed(self, graph):
        assert graph.has_link("A", "B")
        assert not graph.has_link("B", "A")

    def test_shared_inlinks(self, graph):
        # B's inlinks {A, D}; C's inlinks {A, B, D} -> shared {A, D}.
        assert graph.shared_inlinks("B", "C") == 2

    def test_inlinks_of_unknown_node(self, graph):
        assert graph.inlinks("Z") == frozenset()

    def test_inlink_cache_invalidation(self, graph):
        before = graph.inlinks("C")
        graph.add_link("E", "C")
        after = graph.inlinks("C")
        assert "E" in after and "E" not in before


class TestStatistics:
    def test_degree_histogram(self, graph):
        hist = graph.degree_histogram()
        assert hist[0] == 2  # A and D have no inlinks
        assert hist[3] == 1  # C has three

    def test_nodes_sorted(self, graph):
        assert graph.nodes() == ["A", "B", "C", "D"]
