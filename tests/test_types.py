"""Tests for the core value types."""

import pytest

from repro.types import (
    AnnotatedDocument,
    Annotation,
    DisambiguationResult,
    Document,
    Mention,
    MentionAssignment,
    OUT_OF_KB,
    is_out_of_kb,
)


def _doc(tokens, mentions=()):
    return Document(doc_id="d", tokens=tuple(tokens), mentions=tuple(mentions))


class TestMention:
    def test_valid_span(self):
        mention = Mention(surface="Dylan", start=2, end=3)
        assert mention.length == 1

    def test_empty_span_rejected(self):
        with pytest.raises(ValueError):
            Mention(surface="x", start=3, end=3)

    def test_inverted_span_rejected(self):
        with pytest.raises(ValueError):
            Mention(surface="x", start=4, end=2)

    def test_mentions_are_hashable_and_comparable(self):
        a = Mention(surface="Page", start=0, end=1)
        b = Mention(surface="Page", start=0, end=1)
        assert a == b
        assert hash(a) == hash(b)


class TestDocument:
    def test_text_joins_tokens(self):
        doc = _doc(["Dylan", "played", "."])
        assert doc.text == "Dylan played ."

    def test_mention_surface_recomputed(self):
        mention = Mention(surface="Bob Dylan", start=0, end=2)
        doc = _doc(["Bob", "Dylan", "sang"], [mention])
        assert doc.mention_surface(mention) == "Bob Dylan"

    def test_with_mentions_returns_new_document(self):
        doc = _doc(["a", "b"])
        mention = Mention(surface="a", start=0, end=1)
        updated = doc.with_mentions([mention])
        assert updated.mentions == (mention,)
        assert doc.mentions == ()
        assert updated.doc_id == doc.doc_id


class TestOutOfKb:
    def test_marker_is_detected(self):
        assert is_out_of_kb(OUT_OF_KB)

    def test_regular_entity_is_not(self):
        assert not is_out_of_kb("Bob_Dylan")

    def test_none_is_not_out_of_kb(self):
        assert not is_out_of_kb(None)

    def test_annotation_flag(self):
        mention = Mention(surface="x", start=0, end=1)
        assert Annotation(mention=mention, entity=OUT_OF_KB).is_out_of_kb
        assert not Annotation(mention=mention, entity="E1").is_out_of_kb


class TestAnnotatedDocument:
    def _annotated(self):
        m1 = Mention(surface="A", start=0, end=1)
        m2 = Mention(surface="B", start=1, end=2)
        doc = _doc(["A", "B"], [m1, m2])
        return AnnotatedDocument(
            document=doc,
            gold=(
                Annotation(mention=m1, entity="E1"),
                Annotation(mention=m2, entity=OUT_OF_KB),
            ),
        )

    def test_gold_map(self):
        annotated = self._annotated()
        assert annotated.gold_map()[annotated.gold[0].mention] == "E1"

    def test_in_kb_and_out_of_kb_split(self):
        annotated = self._annotated()
        assert len(annotated.in_kb_gold()) == 1
        assert len(annotated.out_of_kb_gold()) == 1

    def test_doc_id_passthrough(self):
        assert self._annotated().doc_id == "d"


class TestDisambiguationResult:
    def test_as_map_and_lookup(self):
        mention = Mention(surface="A", start=0, end=1)
        result = DisambiguationResult(
            doc_id="d",
            assignments=[
                MentionAssignment(mention=mention, entity="E1", score=0.5)
            ],
        )
        assert result.as_map() == {mention: "E1"}
        assert result.assignment_for(mention).entity == "E1"
        assert result.entities == ["E1"]

    def test_lookup_missing_mention_returns_none(self):
        result = DisambiguationResult(doc_id="d", assignments=[])
        missing = Mention(surface="x", start=0, end=1)
        assert result.assignment_for(missing) is None

    def test_out_of_kb_assignment_flag(self):
        mention = Mention(surface="A", start=0, end=1)
        assignment = MentionAssignment(mention=mention, entity=OUT_OF_KB)
        assert assignment.is_out_of_kb
