"""Integration tests for the paper's qualitative phenomena.

The dissertation's "Interesting Examples" sections (3.6.4, 4.6.3, 5.7.3)
walk through concrete cases: metonymy resolved by coherence, all-caps
acronym matching, long-tail entities rescued by keyphrase relatedness,
coherence led astray by heterogeneous documents.  These tests reproduce
each phenomenon on the synthetic world.
"""

import pytest

from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.datagen.documents import DocumentGenerator, DocumentSpec
from repro.types import Document, Mention


class TestMetonymy:
    """Section 3.6.4: 'Italy recalled Cuttitta ... against Scotland at
    Murrayfield' — country/city names in sports news denote teams."""

    def test_city_name_in_sports_context_resolves_to_team(
        self, world, kb
    ):
        # Find a sports cluster whose team shares its city's name.
        target = None
        for cluster in world.clusters.values():
            if cluster.domain != "sports":
                continue
            in_kb = set(world.in_kb_ids())
            teams = [
                m
                for m in cluster.members
                if m in in_kb
                and "football_club" in world.entity(m).types
            ]
            for team in teams:
                city_name = world.entity(team).names.short_forms[0]
                if len(kb.candidates(city_name)) >= 2:
                    target = (cluster, team, city_name)
                    break
            if target:
                break
        if target is None:
            pytest.skip("no metonymic team/city pair in test world")
        cluster, team, city_name = target
        # A sports document: the team's players provide the coherence.
        generator = DocumentGenerator(world, seed=777)
        spec = DocumentSpec(
            doc_id="metonymy",
            cluster_ids=[cluster.cluster_id],
            forced_entities=[team],
            num_mentions=5,
            ambiguous_prob=1.0,
            context_prob=0.9,
            distractor_prob=0.0,
            metonymy_bias=0.0,
        )
        annotated = generator.generate(spec)
        aida = AidaDisambiguator(kb, config=AidaConfig.full())
        result = aida.disambiguate(annotated.document)
        mapping = {
            a.mention.surface: a.entity for a in result.assignments
        }
        predicted = mapping.get(city_name) or mapping.get(
            world.entity(team).names.canonical
        )
        assert predicted == team


class TestAcronymMatching:
    """Section 3.3.2: all-upper-case mentions must retrieve candidates
    registered under mixed-case names ('APPLE' -> Apple Inc.)."""

    def test_upper_case_mention_finds_candidates(self, world, kb):
        # Take any multi-character name and upper-case it.
        name = next(
            n
            for n in kb.dictionary.all_names()
            if len(n) > 3 and kb.candidates(n)
        )
        assert kb.candidates(name.upper()) == kb.candidates(name)

    def test_short_names_stay_case_sensitive(self, world, kb):
        acronyms = [
            n
            for n in kb.dictionary.all_names()
            if len(n) <= 3 and n.isupper() and kb.candidates(n)
        ]
        if not acronyms:
            pytest.skip("no acronyms in test world")
        acronym = acronyms[0]
        assert kb.candidates(acronym)
        assert kb.candidates(acronym.lower()) == []


class TestHeterogeneousDocuments:
    """Section 3.5: for two-topic documents, the coherence robustness
    test keeps accuracy close to the similarity-only result."""

    def test_coherence_test_limits_damage(self, world, kb):
        generator = DocumentGenerator(world, seed=888)
        cluster_ids = sorted(world.clusters)
        docs = [
            generator.generate(
                DocumentSpec(
                    doc_id=f"hetero-{i}",
                    cluster_ids=[
                        cluster_ids[i % len(cluster_ids)],
                        cluster_ids[(i + 7) % len(cluster_ids)],
                    ],
                    num_mentions=6,
                    context_prob=0.9,
                )
            )
            for i in range(12)
        ]
        from repro.eval.runner import run_disambiguator

        sim = run_disambiguator(
            AidaDisambiguator(kb, config=AidaConfig.sim_only()), docs,
            kb=kb,
        )
        tested = run_disambiguator(
            AidaDisambiguator(kb, config=AidaConfig.full()), docs, kb=kb
        )
        assert tested.micro >= sim.micro - 0.05


class TestLongTailRelatedness:
    """Section 4.6.3: the 'Burkhard Reich' case — keyphrase relatedness
    captures fine-grained coherence for link-poor entities that the
    link-based measure misses."""

    def test_kore_nonzero_for_link_poor_pair(self, world, kb):
        from repro.relatedness.kore import KoreRelatedness
        from repro.relatedness.milne_witten import MilneWittenRelatedness
        from repro.weights.model import WeightModel

        weights = WeightModel(kb.keyphrases, kb.links)
        kore = KoreRelatedness(kb.keyphrases, weights)
        mw = MilneWittenRelatedness(kb.links, kb.entity_count)
        # Find a same-cluster pair where at least one side is link-poor
        # enough that MW sees nothing.
        found = 0
        for cluster in world.clusters.values():
            members = [
                m for m in cluster.members if m in set(world.in_kb_ids())
            ]
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    if mw.relatedness(a, b) == 0.0 and kore.relatedness(
                        a, b
                    ) > 0.0:
                        found += 1
        assert found > 0


class TestUnknownNameTriviallyOutOfKb:
    """Section 2.2.1: a mention without dictionary candidates is
    trivially out-of-KB."""

    def test_unknown_mention(self, kb):
        doc = Document(
            doc_id="unknown",
            tokens=("Xyzzyplugh", "spoke", "."),
            mentions=(Mention(surface="Xyzzyplugh", start=0, end=1),),
        )
        aida = AidaDisambiguator(kb, config=AidaConfig.full())
        result = aida.disambiguate(doc)
        assert result.assignments[0].is_out_of_kb
