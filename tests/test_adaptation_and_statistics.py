"""Tests for domain adaptation (Section 7.2.3) and KB statistics."""

import pytest

from repro.core.adaptation import DomainAdaptiveDisambiguator
from repro.core.config import AidaConfig
from repro.datagen.documents import DocumentSpec
from repro.eval.runner import run_disambiguator
from repro.kb.statistics import (
    DistributionSummary,
    ambiguity_histogram,
    describe,
    inlink_summary,
    keyphrase_length_summary,
    link_poor_fraction,
    mean_ambiguity,
    type_distribution,
)


class TestDomainAdaptation:
    @pytest.fixture(scope="class")
    def adaptive(self, kb):
        return DomainAdaptiveDisambiguator(
            kb, config=AidaConfig.full(), boost=0.3
        )

    def test_profiles_cover_domains(self, world, adaptive):
        profiles = adaptive.domain_profiles()
        domains = {
            world.entity(eid).domain for eid in world.in_kb_ids()
        }
        assert set(profiles) == domains

    def test_profiles_normalized(self, adaptive):
        for profile in adaptive.domain_profiles().values():
            if profile:
                assert sum(profile.values()) == pytest.approx(1.0)

    def test_posterior_matches_document_domain(
        self, world, doc_generator, adaptive
    ):
        # A single-cluster document's inferred domain should usually be
        # the cluster's domain.
        hits = 0
        total = 0
        for cluster_id in sorted(world.clusters)[:8]:
            spec = DocumentSpec(
                doc_id=f"adapt-{cluster_id}",
                cluster_ids=[cluster_id],
                num_mentions=5,
                context_prob=0.9,
            )
            annotated = doc_generator.generate(spec)
            posterior = adaptive.domain_posterior(annotated.document)
            if not posterior:
                continue
            inferred = max(sorted(posterior), key=lambda d: posterior[d])
            total += 1
            if inferred == world.clusters[cluster_id].domain:
                hits += 1
        assert total > 0
        assert hits / total >= 0.6

    def test_accuracy_not_degraded(self, kb, world, doc_generator):
        docs = [
            doc_generator.generate(
                DocumentSpec(
                    doc_id=f"adapt-acc-{i}",
                    cluster_ids=[i % len(world.clusters)],
                    num_mentions=5,
                )
            )
            for i in range(10)
        ]
        from repro.core.pipeline import AidaDisambiguator

        plain = run_disambiguator(
            AidaDisambiguator(kb, config=AidaConfig.full()), docs, kb=kb
        )
        adaptive = run_disambiguator(
            DomainAdaptiveDisambiguator(
                kb, config=AidaConfig.full(), boost=0.3
            ),
            docs,
            kb=kb,
        )
        assert adaptive.micro >= plain.micro - 0.03

    def test_negative_boost_rejected(self, kb):
        with pytest.raises(ValueError):
            DomainAdaptiveDisambiguator(kb, boost=-1.0)

    def test_zero_boost_equals_plain(self, kb, sample_docs):
        from repro.core.pipeline import AidaDisambiguator

        plain = AidaDisambiguator(kb, config=AidaConfig.full())
        adaptive = DomainAdaptiveDisambiguator(
            kb, config=AidaConfig.full(), boost=0.0
        )
        document = sample_docs[0].document
        assert (
            plain.disambiguate(document).as_map()
            == adaptive.disambiguate(document).as_map()
        )


class TestStatistics:
    def test_distribution_summary(self):
        summary = DistributionSummary.of([3, 1, 2, 10])
        assert summary.count == 4
        assert summary.minimum == 1
        assert summary.maximum == 10
        assert summary.mean == pytest.approx(4.0)

    def test_distribution_summary_empty(self):
        summary = DistributionSummary.of([])
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_ambiguity_histogram(self, kb):
        histogram = ambiguity_histogram(kb)
        assert sum(histogram.values()) == len(kb.dictionary)
        assert any(count >= 2 for count in histogram)  # ambiguity exists

    def test_mean_ambiguity_at_least_one(self, kb):
        assert mean_ambiguity(kb) >= 1.0

    def test_inlink_summary(self, kb):
        summary = inlink_summary(kb)
        assert summary.count == len(kb)
        assert summary.maximum > summary.minimum

    def test_link_poor_fraction_monotone(self, kb):
        assert link_poor_fraction(kb, 2) <= link_poor_fraction(kb, 10)
        assert 0.0 <= link_poor_fraction(kb, 2) <= 1.0

    def test_keyphrase_length_near_paper(self, kb):
        # The paper reports an average keyphrase length of ~2.5 words;
        # the synthetic encyclopedia is built to the same ballpark.
        summary = keyphrase_length_summary(kb)
        assert 1.0 <= summary.mean <= 3.5

    def test_type_distribution_covers_entities(self, kb):
        counts = type_distribution(kb)
        assert sum(counts.values()) == len(kb)

    def test_describe_keys(self, kb):
        overview = describe(kb)
        assert overview["entities"] == len(kb)
        assert "mean_ambiguity" in overview
        assert "type_distribution" in overview
