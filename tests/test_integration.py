"""End-to-end integration tests: corpus generation → NED → evaluation.

These tests assert the *shape-level* findings of the paper on small
corpora: similarity beats prior, the full AIDA configuration is at least as
good as its ablations, keyphrase relatedness helps on long-tail stress
corpora, and explicit EE modeling yields high EE precision.
"""

import pytest

from repro.baselines.prior_only import PriorOnlyDisambiguator
from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.datagen.conll import ConllConfig, generate_conll
from repro.datagen.kore50 import Kore50Config, generate_kore50
from repro.eval.runner import run_disambiguator
from repro.ner.recognizer import NamedEntityRecognizer
from repro.relatedness.kore import KoreRelatedness
from repro.weights.model import WeightModel


@pytest.fixture(scope="module")
def conll_testb(world):
    corpus = generate_conll(world, ConllConfig(scale=0.05))
    return corpus.testb


class TestAidaOnConll:
    def test_full_aida_beats_prior(self, world, kb, conll_testb):
        full = run_disambiguator(
            AidaDisambiguator(kb, config=AidaConfig.full()),
            conll_testb,
            kb=kb,
        )
        prior = run_disambiguator(
            AidaDisambiguator(kb, config=AidaConfig.prior_only()),
            conll_testb,
            kb=kb,
        )
        assert full.micro > prior.micro

    def test_full_aida_at_least_sim(self, world, kb, conll_testb):
        full = run_disambiguator(
            AidaDisambiguator(kb, config=AidaConfig.full()),
            conll_testb,
            kb=kb,
        )
        sim = run_disambiguator(
            AidaDisambiguator(kb, config=AidaConfig.sim_only()),
            conll_testb,
            kb=kb,
        )
        assert full.micro >= sim.micro - 0.02

    def test_accuracy_is_high(self, kb, conll_testb):
        full = run_disambiguator(
            AidaDisambiguator(kb, config=AidaConfig.full()),
            conll_testb,
            kb=kb,
        )
        assert full.micro > 0.7


class TestKoreOnHardSentences:
    def test_kore_coherence_runs_on_kore50(self, world, kb):
        docs = generate_kore50(world, Kore50Config(num_sentences=15))
        weights = WeightModel(kb.keyphrases, kb.links)
        kore = KoreRelatedness(kb.keyphrases, weights)
        pipeline = AidaDisambiguator(
            kb, relatedness=kore, config=AidaConfig.full()
        )
        run = run_disambiguator(pipeline, docs, kb=kb)
        assert run.micro > 0.3  # hard corpus, but far above random


class TestNerIntegration:
    def test_ner_recovers_most_gold_mentions(self, kb, conll_testb):
        ner = NamedEntityRecognizer(kb.dictionary)
        recovered = 0
        total = 0
        for annotated in conll_testb[:10]:
            bare = annotated.document.with_mentions([])
            recognized = ner.recognize(bare)
            found = {(m.start, m.end) for m in recognized.mentions}
            for gold in annotated.gold:
                total += 1
                if (gold.mention.start, gold.mention.end) in found:
                    recovered += 1
        assert total > 0
        assert recovered / total > 0.6


class TestBaselineOrdering:
    def test_prior_only_wrapper_equals_baseline_class(
        self, kb, conll_testb
    ):
        # The PriorOnly baseline class and AIDA's prior-only config must
        # produce identical decisions on in-KB mentions.
        config_run = run_disambiguator(
            AidaDisambiguator(kb, config=AidaConfig.prior_only()),
            conll_testb[:5],
            kb=kb,
        )
        class_run = run_disambiguator(
            PriorOnlyDisambiguator(kb), conll_testb[:5], kb=kb
        )
        assert config_run.micro == pytest.approx(class_run.micro)
