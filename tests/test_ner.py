"""Tests for the named entity recognizer."""

import pytest

from repro.kb.dictionary import Dictionary
from repro.ner.recognizer import NamedEntityRecognizer
from repro.types import Document


@pytest.fixture
def dictionary():
    d = Dictionary()
    d.add_name("Bob Dylan", "Bob_Dylan", source="title")
    d.add_name("Dylan", "Bob_Dylan", source="anchor", anchor_count=1)
    d.add_name("Kashmir", "Kashmir_Song", source="anchor", anchor_count=1)
    return d


def _doc(text_tokens):
    return Document(doc_id="d", tokens=tuple(text_tokens))


class TestRecognition:
    def test_multi_token_dictionary_match(self, dictionary):
        ner = NamedEntityRecognizer(dictionary)
        doc = ner.recognize(_doc(["we", "saw", "Bob", "Dylan", "."]))
        surfaces = [m.surface for m in doc.mentions]
        assert "Bob Dylan" in surfaces

    def test_longest_match_wins(self, dictionary):
        ner = NamedEntityRecognizer(dictionary)
        mentions = ner.find_mentions(["we", "saw", "Bob", "Dylan"])
        assert [m.surface for m in mentions] == ["Bob Dylan"]

    def test_lowercase_words_ignored(self, dictionary):
        ner = NamedEntityRecognizer(dictionary)
        assert ner.find_mentions(["the", "record", "played"]) == []

    def test_unknown_capitalized_run_emitted(self, dictionary):
        ner = NamedEntityRecognizer(dictionary)
        mentions = ner.find_mentions(["we", "met", "Edward", "Snowden"])
        assert [m.surface for m in mentions] == ["Edward Snowden"]

    def test_unknown_names_suppressed_when_disabled(self, dictionary):
        ner = NamedEntityRecognizer(dictionary, emit_unknown_names=False)
        assert ner.find_mentions(["we", "met", "Zzz"]) == []

    def test_sentence_initial_known_name(self, dictionary):
        ner = NamedEntityRecognizer(dictionary)
        mentions = ner.find_mentions(["Kashmir", "is", "a", "song"])
        assert [m.surface for m in mentions] == ["Kashmir"]

    def test_sentence_initial_unknown_single_word_skipped(self, dictionary):
        # "The" capitalized at sentence start must not become a mention.
        ner = NamedEntityRecognizer(dictionary)
        assert ner.find_mentions(["Great", "music", "played"]) == []

    def test_mention_offsets(self, dictionary):
        ner = NamedEntityRecognizer(dictionary)
        mentions = ner.find_mentions(["x", "Bob", "Dylan", "y"])
        assert mentions[0].start == 1
        assert mentions[0].end == 3

    def test_no_overlapping_mentions(self, dictionary):
        ner = NamedEntityRecognizer(dictionary)
        mentions = ner.find_mentions(
            ["Bob", "Dylan", "met", "Bob", "Dylan"]
        )
        spans = [(m.start, m.end) for m in mentions]
        for i, (s1, e1) in enumerate(spans):
            for s2, e2 in spans[i + 1 :]:
                assert e1 <= s2 or e2 <= s1

    def test_recognize_preserves_document_fields(self, dictionary):
        ner = NamedEntityRecognizer(dictionary)
        doc = Document(doc_id="x", tokens=("Bob", "Dylan"), timestamp=4)
        out = ner.recognize(doc)
        assert out.doc_id == "x"
        assert out.timestamp == 4
