"""Differential: batch evaluation is bit-identical to the serial path.

``run_disambiguator`` with a :class:`BatchRunner` (any worker count, any
executor) must produce exactly the per-mention assignments, scores, and
evaluation metrics of the plain serial loop — parallelism and the shared
relatedness cache are pure throughput optimizations.
"""

from __future__ import annotations

import pytest

from repro.core.batch import BatchConfig, BatchRunner
from repro.core.pipeline import AidaDisambiguator
from repro.datagen.wikipedia import build_world_kb
from repro.datagen.world import World, WorldConfig
from repro.eval.runner import run_disambiguator
from repro.relatedness import CachingRelatedness, MilneWittenRelatedness


def _comparable(result):
    """Everything order- and value-relevant, minus the timing stats."""
    return [
        (
            assignment.mention,
            assignment.entity,
            assignment.score,
            sorted(assignment.candidate_scores.items()),
        )
        for assignment in result.assignments
    ]


def _cached_pipeline(kb):
    return AidaDisambiguator(
        kb,
        relatedness=CachingRelatedness(
            MilneWittenRelatedness(kb.links, max(kb.entity_count, 2))
        ),
    )


@pytest.fixture(scope="module")
def serial_run(kb, sample_docs):
    return run_disambiguator(AidaDisambiguator(kb), sample_docs, kb=kb)


@pytest.mark.parametrize("workers", [1, 2, 8])
def test_batch_bit_identical_to_serial(kb, sample_docs, serial_run, workers):
    """Thread-pool evaluation equals the serial loop for 1, 2, 8 workers."""
    batch_run = run_disambiguator(
        _cached_pipeline(kb), sample_docs, kb=kb, workers=workers
    )
    assert not batch_run.failures
    assert len(batch_run.results) == len(serial_run.results)
    for serial_result, batch_result in zip(
        serial_run.results, batch_run.results
    ):
        assert serial_result.doc_id == batch_result.doc_id
        assert _comparable(serial_result) == _comparable(batch_result)
    assert batch_run.micro == serial_run.micro
    assert batch_run.macro == serial_run.macro
    assert batch_run.map == serial_run.map
    assert batch_run.link_records == serial_run.link_records


def test_explicit_batch_runner_equals_workers_argument(
    kb, sample_docs, serial_run
):
    """Passing a pre-built BatchRunner behaves like the workers knob."""
    runner = BatchRunner(
        pipeline=_cached_pipeline(kb),
        config=BatchConfig(workers=4, executor="thread", max_pending=3),
    )
    batch_run = run_disambiguator(
        None, sample_docs, kb=kb, batch=runner
    )
    for serial_result, batch_result in zip(
        serial_run.results, batch_run.results
    ):
        assert _comparable(serial_result) == _comparable(batch_result)
    assert batch_run.micro == serial_run.micro


def _small_world_pipeline():
    """Module-level factory: picklable for the process-pool differential.

    Rebuilds the conftest world/KB (same seeds) inside each worker
    process — processes share nothing, so determinism must come from the
    seeds alone.
    """
    world = World.generate(WorldConfig(seed=7, clusters_per_domain=4))
    kb, _wiki = build_world_kb(world, seed=101)
    return AidaDisambiguator(kb)


def test_process_pool_bit_identical_to_serial(kb, sample_docs, serial_run):
    """Process workers rebuild the KB from seeds yet agree bit-for-bit."""
    runner = BatchRunner(
        pipeline_factory=_small_world_pipeline,
        config=BatchConfig(workers=2, executor="process"),
    )
    batch_run = run_disambiguator(
        None, sample_docs, kb=kb, batch=runner
    )
    assert not batch_run.failures
    for serial_result, batch_result in zip(
        serial_run.results, batch_run.results
    ):
        assert serial_result.doc_id == batch_result.doc_id
        assert _comparable(serial_result) == _comparable(batch_result)
    assert batch_run.micro == serial_run.micro
    assert batch_run.macro == serial_run.macro
