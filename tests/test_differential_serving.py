"""Differential: the serving path is bit-identical to the bare pipeline.

Single-flight submissions (no faults, nothing shed — the queue never
fills, so every request is admitted at the ``full`` rung) through the
whole serving stack — admission, micro-batching, the rung router, the
batch runner, the resilient wrapper — must reproduce
``AidaDisambiguator.disambiguate`` exactly: same entities, same scores,
same candidate score tables.  Mirrors ``tests/test_differential_batch.py``
across ten seeded worlds plus the shared session corpus over real HTTP.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.pipeline import AidaDisambiguator
from repro.datagen.documents import DocumentGenerator, DocumentSpec
from repro.datagen.wikipedia import build_world_kb
from repro.datagen.world import World, WorldConfig

from tests.serving.conftest import (
    comparable,
    document_payload,
    drive,
    http_request,
    make_server,
)

WORLD_SEEDS = [2600 + i for i in range(10)]

DOCS_PER_WORLD = 4
MENTIONS_PER_DOC = 4


class ServedWorld:
    """One seeded world, its documents, and the fault-free baseline."""

    def __init__(self, seed: int):
        self.seed = seed
        world = World.generate(
            WorldConfig(seed=seed, clusters_per_domain=2)
        )
        self.kb, _wiki = build_world_kb(world, seed=seed + 94)
        generator = DocumentGenerator(world, seed=seed + 55)
        cluster_ids = sorted(world.clusters)
        self.documents = [
            generator.generate(
                DocumentSpec(
                    doc_id=f"w{seed}-d{index}",
                    cluster_ids=[cluster_ids[index % len(cluster_ids)]],
                    num_mentions=MENTIONS_PER_DOC,
                )
            ).document
            for index in range(DOCS_PER_WORLD)
        ]
        pipeline = AidaDisambiguator(self.kb)
        self.baseline = [
            comparable(pipeline.disambiguate(document))
            for document in self.documents
        ]


@pytest.fixture(scope="module", params=WORLD_SEEDS)
def served_world(request) -> ServedWorld:
    return ServedWorld(request.param)


def test_serving_bit_identical_per_world(served_world):
    """Single-flight serving equals the bare pipeline on every world."""
    server = make_server(
        AidaDisambiguator(served_world.kb), kb=served_world.kb
    )

    async def driver(server):
        return await server.process(served_world.documents, concurrency=1)

    responses = drive(server, driver, listen=False)
    assert len(responses) == len(served_world.documents)
    for document, response, expected in zip(
        served_world.documents, responses, served_world.baseline
    ):
        assert response.result.doc_id == document.doc_id
        assert response.admitted_rung == "full"  # nothing was shed
        assert response.result.degradation_rung == "full"
        assert response.result.attempts == 1
        assert comparable(response.result) == expected


def test_serving_bit_identical_batched(served_world):
    """Size-triggered multi-document batches change nothing either: all
    documents submitted concurrently, compared in input order."""
    server = make_server(
        AidaDisambiguator(served_world.kb),
        kb=served_world.kb,
        max_queue=16,
        batch_max_docs=DOCS_PER_WORLD,
    )

    async def driver(server):
        return await server.process(
            served_world.documents, concurrency=DOCS_PER_WORLD
        )

    responses = drive(server, driver, listen=False)
    for response, expected in zip(responses, served_world.baseline):
        assert comparable(response.result) == expected


def test_serving_http_bit_identical_on_session_corpus(
    kb, sample_docs
):
    """The golden-corpus documents over real loopback HTTP: entity and
    score for every assignment equal the direct pipeline call."""
    pipeline = AidaDisambiguator(kb)
    documents = [annotated.document for annotated in sample_docs]
    baseline = {
        doc.doc_id: [
            (a.mention.surface, a.entity, a.score)
            for a in pipeline.disambiguate(doc).assignments
        ]
        for doc in documents
    }
    server = make_server(AidaDisambiguator(kb), kb=kb, max_queue=32)

    async def driver(server):
        responses = []
        for doc in documents:  # single-flight: strictly sequential
            responses.append(
                await http_request(
                    server.port,
                    "POST",
                    "/disambiguate",
                    document_payload(doc),
                )
            )
        return responses

    responses = drive(server, driver)
    for doc, (status, body, _headers) in zip(documents, responses):
        assert status == 200
        assert body["rung"] == "full"
        assert body["attempts"] == 1
        got = [
            (a["surface"], a["entity"], a["score"])
            for a in body["assignments"]
        ]
        assert got == baseline[doc.doc_id]
