"""Regenerate the golden regression fixture.

The golden fixture freezes (a) a small annotated corpus and (b) the full
AIDA pipeline's per-mention assignments on it.  ``test_golden_regression``
replays the corpus through a freshly built pipeline and diffs against the
frozen expectations — the seed against which every future refactor is
checked.

Regenerate ONLY when an intentional behaviour change is being made, and
say so in the commit message::

    PYTHONPATH=src python tests/fixtures/golden/generate.py

The KB is derived from the same world seed as ``tests/conftest.py``
(seed 7, 4 clusters per domain), so the fixture needs no KB files of its
own — the world generator is deterministic.
"""

from __future__ import annotations

import json
import os

from repro.core.config import AidaConfig
from repro.core.pipeline import AidaDisambiguator
from repro.datagen.conll import ConllConfig, generate_conll
from repro.datagen.io import save_corpus
from repro.datagen.wikipedia import build_world_kb
from repro.datagen.world import World, WorldConfig

HERE = os.path.dirname(os.path.abspath(__file__))
CORPUS_PATH = os.path.join(HERE, "corpus.jsonl")
EXPECTED_PATH = os.path.join(HERE, "expected.json")

#: Must match tests/conftest.py so the test suite reuses its session KB.
WORLD_SEED = 7
CLUSTERS_PER_DOMAIN = 4
KB_SEED = 101
CONLL_SCALE = 0.05

#: Pipeline variants frozen in the fixture.
VARIANTS = {
    "full": AidaConfig.full,
    "sim": AidaConfig.sim_only,
}


def build_corpus(world: World):
    """The frozen corpus: the testb split of a small CoNLL-style world."""
    corpus = generate_conll(world, ConllConfig(scale=CONLL_SCALE))
    return corpus.testb


def expected_assignments(kb, documents) -> dict:
    """variant -> doc_id -> ordered per-mention assignment records."""
    expected = {}
    for variant, make_config in sorted(VARIANTS.items()):
        pipeline = AidaDisambiguator(kb, config=make_config())
        per_doc = {}
        for annotated in documents:
            result = pipeline.disambiguate(annotated.document)
            per_doc[annotated.doc_id] = [
                {
                    "surface": assignment.mention.surface,
                    "start": assignment.mention.start,
                    "end": assignment.mention.end,
                    "entity": assignment.entity,
                    "score": assignment.score,
                }
                for assignment in result.assignments
            ]
        expected[variant] = per_doc
    return expected


def main() -> None:
    world = World.generate(
        WorldConfig(seed=WORLD_SEED, clusters_per_domain=CLUSTERS_PER_DOMAIN)
    )
    kb, _wiki = build_world_kb(world, seed=KB_SEED)
    documents = build_corpus(world)
    save_corpus(documents, CORPUS_PATH)
    record = {
        "world_seed": WORLD_SEED,
        "clusters_per_domain": CLUSTERS_PER_DOMAIN,
        "kb_seed": KB_SEED,
        "conll_scale": CONLL_SCALE,
        "documents": len(documents),
        "expected": expected_assignments(kb, documents),
    }
    with open(EXPECTED_PATH, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=1, sort_keys=True)
        handle.write("\n")
    mentions = sum(len(doc.gold) for doc in documents)
    print(
        f"wrote {len(documents)} documents ({mentions} gold mentions) "
        f"and {len(VARIANTS)} variants"
    )


if __name__ == "__main__":
    main()
