"""Robustness through the batch layer: isolation, taxonomy, concurrency.

Covers the batch-side satellite work: ``DocumentFailure`` records routed
through the error taxonomy (control-flow exceptions must escape), the
resilient wrapper riding inside :class:`BatchRunner` workers, and an
8-thread stress run under injected worker latency that must stay
input-ordered and bit-identical to the serial pass.
"""

from __future__ import annotations

import pytest

from repro.core.batch import BatchConfig, BatchRunner
from repro.core.pipeline import AidaDisambiguator
from repro.errors import PermanentError, TransientError
from repro.faults.injector import FaultInjector, FaultSpec, injected
from repro.faults.resilient import RobustnessConfig, make_resilient
from repro.faults.retry import RetryPolicy
from repro.obs import MetricsRegistry, set_metrics
from repro.relatedness import CachingRelatedness, MilneWittenRelatedness
from repro.types import DisambiguationResult

NO_SLEEP = RetryPolicy(base_ms=0.0, max_ms=0.0, jitter=0.0)


class _FlakyPipeline:
    """Raises a transient error the first *flaky_calls* times per doc."""

    def __init__(self, flaky_calls: int = 1):
        self.flaky_calls = flaky_calls
        self.seen = {}

    def disambiguate(self, document) -> DisambiguationResult:
        count = self.seen.get(document.doc_id, 0) + 1
        self.seen[document.doc_id] = count
        if count <= self.flaky_calls:
            raise TransientError(f"flaky on {document.doc_id} #{count}")
        return DisambiguationResult(doc_id=document.doc_id, assignments=[])


class _FailingPipeline:
    """Always raises the configured exception instance."""

    def __init__(self, error: BaseException):
        self.error = error

    def disambiguate(self, document):
        raise self.error


def _comparable(result):
    return [
        (
            assignment.mention,
            assignment.entity,
            assignment.score,
            sorted(assignment.candidate_scores.items()),
        )
        for assignment in result.assignments
    ]


def _cached_pipeline(kb):
    return AidaDisambiguator(
        kb,
        relatedness=CachingRelatedness(
            MilneWittenRelatedness(kb.links, max(kb.entity_count, 2))
        ),
    )


class TestFailureRecords:
    def test_flaky_pipeline_recovers_with_retries(self, sample_docs):
        pipeline = make_resilient(
            _FlakyPipeline(flaky_calls=2),
            RobustnessConfig(retries=2, backoff=NO_SLEEP),
        )
        documents = [annotated.document for annotated in sample_docs]
        outcome = BatchRunner(pipeline=pipeline).run(documents)
        assert outcome.ok
        assert [r.doc_id for r in outcome.results] == [
            d.doc_id for d in documents
        ]
        assert all(r.attempts == 3 for r in outcome.results)
        assert outcome.rung_counts == {"full": len(documents)}

    def test_transient_exhaustion_recorded_with_attempts(self, sample_docs):
        pipeline = make_resilient(
            _FlakyPipeline(flaky_calls=99),
            RobustnessConfig(retries=2, backoff=NO_SLEEP),
        )
        documents = [annotated.document for annotated in sample_docs[:3]]
        outcome = BatchRunner(pipeline=pipeline).run(documents)
        assert not outcome.ok
        assert len(outcome.failures) == len(documents)
        for failure in outcome.failures:
            assert failure.kind == "transient"
            assert failure.attempts == 3  # 1 + 2 retries
        assert outcome.failure_kinds == {"transient": len(documents)}

    def test_permanent_failure_kind(self, sample_docs):
        documents = [annotated.document for annotated in sample_docs[:2]]
        outcome = BatchRunner(
            pipeline=_FailingPipeline(PermanentError("backend gone"))
        ).run(documents)
        assert [f.kind for f in outcome.failures] == ["permanent"] * 2
        assert [f.index for f in outcome.failures] == [0, 1]
        assert all(
            "PermanentError: backend gone" == f.error
            for f in outcome.failures
        )

    @pytest.mark.parametrize("control", [KeyboardInterrupt, SystemExit])
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_control_flow_exceptions_escape_batch(
        self, sample_docs, control, executor
    ):
        """Ctrl-C and interpreter shutdown are never document failures."""
        runner = BatchRunner(
            pipeline=_FailingPipeline(control()),
            config=BatchConfig(workers=2, executor=executor),
        )
        documents = [annotated.document for annotated in sample_docs[:2]]
        with pytest.raises(control):
            runner.run(documents)


class TestResilientBatchIntegration:
    def test_permanent_relatedness_faults_degrade_in_batch(
        self, kb, sample_docs
    ):
        pipeline = make_resilient(
            AidaDisambiguator(kb),
            RobustnessConfig(degrade=True, backoff=NO_SLEEP),
        )
        documents = [annotated.document for annotated in sample_docs]
        injector = FaultInjector(
            [FaultSpec(site="relatedness", rate=1.0, kind="permanent")],
            seed=0,
        )
        with injected(injector):
            outcome = BatchRunner(pipeline=pipeline).run(documents)
        assert outcome.ok
        rungs = outcome.rung_counts
        assert set(rungs) <= {"full", "no_coherence"}
        assert rungs.get("no_coherence", 0) >= 1
        assert sum(rungs.values()) == len(documents)


class TestThreadStress:
    def test_eight_threads_under_latency(self, kb, sample_docs):
        """Satellite 4: 8 threads + injected worker latency stay ordered,
        bit-identical to serial, and drain the queue-depth gauge."""
        documents = [
            annotated.document for annotated in sample_docs
        ] * 3
        serial = [
            _comparable(AidaDisambiguator(kb).disambiguate(document))
            for document in documents
        ]
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        injector = FaultInjector(
            [
                FaultSpec(
                    site="worker", rate=1.0, kind="latency", latency_ms=2.0
                )
            ],
            seed=0,
        )
        try:
            with injected(injector):
                outcome = BatchRunner(
                    pipeline=_cached_pipeline(kb),
                    config=BatchConfig(
                        workers=8, executor="thread", max_pending=12
                    ),
                ).run(documents)
        finally:
            set_metrics(previous)
        assert outcome.ok
        assert [r.doc_id for r in outcome.results] == [
            d.doc_id for d in documents
        ]
        assert [_comparable(r) for r in outcome.results] == serial
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["batch.queue_depth"] == 0
        assert injector.stats()["worker"]["calls"] == len(documents)
