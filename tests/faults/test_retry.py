"""Unit tests of the bounded-retry / backoff machinery."""

from __future__ import annotations

import pytest

from repro.errors import (
    ConfigurationError,
    DeadlineExceeded,
    PermanentError,
    TransientError,
    is_transient,
)
from repro.faults.retry import (
    RetryPolicy,
    backoff_schedule,
    call_with_retry,
)
from repro.obs import MetricsRegistry, set_metrics

NO_SLEEP = RetryPolicy(retries=3, base_ms=0.0, seed=1)


class _Flaky:
    """Raises the queued exceptions, then returns a value."""

    def __init__(self, errors):
        self.errors = list(errors)
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.errors:
            raise self.errors.pop(0)
        return "ok"


class TestTaxonomy:
    def test_transient_markers(self):
        assert is_transient(TransientError("x"))
        assert is_transient(TimeoutError())
        assert is_transient(ConnectionResetError())
        assert not is_transient(PermanentError("x"))
        assert not is_transient(ValueError("x"))
        assert not is_transient(DeadlineExceeded("stage", 10.0, 5.0))


class TestCallWithRetry:
    def test_transient_errors_retried_until_success(self):
        fn = _Flaky([TransientError("a"), TransientError("b")])
        assert call_with_retry(fn, NO_SLEEP) == "ok"
        assert fn.calls == 3

    def test_permanent_error_not_retried(self):
        fn = _Flaky([PermanentError("nope")])
        with pytest.raises(PermanentError):
            call_with_retry(fn, NO_SLEEP)
        assert fn.calls == 1

    def test_deadline_error_not_retried(self):
        fn = _Flaky([DeadlineExceeded("stage:solve", 12.0, 10.0)])
        with pytest.raises(DeadlineExceeded):
            call_with_retry(fn, NO_SLEEP)
        assert fn.calls == 1

    def test_budget_exhausted_reraises_last_transient(self):
        fn = _Flaky([TransientError(str(i)) for i in range(10)])
        with pytest.raises(TransientError, match="3"):
            call_with_retry(fn, NO_SLEEP)
        assert fn.calls == 4  # 1 + 3 retries

    @pytest.mark.parametrize("control", [KeyboardInterrupt, SystemExit])
    def test_control_flow_exceptions_propagate(self, control):
        fn = _Flaky([control()])
        with pytest.raises(control):
            call_with_retry(fn, NO_SLEEP)
        assert fn.calls == 1

    def test_sleeps_follow_schedule(self):
        policy = RetryPolicy(
            retries=3, base_ms=8.0, multiplier=2.0, jitter=0.2, seed=3
        )
        slept = []
        fn = _Flaky([TransientError(str(i)) for i in range(3)])
        call_with_retry(fn, policy, sleep=lambda s: slept.append(s))
        expected = [ms / 1000.0 for ms in backoff_schedule(policy)]
        assert slept == expected

    def test_on_retry_reports_attempts(self):
        seen = []
        fn = _Flaky([TransientError("a"), TransientError("b")])
        call_with_retry(
            fn,
            NO_SLEEP,
            on_retry=lambda attempt, error: seen.append(
                (attempt, str(error))
            ),
        )
        assert seen == [(1, "a"), (2, "b")]

    def test_retry_metric_counted(self):
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            call_with_retry(_Flaky([TransientError("a")]), NO_SLEEP)
        finally:
            set_metrics(previous)
        assert registry.snapshot()["counters"]["robust.retries"] == 1


class TestPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"retries": -1},
            {"base_ms": -1.0},
            {"multiplier": 0.5},
            {"base_ms": 10.0, "max_ms": 5.0},
            {"jitter": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_for_key_changes_stream_not_shape(self):
        policy = RetryPolicy(retries=4, base_ms=10.0, jitter=0.5, seed=7)
        a = policy.for_key("doc-1:full")
        b = policy.for_key("doc-2:full")
        assert a.retries == b.retries == policy.retries
        assert backoff_schedule(a) != backoff_schedule(b)
        assert backoff_schedule(a) == backoff_schedule(a)
