"""Unit + integration tests of cooperative soft deadlines."""

from __future__ import annotations

import pytest

from repro.core.pipeline import AidaDisambiguator
from repro.errors import DeadlineExceeded
from repro.faults.deadline import (
    Budget,
    budget_scope,
    check_budget,
    current_budget,
)
from repro.graph.dense_subgraph import GreedyDenseSubgraph
from repro.graph.synthetic import SyntheticGraphSpec, synthetic_graph
from repro.obs import MetricsRegistry, set_metrics


class _Clock:
    """A manually advanced monotonic clock (seconds)."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            Budget(0.0)
        with pytest.raises(ValueError):
            Budget(-5.0)

    def test_unbounded_budget_never_expires(self):
        budget = Budget(None, clock=_Clock())
        assert budget.remaining_ms == float("inf")
        assert not budget.expired
        budget.check("anywhere")

    def test_elapsed_tracks_clock_and_charges(self):
        clock = _Clock()
        budget = Budget(100.0, clock=clock)
        clock.now += 0.030
        assert budget.elapsed_ms == pytest.approx(30.0)
        budget.charge_ms(50.0)
        assert budget.elapsed_ms == pytest.approx(80.0)
        assert budget.remaining_ms == pytest.approx(20.0)
        assert not budget.expired
        budget.check("stage:solve")
        budget.charge_ms(25.0)
        assert budget.expired
        with pytest.raises(DeadlineExceeded) as exc_info:
            budget.check("stage:solve")
        assert exc_info.value.where == "stage:solve"
        assert exc_info.value.budget_ms == 100.0
        assert exc_info.value.elapsed_ms > 100.0

    def test_deadline_hit_metric(self):
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            budget = Budget(1.0, clock=_Clock())
            budget.charge_ms(2.0)
            with pytest.raises(DeadlineExceeded):
                budget.check("x")
        finally:
            set_metrics(previous)
        counters = registry.snapshot()["counters"]
        assert counters["robust.deadline_hits"] == 1


class TestScope:
    def test_check_budget_without_scope_is_noop(self):
        assert current_budget() is None
        check_budget("stage:anything")

    def test_scope_arms_and_disarms(self):
        budget = Budget(5.0, clock=_Clock())
        budget.charge_ms(10.0)
        with budget_scope(budget):
            assert current_budget() is budget
            with pytest.raises(DeadlineExceeded):
                check_budget("stage:x")
        assert current_budget() is None
        check_budget("stage:x")

    def test_none_scope_is_transparent(self):
        with budget_scope(None) as armed:
            assert armed is None
            assert current_budget() is None

    def test_scopes_nest_innermost_wins(self):
        outer = Budget(1000.0, clock=_Clock())
        inner = Budget(1.0, clock=_Clock())
        inner.charge_ms(2.0)
        with budget_scope(outer):
            with budget_scope(inner):
                with pytest.raises(DeadlineExceeded):
                    check_budget("stage:y")
            assert current_budget() is outer
            check_budget("stage:y")


class TestCooperativeChecks:
    def test_pipeline_stage_boundary_checks(self, kb, sample_docs):
        pipeline = AidaDisambiguator(kb)
        document = sample_docs[0].document
        expired = Budget(1.0, clock=_Clock())
        expired.charge_ms(5.0)
        with budget_scope(expired):
            with pytest.raises(DeadlineExceeded) as exc_info:
                pipeline.disambiguate(document)
        assert exc_info.value.where.startswith("stage:")
        # Without the budget the same call succeeds.
        assert pipeline.disambiguate(document).assignments

    def test_solver_iteration_checks(self):
        graph = synthetic_graph(
            SyntheticGraphSpec(mentions=8, candidates_per_mention=5)
        )
        expired = Budget(1.0, clock=_Clock())
        expired.charge_ms(5.0)
        with budget_scope(expired):
            with pytest.raises(DeadlineExceeded) as exc_info:
                GreedyDenseSubgraph().solve(graph)
        assert exc_info.value.where == "solver.iteration"

    def test_generous_budget_changes_nothing(self, kb, sample_docs):
        pipeline = AidaDisambiguator(kb)
        document = sample_docs[0].document
        bare = pipeline.disambiguate(document)
        with budget_scope(Budget(60000.0)):
            budgeted = pipeline.disambiguate(document)
        assert [a.entity for a in bare.assignments] == [
            a.entity for a in budgeted.assignments
        ]
