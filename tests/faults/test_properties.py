"""Property-based invariants (Hypothesis) for the robustness substrate.

Three families the chaos layer leans on:

* backoff schedules — length, determinism, jitter bounds, monotonicity;
* min-hash / LSH band math — signature lengths, set semantics, the
  ``bands * rows == sketch_length`` contract;
* the shared relatedness LRU — capacity is never exceeded and cached
  values are bit-identical to direct computation, for arbitrary lookup
  sequences.
"""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults.retry import RetryPolicy, backoff_schedule
from repro.hashing.lsh import LshIndex, band_signature
from repro.hashing.minhash import MinHasher, jaccard_estimate
from repro.relatedness.base import EntityRelatedness
from repro.relatedness.caching import CachingRelatedness

COMMON = settings(max_examples=30, deadline=None, derandomize=True)


# ----------------------------------------------------------------------
# Backoff schedules
# ----------------------------------------------------------------------
@st.composite
def retry_policies(draw):
    base_ms = draw(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
    )
    extra = draw(
        st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)
    )
    return RetryPolicy(
        retries=draw(st.integers(min_value=0, max_value=6)),
        base_ms=base_ms,
        multiplier=draw(
            st.floats(min_value=1.0, max_value=4.0, allow_nan=False)
        ),
        max_ms=base_ms + extra,
        jitter=draw(
            st.floats(min_value=0.0, max_value=0.9, allow_nan=False)
        ),
        seed=draw(st.integers(min_value=0, max_value=2**32 - 1)),
    )


class TestBackoffProperties:
    @COMMON
    @given(policy=retry_policies())
    def test_schedule_length_and_determinism(self, policy):
        schedule = backoff_schedule(policy)
        assert len(schedule) == policy.retries
        assert schedule == backoff_schedule(policy)

    @COMMON
    @given(policy=retry_policies())
    def test_every_delay_within_jitter_band_of_raw_curve(self, policy):
        for attempt, delay_ms in enumerate(backoff_schedule(policy)):
            raw = min(
                policy.base_ms * policy.multiplier**attempt,
                policy.max_ms,
            )
            lo = raw * (1.0 - policy.jitter)
            hi = raw * (1.0 + policy.jitter)
            assert lo - 1e-9 <= delay_ms <= hi + 1e-9

    @COMMON
    @given(policy=retry_policies())
    def test_jitter_free_schedule_is_monotone(self, policy):
        import dataclasses

        schedule = backoff_schedule(
            dataclasses.replace(policy, jitter=0.0)
        )
        assert all(
            earlier <= later + 1e-9
            for earlier, later in zip(schedule, schedule[1:])
        )


# ----------------------------------------------------------------------
# Min-hash / LSH band math
# ----------------------------------------------------------------------
element_sets = st.lists(
    st.text(alphabet="abcdef", min_size=1, max_size=6), max_size=12
)


class TestMinHashProperties:
    @COMMON
    @given(
        elements=element_sets,
        num_hashes=st.integers(min_value=1, max_value=32),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_sketch_length_and_set_semantics(
        self, elements, num_hashes, seed
    ):
        hasher = MinHasher(num_hashes, seed=seed)
        sketch = hasher.sketch(elements)
        assert len(sketch) == num_hashes
        # Order- and multiplicity-invariant (sketches of *sets*).
        assert sketch == hasher.sketch(list(reversed(elements)) * 2)
        # Same configuration → same sketch from a fresh hasher.
        assert sketch == MinHasher(num_hashes, seed=seed).sketch(elements)

    @COMMON
    @given(
        elements=element_sets,
        other=element_sets,
        num_hashes=st.integers(min_value=1, max_value=32),
    )
    def test_jaccard_estimate_bounds(self, elements, other, num_hashes):
        hasher = MinHasher(num_hashes)
        estimate = jaccard_estimate(
            hasher.sketch(elements), hasher.sketch(other)
        )
        assert 0.0 <= estimate <= 1.0
        assert jaccard_estimate(
            hasher.sketch(elements), hasher.sketch(elements)
        ) == 1.0


class TestLshBandProperties:
    @COMMON
    @given(
        bands=st.integers(min_value=1, max_value=8),
        rows=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=999),
        elements=element_sets,
    )
    def test_band_count_matches_index_contract(
        self, bands, rows, seed, elements
    ):
        index = LshIndex(bands, rows)
        assert index.sketch_length == bands * rows
        sketch = MinHasher(index.sketch_length, seed=seed).sketch(elements)
        signature = band_signature(sketch, bands, rows)
        assert len(signature) == bands
        assert [band for band, _key in signature] == list(range(bands))

    @COMMON
    @given(
        bands=st.integers(min_value=1, max_value=8),
        rows=st.integers(min_value=1, max_value=8),
        delta=st.integers(min_value=-3, max_value=3).filter(
            lambda d: d != 0
        ),
    )
    def test_wrong_sketch_length_rejected(self, bands, rows, delta):
        length = bands * rows + delta
        if length < 0:
            return
        with pytest.raises(ValueError):
            band_signature([0] * length, bands, rows)


# ----------------------------------------------------------------------
# The shared relatedness LRU
# ----------------------------------------------------------------------
class _HashRelatedness(EntityRelatedness):
    """Deterministic stand-in measure: a hash of the canonical pair."""

    name = "hashrel"

    def _compute(self, a, b):
        digest = hashlib.blake2b(
            f"{a}|{b}".encode("utf-8"), digest_size=8
        ).digest()
        return (int.from_bytes(digest, "big") % 1000) / 999.0


entity_ids = st.sampled_from([f"E{i}" for i in range(6)])
lookup_sequences = st.lists(
    st.tuples(entity_ids, entity_ids), max_size=40
)


class TestLruProperties:
    @COMMON
    @given(
        lookups=lookup_sequences,
        maxsize=st.integers(min_value=1, max_value=5),
    )
    def test_capacity_never_exceeded_and_values_exact(
        self, lookups, maxsize
    ):
        cache = CachingRelatedness(_HashRelatedness(), maxsize=maxsize)
        reference = _HashRelatedness()
        for a, b in lookups:
            value = cache.relatedness(a, b)
            assert value == reference.relatedness(a, b)
            assert cache.cache_stats().size <= maxsize
        stats = cache.cache_stats()
        non_identical = sum(1 for a, b in lookups if a != b)
        assert stats.lookups == non_identical
        assert stats.hits + stats.misses == non_identical
