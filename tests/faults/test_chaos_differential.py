"""Chaos differential: faulted runs versus the fault-free pipeline.

Twenty seeded synthetic worlds (override the base seed with
``CHAOS_BASE_SEED``), each disambiguated fault-free once, then re-run
under three chaos regimes:

(a) the robustness layer armed with **zero** faults must be bit-identical
    to the bare pipeline — the wrapper is pure plumbing on the happy path;
(b) **transient** faults capped by ``max_faults`` ("dependency down for
    exactly N requests, then recovers") plus enough retries must converge
    to the fault-free assignments, bit for bit;
(c) **permanent** faults with degradation enabled must lose no document:
    every document reports the ladder rung that produced it.
"""

from __future__ import annotations

import os

import pytest

from repro.core.pipeline import AidaDisambiguator
from repro.datagen.documents import DocumentGenerator, DocumentSpec
from repro.datagen.wikipedia import build_world_kb
from repro.datagen.world import World, WorldConfig
from repro.faults.injector import FaultInjector, FaultSpec, injected
from repro.faults.resilient import RobustnessConfig, make_resilient
from repro.faults.retry import RetryPolicy

BASE_SEED = int(os.environ.get("CHAOS_BASE_SEED", "1307"))
WORLD_SEEDS = [BASE_SEED + i for i in range(20)]

DOCS_PER_WORLD = 4
MENTIONS_PER_DOC = 4

#: Transient-fault regime for test (b).  Every spec carries a
#: ``max_faults`` cap, so the total fault mass is 10: with 12 retries even
#: a single document absorbing every fault converges.
TRANSIENT_SPECS = [
    FaultSpec(site="kb.lookup", rate=1.0, kind="transient", max_faults=2),
    FaultSpec(site="relatedness", rate=0.3, kind="transient", max_faults=3),
    FaultSpec(site="similarity", rate=0.25, kind="transient", max_faults=3),
    FaultSpec(
        site="solver.iteration", rate=0.2, kind="transient", max_faults=2
    ),
]

#: Backoff with zero sleep: chaos runs exercise ordering, not wall time.
NO_SLEEP_BACKOFF = RetryPolicy(base_ms=0.0, max_ms=0.0, jitter=0.0)


def _comparable(result):
    """Everything order- and value-relevant, minus the timing stats."""
    return [
        (
            assignment.mention,
            assignment.entity,
            assignment.score,
            sorted(assignment.candidate_scores.items()),
        )
        for assignment in result.assignments
    ]


class ChaosWorld:
    """One synthetic world with its fault-free baseline run."""

    def __init__(self, seed: int):
        self.seed = seed
        world = World.generate(
            WorldConfig(seed=seed, clusters_per_domain=2)
        )
        self.kb, _wiki = build_world_kb(world, seed=seed + 94)
        generator = DocumentGenerator(world, seed=seed + 55)
        cluster_ids = sorted(world.clusters)
        self.documents = [
            generator.generate(
                DocumentSpec(
                    doc_id=f"w{seed}-d{index}",
                    cluster_ids=[cluster_ids[index % len(cluster_ids)]],
                    num_mentions=MENTIONS_PER_DOC,
                )
            ).document
            for index in range(DOCS_PER_WORLD)
        ]
        pipeline = AidaDisambiguator(self.kb)
        self.baseline = [
            _comparable(pipeline.disambiguate(document))
            for document in self.documents
        ]

    def pipeline(self):
        return AidaDisambiguator(self.kb)


@pytest.fixture(scope="module", params=WORLD_SEEDS)
def chaos_world(request) -> ChaosWorld:
    return ChaosWorld(request.param)


def test_zero_faults_bit_identical(chaos_world):
    """(a) The armed robustness layer with no faults changes nothing."""
    resilient = make_resilient(
        chaos_world.pipeline(),
        RobustnessConfig(
            retries=2, degrade=True, backoff=NO_SLEEP_BACKOFF
        ),
    )
    for document, expected in zip(
        chaos_world.documents, chaos_world.baseline
    ):
        result = resilient.disambiguate(document)
        assert _comparable(result) == expected
        assert result.degradation_rung == "full"
        assert result.attempts == 1


def test_transient_faults_converge_to_fault_free(chaos_world):
    """(b) Capped transient faults + retries reproduce the baseline."""
    resilient = make_resilient(
        chaos_world.pipeline(),
        RobustnessConfig(retries=12, backoff=NO_SLEEP_BACKOFF),
    )
    injector = FaultInjector(TRANSIENT_SPECS, seed=chaos_world.seed)
    attempts = []
    with injected(injector):
        for document, expected in zip(
            chaos_world.documents, chaos_world.baseline
        ):
            result = resilient.disambiguate(document)
            assert _comparable(result) == expected
            assert result.degradation_rung == "full"
            attempts.append(result.attempts)
    assert injector.total_injected > 0
    assert any(count > 1 for count in attempts)


def test_permanent_relatedness_degrades_not_fails(chaos_world):
    """(c) Coherence-backend loss drops to ``no_coherence``, loses nothing."""
    resilient = make_resilient(
        chaos_world.pipeline(),
        RobustnessConfig(degrade=True, backoff=NO_SLEEP_BACKOFF),
    )
    injector = FaultInjector(
        [FaultSpec(site="relatedness", rate=1.0, kind="permanent")],
        seed=chaos_world.seed,
    )
    rungs = []
    with injected(injector):
        for document in chaos_world.documents:
            result = resilient.disambiguate(document)
            assert result.doc_id == document.doc_id
            assert len(result.assignments) == len(document.mentions)
            rungs.append(result.degradation_rung)
    assert set(rungs) <= {"full", "no_coherence"}
    assert "no_coherence" in rungs


def test_permanent_similarity_reaches_prior_only(chaos_world):
    """(c) Losing similarity *and* relatedness lands every document on the
    ``prior_only`` rung — still no document lost."""
    resilient = make_resilient(
        chaos_world.pipeline(),
        RobustnessConfig(degrade=True, backoff=NO_SLEEP_BACKOFF),
    )
    injector = FaultInjector(
        [
            FaultSpec(site="similarity", rate=1.0, kind="permanent"),
            FaultSpec(site="relatedness", rate=1.0, kind="permanent"),
        ],
        seed=chaos_world.seed,
    )
    with injected(injector):
        for document in chaos_world.documents:
            result = resilient.disambiguate(document)
            assert result.degradation_rung == "prior_only"
            assert result.doc_id == document.doc_id
            assert len(result.assignments) == len(document.mentions)
            assert result.attempts >= 3  # walked the whole ladder
