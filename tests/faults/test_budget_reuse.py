"""Regression: a spent budget must never leak onto a reused thread.

Long-lived serving keeps executor threads alive across requests.  The
budget stack is thread-local, so an entry left behind by one request
would charge the *next* request on that thread against an
already-exhausted deadline — every later request on the thread would
instantly hit ``DeadlineExceeded``.  These tests pin the non-leak
guarantee of :func:`repro.faults.deadline.budget_scope`, including the
hardened exit that discards entries a misbehaving callee pushed and
never popped.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import DeadlineExceeded
from repro.faults.deadline import (
    Budget,
    budget_scope,
    check_budget,
    current_budget,
)


def make_clock(start: float = 0.0):
    """A manual clock: ``clock.advance(seconds)`` moves time forward."""

    class Clock:
        def __init__(self):
            self.now = start

        def __call__(self) -> float:
            return self.now

        def advance(self, seconds: float) -> None:
            self.now += seconds

    return Clock()


def test_spent_budget_does_not_survive_scope_exit_on_reused_thread():
    """The serving hazard, distilled: request A exhausts its budget on an
    executor thread; request B runs on the same thread and must start
    with a clean stack."""
    executor = ThreadPoolExecutor(max_workers=1)  # one reusable thread

    def request_a():
        clock = make_clock()
        budget = Budget(10.0, clock=clock)
        with pytest.raises(DeadlineExceeded):
            with budget_scope(budget):
                clock.advance(1.0)  # 1000 ms > 10 ms: spent
                check_budget("request-a")
        return current_budget()

    def request_b():
        # Same thread as request A.  No budget may be armed, and a check
        # must be a free no-op rather than an inherited deadline hit.
        leaked = current_budget()
        check_budget("request-b")
        return leaked

    try:
        assert executor.submit(request_a).result() is None
        assert executor.submit(request_b).result() is None
    finally:
        executor.shutdown(wait=True)


def test_scope_exit_discards_entries_leaked_by_callee():
    """A callee that pushes onto the stack without popping cannot poison
    the thread: exiting the outer scope removes its own budget AND
    everything the callee abandoned above it."""
    from repro.faults.deadline import _stack

    outer = Budget(1000.0)
    with budget_scope(outer):
        # Misbehaving callee: arms a budget and "forgets" to exit.
        _stack().append(Budget(0.001))
        assert current_budget() is not outer
    assert current_budget() is None
    assert _stack() == []


def test_nested_scopes_restore_the_outer_budget():
    outer = Budget(1000.0)
    inner = Budget(50.0)
    with budget_scope(outer):
        assert current_budget() is outer
        with budget_scope(inner):
            assert current_budget() is inner
        assert current_budget() is outer
    assert current_budget() is None


def test_scope_exit_is_clean_even_when_the_body_raises():
    budget = Budget(1000.0)
    with pytest.raises(RuntimeError):
        with budget_scope(budget):
            raise RuntimeError("body failure")
    assert current_budget() is None


def test_none_budget_scope_arms_nothing():
    with budget_scope(None) as armed:
        assert armed is None
        assert current_budget() is None
        check_budget("unarmed")  # free no-op


def test_fresh_budget_per_attempt_not_inherited():
    """Two sequential scopes on one thread are independent: spending the
    first does not tax the second (the resilient layer arms a fresh
    Budget per attempt for exactly this reason)."""
    clock = make_clock()
    first = Budget(10.0, clock=clock)
    with pytest.raises(DeadlineExceeded):
        with budget_scope(first):
            clock.advance(1.0)
            check_budget("first")
    second = Budget(10.0, clock=clock)
    with budget_scope(second):
        check_budget("second")  # must not raise: its own 10 ms slice
        assert second.expired is False
