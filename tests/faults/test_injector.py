"""Unit tests of the deterministic fault injector."""

from __future__ import annotations

import time

import pytest

from repro.errors import PermanentError, TransientError, classify_error
from repro.faults.injector import (
    NULL_INJECTOR,
    FaultInjector,
    FaultSpec,
    FaultSpecError,
    InjectedPermanentFault,
    InjectedTransientFault,
    SITES,
    get_injector,
    injected,
    parse_fault_spec,
    set_injector,
)
from repro.obs import MetricsRegistry, set_metrics


def _fire_pattern(injector, site, calls):
    """True per call that raised, over *calls* calls."""
    pattern = []
    for _ in range(calls):
        try:
            injector.fire(site)
            pattern.append(False)
        except (TransientError, PermanentError):
            pattern.append(True)
    return pattern


class TestSpecValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(FaultSpecError):
            FaultSpec(site="nope")

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(FaultSpecError):
            FaultSpec(site="worker", rate=1.5)

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultSpecError):
            FaultSpec(site="worker", kind="explode")

    def test_latency_needs_positive_ms(self):
        with pytest.raises(FaultSpecError):
            FaultSpec(site="worker", kind="latency", latency_ms=0.0)

    def test_max_faults_must_be_positive(self):
        with pytest.raises(FaultSpecError):
            FaultSpec(site="worker", max_faults=0)


class TestDeterminism:
    def test_same_seed_same_pattern(self):
        spec = FaultSpec(site="kb.lookup", rate=0.3)
        first = _fire_pattern(FaultInjector([spec], seed=5), "kb.lookup", 50)
        second = _fire_pattern(
            FaultInjector([spec], seed=5), "kb.lookup", 50
        )
        assert first == second
        assert any(first) and not all(first)

    def test_different_seeds_differ(self):
        spec = FaultSpec(site="kb.lookup", rate=0.5)
        patterns = {
            tuple(
                _fire_pattern(
                    FaultInjector([spec], seed=seed), "kb.lookup", 64
                )
            )
            for seed in range(4)
        }
        assert len(patterns) > 1

    def test_sites_use_independent_streams(self):
        specs = [
            FaultSpec(site="kb.lookup", rate=0.4),
            FaultSpec(site="relatedness", rate=0.4),
        ]
        both = FaultInjector(specs, seed=9)
        interleaved = []
        for _ in range(30):
            interleaved.append(_fire_pattern(both, "kb.lookup", 1)[0])
            _fire_pattern(both, "relatedness", 3)
        alone = _fire_pattern(
            FaultInjector([specs[0]], seed=9), "kb.lookup", 30
        )
        assert interleaved == alone


class TestFiring:
    def test_transient_and_permanent_kinds(self):
        inj = FaultInjector(
            [FaultSpec(site="worker", kind="permanent")], seed=0
        )
        with pytest.raises(InjectedPermanentFault) as exc_info:
            inj.fire("worker")
        assert classify_error(exc_info.value) == "permanent"
        inj = FaultInjector(
            [FaultSpec(site="worker", kind="transient")], seed=0
        )
        with pytest.raises(InjectedTransientFault) as exc_info:
            inj.fire("worker")
        assert classify_error(exc_info.value) == "transient"

    def test_max_faults_caps_injections(self):
        inj = FaultInjector(
            [FaultSpec(site="worker", rate=1.0, max_faults=3)], seed=0
        )
        pattern = _fire_pattern(inj, "worker", 10)
        assert pattern == [True] * 3 + [False] * 7
        assert inj.stats()["worker"] == {"calls": 10, "injected": 3}
        assert inj.total_injected == 3

    def test_unconfigured_site_never_fires(self):
        inj = FaultInjector([FaultSpec(site="worker")], seed=0)
        assert _fire_pattern(inj, "solver.iteration", 5) == [False] * 5

    def test_latency_sleeps(self):
        inj = FaultInjector(
            [
                FaultSpec(
                    site="worker",
                    kind="latency",
                    latency_ms=5.0,
                    max_faults=1,
                )
            ],
            seed=0,
        )
        start = time.perf_counter()
        inj.fire("worker")
        assert time.perf_counter() - start >= 0.004
        # Cap exhausted: the next call is instant and raises nothing.
        inj.fire("worker")

    def test_first_matching_spec_wins(self):
        inj = FaultInjector(
            [
                FaultSpec(site="worker", kind="transient", max_faults=1),
                FaultSpec(site="worker", kind="permanent"),
            ],
            seed=0,
        )
        with pytest.raises(InjectedTransientFault):
            inj.fire("worker")
        with pytest.raises(InjectedPermanentFault):
            inj.fire("worker")

    def test_custom_message(self):
        inj = FaultInjector(
            [FaultSpec(site="worker", message="kb down")], seed=0
        )
        with pytest.raises(InjectedTransientFault, match="kb down"):
            inj.fire("worker")

    def test_metrics_published_when_enabled(self):
        registry = MetricsRegistry()
        previous = set_metrics(registry)
        try:
            inj = FaultInjector(
                [FaultSpec(site="worker", max_faults=2)], seed=0
            )
            _fire_pattern(inj, "worker", 5)
        finally:
            set_metrics(previous)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["faults.injected"] == 2
        assert snapshot["counters"]["faults.injected.worker"] == 2
        assert snapshot["counters"]["faults.injected.kind.transient"] == 2


class TestInstallation:
    def test_null_injector_is_default_and_inert(self):
        assert get_injector() is NULL_INJECTOR
        assert not NULL_INJECTOR.enabled
        NULL_INJECTOR.fire("worker")  # must not raise
        assert NULL_INJECTOR.stats() == {}

    def test_injected_scope_restores(self):
        inj = FaultInjector([FaultSpec(site="worker")], seed=0)
        with injected(inj) as active:
            assert get_injector() is inj is active
        assert get_injector() is NULL_INJECTOR

    def test_set_injector_none_restores_null(self):
        inj = FaultInjector([], seed=0)
        previous = set_injector(inj)
        assert get_injector() is inj
        set_injector(None)
        assert get_injector() is NULL_INJECTOR
        set_injector(previous)


class TestParse:
    def test_site_only(self):
        spec = parse_fault_spec("relatedness")
        assert spec == FaultSpec(site="relatedness")

    def test_rate_kind_and_cap(self):
        spec = parse_fault_spec("kb.lookup:0.25:permanent:4")
        assert spec.site == "kb.lookup"
        assert spec.rate == 0.25
        assert spec.kind == "permanent"
        assert spec.max_faults == 4

    def test_latency_fourth_field_is_ms(self):
        spec = parse_fault_spec("worker:1.0:latency:7.5")
        assert spec.kind == "latency"
        assert spec.latency_ms == 7.5

    def test_bad_site_raises(self):
        with pytest.raises(FaultSpecError):
            parse_fault_spec("warp.core:0.5")

    def test_all_sites_parse(self):
        for site in SITES:
            assert parse_fault_spec(site).site == site
