"""Tests for the strings/things/cats query parser."""

import pytest

from repro.apps.search.parser import QueryParseError, parse_query
from repro.kb.entity import Entity
from repro.kb.knowledge_base import KnowledgeBase


@pytest.fixture
def small_kb():
    kb = KnowledgeBase()
    kb.add_entity(
        Entity(
            entity_id="Bob_Dylan",
            canonical_name="Bob Dylan",
            types=("singer",),
            popularity=100.0,
        )
    )
    kb.add_entity(
        Entity(
            entity_id="Dylan_Thomas",
            canonical_name="Dylan Thomas",
            types=("writer",),
            popularity=10.0,
        )
    )
    kb.dictionary.add_name("Dylan", "Bob_Dylan", source="anchor",
                           anchor_count=8)
    kb.dictionary.add_name("Dylan", "Dylan_Thomas", source="anchor",
                           anchor_count=2)
    return kb


class TestBareWords:
    def test_single_word(self):
        query = parse_query("guitar")
        assert query.words == ("guitar",)

    def test_multiple_words_lowercased(self):
        query = parse_query("Guitar ROCK")
        assert query.words == ("guitar", "rock")

    def test_explicit_word_prefix(self):
        query = parse_query("word:guitar")
        assert query.words == ("guitar",)

    def test_empty_query(self):
        query = parse_query("   ")
        assert query.is_empty


class TestEntityTerms:
    def test_entity_by_id(self, small_kb):
        query = parse_query("thing:Bob_Dylan", small_kb)
        assert query.entities == ("Bob_Dylan",)

    def test_entity_by_quoted_name(self, small_kb):
        query = parse_query('thing:"Bob Dylan"', small_kb)
        assert query.entities == ("Bob_Dylan",)

    def test_ambiguous_name_resolves_to_popular(self, small_kb):
        query = parse_query("thing:Dylan", small_kb)
        assert query.entities == ("Bob_Dylan",)

    def test_unknown_entity_rejected(self, small_kb):
        with pytest.raises(QueryParseError):
            parse_query("thing:Nobody_Here", small_kb)

    def test_entity_verbatim_without_kb(self):
        query = parse_query("thing:Whatever_Id")
        assert query.entities == ("Whatever_Id",)


class TestCategoryTerms:
    def test_valid_category(self, small_kb):
        query = parse_query("cat:singer", small_kb)
        assert query.categories == ("singer",)

    def test_unknown_category_rejected(self, small_kb):
        with pytest.raises(QueryParseError):
            parse_query("cat:astronaut", small_kb)

    def test_category_verbatim_without_kb(self):
        query = parse_query("cat:anything")
        assert query.categories == ("anything",)


class TestMixedQueries:
    def test_all_three_dimensions(self, small_kb):
        query = parse_query(
            'word:guitar thing:"Bob Dylan" cat:singer', small_kb
        )
        assert query.words == ("guitar",)
        assert query.entities == ("Bob_Dylan",)
        assert query.categories == ("singer",)

    def test_quoted_value_with_spaces(self, small_kb):
        query = parse_query('thing:"Dylan Thomas"', small_kb)
        assert query.entities == ("Dylan_Thomas",)

    def test_empty_quoted_value_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query('word:""')
